//! Offline stand-in for `serde`.
//!
//! This container has no network access to a crates registry, so the
//! workspace vendors the minimal API surface it actually uses (see
//! `vendor/README.md`). The real `serde` can be swapped back in by
//! repointing the `[workspace.dependencies]` entry — call sites are
//! source-compatible.
//!
//! Provided surface: the `Serialize`/`Deserialize` marker traits and the
//! same-named no-op derive macros.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
