//! Offline stand-in for `criterion`, covering the subset the workspace's
//! benches use: `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: a short warm-up, then `sample_size` samples of an
//! adaptively sized iteration batch, reporting min/mean/max per-iteration
//! wall time on stdout. No statistical analysis, HTML reports, or
//! comparison to saved baselines — callers that need machine-readable
//! output write it themselves (see `crates/bench/benches/routing.rs`).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call, seconds.
    pub last_mean_s: f64,
}

impl Bencher {
    /// Measures `f`, storing the mean per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for ~10ms per sample, at least
        // one iteration.
        let t0 = Instant::now();
        hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut worst = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            let sample = start.elapsed() / batch as u32;
            total += sample;
            best = best.min(sample);
            worst = worst.max(sample);
        }
        let mean = total / self.samples as u32;
        self.last_mean_s = mean.as_secs_f64();
        println!(
            "    {} samples x {} iters: min {:?}  mean {:?}  max {:?}",
            self.samples, batch, best, mean, worst
        );
    }
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(20)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&id.into().label, self.samples(), f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().label, self.samples(), |b| f(b, input));
        self
    }

    /// Ends the group (printing only; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    println!("bench {label}");
    let mut b = Bencher {
        samples,
        last_mean_s: 0.0,
    };
    f(&mut b);
}

/// Collects bench functions into one runner (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
