//! Offline stand-in for `rand`, API-compatible with the subset the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges.
//!
//! The generator is splitmix64 — statistically weaker than the real
//! `StdRng` (ChaCha12) but deterministic, seedable, and more than
//! adequate for benchmark-circuit generation and property tests. Streams
//! differ from the real `rand`, so regenerated circuits are valid but
//! not bit-identical to ones produced with the registry crate.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value extension methods (mirrors `rand::Rng`).
pub trait RngExt {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly distributed `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Ranges that can produce a uniform sample of `T` (mirrors
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample<G: RngExt>(self, rng: &mut G) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngExt, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Pre-mix so small consecutive seeds diverge immediately.
                state: seed ^ 0x5151_5151_5151_5151,
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Alias kept for call sites written against `rand::Rng`.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_range_reached() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
