//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatible marker — nothing serializes through serde today
//! (exports go through hand-written CSV/JSON writers). These derives
//! expand to nothing, so the attribute stays valid without pulling the
//! real dependency into the build.

use proc_macro::TokenStream;

/// Expands to nothing; accepts the same derive position as serde's.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts the same derive position as serde's.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
