//! Offline stand-in for `proptest`, covering the subset the workspace
//! uses: the `proptest!` test macro (with optional
//! `#![proptest_config(...)]`), range/tuple/`Just`/`prop_oneof!` and
//! `collection::vec` strategies, `prop_map`, and the `prop_assert!`
//! family.
//!
//! Differences from the real crate (acceptable for this workspace):
//!
//! * cases are generated from fixed per-case seeds, so runs are fully
//!   deterministic and reproducible without a persistence file,
//! * no shrinking — failures report the sampled inputs via the panic
//!   message of the underlying `assert!`,
//! * the default case count is 64 (vs. 256) to keep `cargo test` fast.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-case random source (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the given case index.
        pub fn new(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x2545_F491_4F6C_DD1D,
            }
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A float in `[0, 1)`.
        pub fn next_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of test inputs (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between equally weighted strategies (built by
/// [`prop_oneof!`]).
pub struct Union<T> {
    /// The candidate strategies.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod bool {
    //! Boolean strategies.

    use super::{test_runner::TestRng, Strategy};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a property-case condition (plain `assert!` in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-case equality (plain `assert_eq!` in the stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-case inequality (plain `assert_ne!` in the stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::new(case);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2),];
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_collections(
            x in 0i32..10,
            pair in (0u8..3, 0.0f64..1.0),
            v in crate::collection::vec(0u32..5, 1..8),
            b in crate::bool::ANY,
        ) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(pair.0 < 3 && (0.0..1.0).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            let _ = b;
        }
    }
}
