//! Quickstart: compile a QFT for mixed neutral-atom hardware through the
//! fused pipeline and compare the three compiler modes of the paper
//! (shuttling-only, gate-only, hybrid).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_na::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mixed hardware of Table 1c, scaled to an 8x8 lattice with 40 atoms
    // so the example runs in a blink even in debug builds.
    let params = HardwareParams::mixed()
        .to_builder()
        .lattice(8, 3.0)
        .num_atoms(40)
        .build()?;

    let circuit = Qft::new(32).build();
    println!(
        "circuit: qft on {} qubits, {} entangling gates",
        circuit.num_qubits(),
        circuit.entangling_count()
    );
    println!(
        "hardware: {} ({}x{} lattice, {} atoms, r_int = {}d)\n",
        params.name, params.lattice_side, params.lattice_side, params.num_atoms, params.r_int
    );

    println!(
        "{:<16} {:>8} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "mode", "ΔCZ", "ΔT [µs]", "δF", "swaps", "moves", "batches"
    );
    for (name, config) in [
        ("shuttling-only", MapperConfig::shuttle_only()),
        ("gate-only", MapperConfig::gate_only()),
        ("hybrid α=1", MapperConfig::hybrid(1.0)),
    ] {
        // One fused pass: map + schedule + AOD lowering (validated) +
        // Eq. (1) metrics + Table-1a comparison, one artifact.
        let pipeline = Pipeline::new(params.clone(), config)?;
        let program = pipeline.compile(&circuit)?;
        // Every run is independently verified against the physics model.
        verify_mapping(&circuit, &program.mapped, &params)?;
        let report = program.comparison.expect("baseline on by default");
        println!(
            "{:<16} {:>8} {:>12.1} {:>10.3} {:>8} {:>8} {:>8}",
            name,
            report.delta_cz,
            report.delta_t_us,
            report.delta_f,
            program.mapped.swap_count(),
            program.mapped.shuttle_count(),
            program.stats.aod_batches,
        );
    }

    println!("\nsmaller δF = less fidelity lost to routing (Table 1a metric)");
    Ok(())
}
