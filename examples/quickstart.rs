//! Quickstart: build a `Compiler` session for a backend `Target`,
//! compile a QFT through the fused pipeline, compare the three compiler
//! modes of the paper (shuttling-only, gate-only, hybrid), and run the
//! same circuit on a second topology (a zoned storage/interaction
//! layout).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_na::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mixed hardware of Table 1c, scaled to an 8x8 lattice with 40 atoms
    // so the example runs in a blink even in debug builds.
    // `HardwareParams` is itself a square-lattice `Target`.
    let target = HardwareParams::mixed()
        .to_builder()
        .lattice(8, 3.0)
        .num_atoms(40)
        .build()?;

    let circuit = Qft::new(32).build();
    println!(
        "circuit: qft on {} qubits, {} entangling gates",
        circuit.num_qubits(),
        circuit.entangling_count()
    );
    println!(
        "target: {} ({}x{} lattice, {} atoms, r_int = {}d)\n",
        target.id(),
        target.lattice_side,
        target.lattice_side,
        target.num_atoms,
        target.r_int
    );

    println!(
        "{:<16} {:>8} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "mode", "ΔCZ", "ΔT [µs]", "δF", "swaps", "moves", "batches"
    );
    for (name, mapping) in [
        ("shuttling-only", MappingOptions::shuttle_only()),
        ("gate-only", MappingOptions::gate_only()),
        ("hybrid α=1", MappingOptions::hybrid(1.0)),
    ] {
        // A compiler session per mode: options validated at build time,
        // then one fused pass per circuit — map + schedule + AOD
        // lowering (validated) + Eq. (1) metrics + Table-1a comparison.
        let compiler = Compiler::for_target(&target).mapping(mapping).build()?;
        let program = compiler.compile(&circuit)?;
        // Every run is independently verified against the physics model.
        verify_mapping(&circuit, &program.mapped, &target)?;
        let report = program.comparison.expect("baseline on by default");
        println!(
            "{:<16} {:>8} {:>12.1} {:>10.3} {:>8} {:>8} {:>8}",
            name,
            report.delta_cz,
            report.delta_t_us,
            report.delta_f,
            program.mapped.swap_count(),
            program.mapped.shuttle_count(),
            program.stats.aod_batches,
        );
    }

    // The same physics on a different backend topology: trap-row bands
    // of 2 rows separated by empty shuttling lanes. One `Target`
    // implementation swap — the whole pipeline follows.
    let zoned = ZonedTarget::new(
        HardwareParams::mixed()
            .to_builder()
            .lattice(10, 3.0)
            .num_atoms(40)
            .build()?,
        2,
        1,
    )?;
    let compiler = Compiler::for_target(&zoned)
        .mapping(MappingOptions::hybrid(1.0))
        .build()?;
    let program = compiler.compile(&circuit)?;
    verify_mapping_on(&circuit, &program.mapped, zoned.params(), zoned.lattice())?;
    let report = program.comparison.expect("baseline on by default");
    println!(
        "\n{:<16} {:>8} {:>12.1} {:>10.3} {:>8} {:>8} {:>8}   <- {}",
        "hybrid (zoned)",
        report.delta_cz,
        report.delta_t_us,
        report.delta_f,
        program.mapped.swap_count(),
        program.mapped.shuttle_count(),
        program.stats.aod_batches,
        compiler.target().id,
    );

    println!("\nsmaller δF = less fidelity lost to routing (Table 1a metric)");
    Ok(())
}
