//! Quickstart: map a QFT onto mixed neutral-atom hardware and compare
//! the three compiler modes of the paper (shuttling-only, gate-only,
//! hybrid).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_na::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mixed hardware of Table 1c, scaled to an 8x8 lattice with 40 atoms
    // so the example runs in a blink even in debug builds.
    let params = HardwareParams::mixed()
        .to_builder()
        .lattice(8, 3.0)
        .num_atoms(40)
        .build()?;

    let circuit = Qft::new(32).build();
    println!(
        "circuit: qft on {} qubits, {} entangling gates",
        circuit.num_qubits(),
        circuit.entangling_count()
    );
    println!(
        "hardware: {} ({}x{} lattice, {} atoms, r_int = {}d)\n",
        params.name, params.lattice_side, params.lattice_side, params.num_atoms, params.r_int
    );

    let scheduler = Scheduler::new(params.clone());
    println!(
        "{:<16} {:>8} {:>12} {:>10} {:>8} {:>8}",
        "mode", "ΔCZ", "ΔT [µs]", "δF", "swaps", "moves"
    );
    for (name, config) in [
        ("shuttling-only", MapperConfig::shuttle_only()),
        ("gate-only", MapperConfig::gate_only()),
        ("hybrid α=1", MapperConfig::hybrid(1.0)),
    ] {
        let mapper = HybridMapper::new(params.clone(), config)?;
        let outcome = mapper.map(&circuit)?;
        // Every run is independently verified against the physics model.
        verify_mapping(&circuit, &outcome.mapped, &params)?;
        let report = scheduler.compare(&circuit, &outcome.mapped);
        println!(
            "{:<16} {:>8} {:>12.1} {:>10.3} {:>8} {:>8}",
            name,
            report.delta_cz,
            report.delta_t_us,
            report.delta_f,
            outcome.mapped.swap_count(),
            outcome.mapped.shuttle_count(),
        );
    }

    println!("\nsmaller δF = less fidelity lost to routing (Table 1a metric)");
    Ok(())
}
