//! Circuit structure vs. preferred mapping capability — the case study
//! the paper proposes as future work (§4.2: "the optimal ratio α between
//! gate- and shuttling-mapping varies for different circuits, indicating
//! a connection between circuit structure and preferred mapping
//! capability. The proposed hybrid mapper allows, for the first time, to
//! study this correlation").
//!
//! For a spread of circuit families on mixed hardware, this example
//! computes structural metrics (parallelism, interaction locality,
//! multi-qubit fraction) and sweeps the decision ratio α, reporting which
//! capability mix minimizes the fidelity decrease δF.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example structure_study
//! ```

use hybrid_na::circuit::analysis::StructureMetrics;
use hybrid_na::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = HardwareParams::mixed()
        .to_builder()
        .lattice(8, 3.0)
        .num_atoms(50)
        .build()?;
    let scheduler = Scheduler::new(params.clone());

    let suite: Vec<(&str, Circuit)> = vec![
        ("ghz-48", ghz(48)),
        ("graph-48", GraphState::new(48).edges(52).seed(7).build()),
        ("qft-48", Qft::new(48).build()),
        ("qaoa-48", Qaoa::new(48).layers(1).seed(5).build()),
        ("adder-23", cuccaro_adder(23)), // 48 qubits
        (
            "rev-48",
            decompose_to_native(
                &Reversible::new(48)
                    .counts(&[(2, 60), (3, 45)])
                    .seed(11)
                    .build(),
            ),
        ),
    ];

    println!(
        "{:<10} {:>6} {:>7} {:>9} {:>8} | {:>7} {:>7} {:>9}",
        "circuit", "depth", "par", "idx-dist", "multiq%", "best α", "δF", "swap:move"
    );
    for (name, circuit) in &suite {
        let metrics = StructureMetrics::of(circuit);
        let mut best: Option<(f64, f64, usize, usize)> = None;
        for alpha in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let mapper = HybridMapper::new(
                params.clone(),
                MapperConfig::try_hybrid(alpha).expect("valid alpha"),
            )?;
            let outcome = mapper.map(circuit)?;
            verify_mapping(circuit, &outcome.mapped, &params)?;
            let report = scheduler.compare(circuit, &outcome.mapped);
            if best.is_none() || report.delta_f < best.unwrap().1 {
                best = Some((
                    alpha,
                    report.delta_f,
                    outcome.mapped.swap_count(),
                    outcome.mapped.shuttle_count(),
                ));
            }
        }
        let (alpha, delta_f, swaps, moves) = best.expect("swept");
        println!(
            "{:<10} {:>6} {:>7.2} {:>9.1} {:>8.0} | {:>7} {:>7.3} {:>5}:{}",
            name,
            metrics.depth,
            metrics.parallelism,
            metrics.index_locality_avg,
            100.0 * metrics.multi_qubit_fraction,
            alpha,
            delta_f,
            swaps,
            moves,
        );
    }

    println!("\nreading: high parallelism + long-range interactions (qft) favor");
    println!("mixing; shallow local circuits (ghz, graph) stay with one capability.");
    Ok(())
}
