//! A complete tool-style workflow: import an OpenQASM 2.0 circuit, map it
//! under different initial layouts, render the atom array, and check the
//! result against the statevector oracle.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example qasm_workflow
//! ```

use hybrid_na::mapper::render::render_state;
use hybrid_na::mapper::verify::verify_unitary_equivalence;
use hybrid_na::mapper::MappingState;
use hybrid_na::prelude::*;

const INPUT: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[8];
// 8-qubit hidden-shift-style kernel
h q[0]; h q[1]; h q[2]; h q[3]; h q[4]; h q[5]; h q[6]; h q[7];
cz q[0],q[7];
cz q[1],q[6];
cz q[2],q[5];
cz q[3],q[4];
ccx q[0],q[4],q[2];
cu1(pi/2) q[5],q[3];
h q[0]; h q[2]; h q[4]; h q[6];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = qasm::from_qasm(INPUT)?;
    println!(
        "imported {} ops on {} qubits; native after decomposition: {} ops\n",
        circuit.len(),
        circuit.num_qubits(),
        decompose_to_native(&circuit).len()
    );

    let params = HardwareParams::mixed()
        .to_builder()
        .lattice(4, 3.0)
        .num_atoms(12)
        .build()?;

    println!("initial atom array (identity layout, digits = qubits, o = spare):");
    let state = MappingState::identity(&params, circuit.num_qubits())?;
    println!("{}", render_state(&state, false));

    println!(
        "{:<16} {:>8} {:>8} {:>10}",
        "layout", "swaps", "moves", "δF"
    );
    let scheduler = Scheduler::new(params.clone());
    for (name, layout) in [
        ("identity", InitialLayout::Identity),
        ("center-compact", InitialLayout::CenterCompact),
        ("random(3)", InitialLayout::Random(3)),
    ] {
        let config = MapperConfig::try_hybrid(1.0)
            .expect("valid alpha")
            .with_initial_layout(layout);
        let mapper = HybridMapper::new(params.clone(), config)?;
        let outcome = mapper.map(&circuit)?;

        // Physics replay + full unitary equivalence (12 atoms -> exact).
        verify_mapping(&circuit, &outcome.mapped, &params)?;
        verify_unitary_equivalence(&circuit, &outcome.mapped, &params)?;

        let report = scheduler.compare(&circuit, &outcome.mapped);
        println!(
            "{:<16} {:>8} {:>8} {:>10.4}",
            name,
            outcome.mapped.swap_count(),
            outcome.mapped.shuttle_count(),
            report.delta_f
        );
    }

    println!("\nexported back to QASM:");
    let text = qasm::to_qasm(&circuit);
    for line in text.lines().take(6) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
