//! Round-trip a compile job through the `na-serve` service — both
//! in-process and over its hand-rolled HTTP transport with a raw
//! `TcpStream` client.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;

use na_serve::{CompileService, HttpServer, RetryPolicy, ServeConfig, Submission, SubmitError};

const JOB: &str = r#"{
  "request_id": "example-client-1",
  "version": 1,
  "target": {"preset": "mixed", "lattice_side": 6, "num_atoms": 20},
  "mapping": {"mode": "hybrid", "alpha": 1.0},
  "circuits": [
    {"name": "ghz-6",
     "qasm": "OPENQASM 2.0;\nqreg q[6];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\ncx q[3],q[4];\ncx q[4],q[5];\n"}
  ]
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = CompileService::start(ServeConfig {
        workers: 2,
        queue_cap: 16,
        cache_budget_bytes: 32 << 20,
        ..ServeConfig::default()
    });

    // --- In-process submission -------------------------------------
    // Transient rejections (queue full, deadline shedding) are worth a
    // few jittered-backoff retries before giving up; the deterministic
    // seed keeps the schedule reproducible.
    let retry = RetryPolicy::default();
    let response = retry
        .run(|| service.submit_wait(JOB), SubmitError::is_retryable)
        .expect("service accepts the job");
    let summary = na_serve::compact_json(&response);
    println!("in-process response ({} bytes):", response.len());
    println!("  {}...\n", &summary[..summary.len().min(120)]);

    // A second identical submission is answered from the artifact
    // cache — same bytes, no compile.
    match service.submit(JOB).expect("accepted") {
        Submission::Cached(cached) => {
            assert_eq!(cached, response);
            println!("resubmission served from cache: bytes identical\n");
        }
        other => panic!("expected a cache hit, got {other:?}"),
    }

    // --- The same job over HTTP ------------------------------------
    let server = HttpServer::bind(service.clone(), "127.0.0.1:0")?;
    let addr = server.local_addr()?;
    let stop = server.stop_handle();
    let accept_loop = std::thread::spawn(move || server.serve());
    println!("http server on {addr}");

    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "POST /v1/compile HTTP/1.1\r\nHost: example\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{JOB}",
        JOB.len(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").expect("http framing");
    println!(
        "  status: {}",
        head.lines().next().expect("status line present")
    );
    println!(
        "  x-cache: {}",
        head.lines()
            .find(|l| l.to_ascii_lowercase().starts_with("x-cache"))
            .unwrap_or("(none)")
    );
    assert_eq!(body, response, "http bytes match the in-process bytes");
    println!("  body matches the in-process response byte for byte\n");

    // --- Service metrics -------------------------------------------
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET /v1/metrics HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let metrics = raw.split_once("\r\n\r\n").expect("http framing").1;
    println!("metrics: {metrics}");

    stop.store(true, Ordering::SeqCst);
    accept_loop.join().expect("accept loop exits");
    service.shutdown();
    println!("\ndrained and shut down cleanly");
    Ok(())
}
