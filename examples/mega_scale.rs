//! Mega-scale compilation: QFT-128 on a 100×100 lattice hosting 4500
//! atoms — an order of magnitude past the paper's evaluation machine,
//! the scale the hierarchical coarse-to-fine routing layer (region
//! grid, corridor-bounded BFS, LRU-capped distance cache) targets.
//! Prints the mapping statistics, Eq. (1) schedule metrics and the
//! routing-cache counters of the compile.
//!
//! ```text
//! cargo run --release --example mega_scale
//! ```

use std::time::Instant;

use hybrid_na::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = HardwareParams::mixed()
        .to_builder()
        .lattice(100, 3.0)
        .num_atoms(4500)
        .build()?;
    println!(
        "target {}: {}x{} lattice ({} sites), {} atoms, r_int = {} d",
        Target::id(&target),
        target.lattice_side,
        target.lattice_side,
        target.lattice().num_sites(),
        target.num_atoms,
        target.r_int,
    );

    let compiler = Compiler::for_target(&target)
        .mapping(MappingOptions::hybrid(1.0))
        .baseline(false)
        .build()?;

    let circuit = Qft::new(128).build();
    println!(
        "circuit: QFT-128 ({} ops, {} entangling)",
        circuit.len(),
        circuit.entangling_count()
    );

    let start = Instant::now();
    let program = compiler.compile(&circuit)?;
    let elapsed = start.elapsed();

    println!(
        "compiled in {elapsed:?}: {} swaps, {} shuttle moves, {} AOD batches",
        program.mapped.swap_count(),
        program.mapped.shuttle_count(),
        program.stats.aod_batches,
    );
    println!(
        "schedule: {} items, makespan {:.1} us, log10 success {:.4}",
        program.schedule.len(),
        program.metrics.makespan_us,
        program.metrics.log10_success,
    );
    let cache = &program.stats.route_cache;
    println!(
        "route cache: {} hits / {} misses, peak {} resident fields \
         (cap {}), {} evictions",
        cache.hits,
        cache.misses,
        cache.peak_entries,
        na_mapper::DistanceCache::MAX_RESIDENT_FIELDS,
        cache.evictions,
    );
    Ok(())
}
