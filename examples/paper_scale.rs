//! Paper-scale compilation: QFT-64 on the paper's 15×15/200-atom mixed
//! machine (Table 1c) through a `Compiler` session, printing the
//! mapping statistics and Eq. (1) schedule metrics.
//!
//! ```text
//! cargo run --release --example paper_scale
//! ```

use std::time::Instant;

use hybrid_na::prelude::*;

fn main() -> Result<(), CompileError> {
    // The mixed preset IS the paper's evaluation machine: a 15×15
    // lattice hosting 200 atoms at r_int = 2.5 d.
    let target = HardwareParams::mixed();
    println!(
        "target {}: {}x{} lattice, {} atoms, r_int = {} d",
        Target::id(&target),
        target.lattice_side,
        target.lattice_side,
        target.num_atoms,
        target.r_int,
    );

    let compiler = Compiler::for_target(&target)
        .mapping(MappingOptions::hybrid(1.0))
        .baseline(true)
        .build()?;

    let circuit = Qft::new(64).build();
    println!(
        "circuit: QFT-64 ({} ops, {} entangling)",
        circuit.len(),
        circuit.entangling_count()
    );

    let start = Instant::now();
    let program = compiler.compile(&circuit)?;
    let elapsed = start.elapsed();

    println!(
        "compiled in {elapsed:?}: {} swaps, {} shuttle moves, {} AOD batches",
        program.mapped.swap_count(),
        program.mapped.shuttle_count(),
        program.stats.aod_batches,
    );
    println!(
        "schedule: {} items, makespan {:.1} us, log10 success {:.4}",
        program.schedule.len(),
        program.metrics.makespan_us,
        program.metrics.log10_success,
    );
    if let Some(report) = &program.comparison {
        println!(
            "vs ideal baseline: dCZ = {}, dT = {:.1} us, dF = {:.4}",
            report.delta_cz, report.delta_t_us, report.delta_f,
        );
    }
    Ok(())
}
