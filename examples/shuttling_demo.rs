//! AOD shuttling mechanics: the constraints of the paper's Fig. 1b and
//! Example 2, and how the scheduler batches compatible moves into single
//! AOD transactions.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example shuttling_demo
//! ```

use hybrid_na::arch::aod::{loads_parallel, moves_fully_parallel};
use hybrid_na::prelude::*;
use hybrid_na::schedule::ScheduledItem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the raw AOD compatibility rules -----------------------
    println!("AOD parallelization rules (paper Fig. 1b):");
    let cases = [
        (
            "same direction, order kept",
            Move::new(Site::new(0, 0), Site::new(0, 3)),
            Move::new(Site::new(2, 0), Site::new(2, 3)),
        ),
        (
            "columns would cross",
            Move::new(Site::new(0, 0), Site::new(3, 0)),
            Move::new(Site::new(2, 0), Site::new(1, 0)),
        ),
        (
            "shared row splits",
            Move::new(Site::new(0, 1), Site::new(0, 2)),
            Move::new(Site::new(3, 1), Site::new(3, 4)),
        ),
    ];
    for (what, a, b) in cases {
        println!(
            "  {what:<26} {a} || {b}: fully parallel = {}, loads parallel = {}",
            moves_fully_parallel(&a, &b),
            loads_parallel(&a, &b),
        );
    }

    // --- Part 2: batching in a real mapping ----------------------------
    // A graph state on shuttling-optimized hardware routes exclusively by
    // moves; the scheduler merges what the AOD can carry at once.
    let params = HardwareParams::shuttling()
        .to_builder()
        .lattice(8, 3.0)
        .num_atoms(40)
        .build()?;
    let circuit = GraphState::new(36).edges(60).seed(4).build();
    let mapper = HybridMapper::new(params.clone(), MapperConfig::shuttle_only())?;
    let outcome = mapper.map(&circuit)?;
    verify_mapping(&circuit, &outcome.mapped, &params)?;

    let schedule = Scheduler::new(params.clone()).schedule_mapped(&outcome.mapped);
    println!(
        "\nmapped graph-36: {} moves in {} AOD transactions, makespan {:.1} µs",
        schedule.move_count(),
        schedule.batch_count(),
        schedule.makespan_us
    );

    println!("\nfirst AOD transactions:");
    let mut shown = 0;
    for item in &schedule.items {
        if let ScheduledItem::AodBatch {
            moves,
            start_us,
            duration_us,
        } = item
        {
            println!(
                "  t = {start_us:>7.1} µs  ({duration_us:>5.1} µs): {} move(s)",
                moves.len()
            );
            for m in moves {
                println!("      {} {} -> {}", m.atom, m.from, m.to);
            }
            shown += 1;
            if shown == 5 {
                break;
            }
        }
    }

    println!("\neach transaction pays t_act + max-distance/v + t_deact once");
    println!(
        "(= {} + d/{} + {} µs on this hardware)",
        params.t_act_us, params.shuttle_speed_um_per_us, params.t_deact_us
    );
    Ok(())
}
