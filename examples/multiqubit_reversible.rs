//! Multi-qubit gate mapping: reversible-function circuits with `CᵐX`
//! gates (the paper's `bn` / `call` / `gray` workloads).
//!
//! Demonstrates:
//!
//! * `CᵐX → H · CᵐZ · H` decomposition,
//! * geometric *position finding* for `m ≥ 3` gates (paper §3.1.3), and
//!   the automatic fallback to shuttling when the interaction radius
//!   admits no position,
//! * the effect of the interaction radius on the gate-based router.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example multiqubit_reversible
//! ```

use hybrid_na::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's `call` profile scaled to half: CCX and CCCX gates only.
    let circuit = Reversible::new(25)
        .counts(&[(3, 96), (4, 28)])
        .seed(13)
        .build();
    let native = decompose_to_native(&circuit);
    let stats = native.stats();
    println!(
        "call/2 profile: n={} nCZ={} nC2Z={} nC3Z={}",
        stats.num_qubits,
        stats.cz_family_count(2),
        stats.cz_family_count(3),
        stats.cz_family_count(4),
    );

    // Sweep the interaction radius: larger r_int admits more geometric
    // arrangements, so gate-based routing needs fewer SWAPs.
    println!(
        "\n{:>6} {:>10} {:>8} {:>8} {:>10}",
        "r_int", "mode", "swaps", "moves", "δF"
    );
    for r_int in [1.5, 2.0, 3.0, 4.5] {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(7, 3.0)
            .num_atoms(30)
            .radius(r_int)
            .build()?;
        let scheduler = Scheduler::new(params.clone());
        for (mode, config) in [
            ("gate", MapperConfig::gate_only()),
            (
                "hybrid",
                MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            ),
        ] {
            let mapper = HybridMapper::new(params.clone(), config)?;
            let outcome = mapper.map(&circuit)?;
            verify_mapping(&circuit, &outcome.mapped, &params)?;
            let report = scheduler.compare(&circuit, &outcome.mapped);
            println!(
                "{:>6} {:>10} {:>8} {:>8} {:>10.3}",
                r_int,
                mode,
                outcome.mapped.swap_count(),
                outcome.mapped.shuttle_count(),
                report.delta_f
            );
        }
    }

    println!("\nlarger r_int -> more geometric positions -> fewer SWAPs (paper Ex. 7)");
    Ok(())
}
