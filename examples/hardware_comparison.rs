//! Hardware comparison: a miniature of the paper's Table 1a.
//!
//! Maps a small benchmark suite onto the three hardware presets of
//! Table 1c under all three compiler modes and prints the ΔCZ / ΔT / δF
//! comparison. The full-scale reproduction lives in the `na-bench` crate
//! (`cargo run -p na-bench --release --bin table1`).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example hardware_comparison
//! ```

use hybrid_na::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Quarter-scale hardware: 8x8 lattice, 50 atoms.
    let presets: Vec<HardwareParams> = HardwareParams::table1_presets()
        .into_iter()
        .map(|p| {
            p.to_builder()
                .lattice(8, 3.0)
                .num_atoms(50)
                .build()
                .expect("valid preset")
        })
        .collect();

    let suite: Vec<(&str, Circuit)> = vec![
        (
            "graph",
            GraphState::new(48).edges(52).seed(7).build().clone(),
        ),
        ("qft", Qft::new(48).build()),
        (
            "bn",
            decompose_to_native(
                &Reversible::new(48)
                    .counts(&[(2, 33), (3, 22)])
                    .seed(11)
                    .build(),
            ),
        ),
    ];

    for params in &presets {
        println!(
            "=== hardware: {} (r_int = {}d) ===",
            params.name, params.r_int
        );
        println!(
            "{:<8} {:<16} {:>8} {:>12} {:>10}",
            "circuit", "mode", "ΔCZ", "ΔT [µs]", "δF"
        );
        let scheduler = Scheduler::new(params.clone());
        for (name, circuit) in &suite {
            for (mode, config) in [
                ("shuttling-only", MapperConfig::shuttle_only()),
                ("gate-only", MapperConfig::gate_only()),
                (
                    "hybrid α=1",
                    MapperConfig::try_hybrid(1.0).expect("valid alpha"),
                ),
            ] {
                let mapper = HybridMapper::new(params.clone(), config)?;
                let outcome = mapper.map(circuit)?;
                verify_mapping(circuit, &outcome.mapped, params)?;
                let report = scheduler.compare(circuit, &outcome.mapped);
                println!(
                    "{:<8} {:<16} {:>8} {:>12.1} {:>10.3}",
                    name, mode, report.delta_cz, report.delta_t_us, report.delta_f
                );
            }
        }
        println!();
    }

    println!("expected shape (paper §4.2):");
    println!("  shuttling hardware -> shuttling-only wins, hybrid matches it");
    println!("  gate hardware      -> gate-only wins, hybrid matches it");
    println!("  mixed hardware     -> hybrid at least ties the best pure mode");
    Ok(())
}
