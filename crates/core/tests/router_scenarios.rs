//! Scenario tests for the two routers: concrete geometric situations
//! from the paper's challenge discussion (§3.1) replayed end to end.

use na_arch::{HardwareParams, Site};
use na_circuit::{Circuit, Qubit};
use na_mapper::{
    verify_mapping, AtomId, HybridMapper, MapError, MappedOp, MapperConfig, MappingState,
};

fn params(side: u32, atoms: u32, r: f64) -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(side, 3.0)
        .num_atoms(atoms)
        .radius(r)
        .build()
        .expect("valid")
}

/// §3.1.3 / Example 7: with r_int = √2 a three-qubit gate needs an
/// L-shaped arrangement; a pure "move together" strategy dead-ends, the
/// position finder must succeed anyway.
#[test]
fn example7_rectangle_arrangement_found() {
    let p = params(5, 24, std::f64::consts::SQRT_2);
    let mut c = Circuit::new(24);
    c.ccz(0, 2, 12); // spread over the lattice
    let outcome = HybridMapper::new(p.clone(), MapperConfig::gate_only())
        .unwrap()
        .map(&c)
        .unwrap();
    verify_mapping(&c, &outcome.mapped, &p).unwrap();
    // The CCZ executed on three pairwise-compatible sites.
    let gate = outcome
        .mapped
        .iter()
        .find_map(|op| match op {
            MappedOp::Gate { sites, .. } if sites.len() == 3 => Some(sites.clone()),
            _ => None,
        })
        .expect("ccz executed");
    for (i, &a) in gate.iter().enumerate() {
        for &b in &gate[i + 1..] {
            assert!(a.within(b, p.r_int));
        }
    }
}

/// §3.1.1 / Example 5: in a crowded region the shuttle router needs a
/// move-away before the direct move; the mapped stream must contain the
/// two-step pattern.
#[test]
fn move_away_pattern_in_crowded_lattice() {
    let p = HardwareParams::shuttling()
        .to_builder()
        .lattice(4, 3.0)
        .num_atoms(15)
        .radius(1.0)
        .build()
        .unwrap();
    let mut c = Circuit::new(15);
    c.cz(0, 10);
    let outcome = HybridMapper::new(p.clone(), MapperConfig::shuttle_only())
        .unwrap()
        .map(&c)
        .unwrap();
    verify_mapping(&c, &outcome.mapped, &p).unwrap();
    assert!(
        outcome.mapped.shuttle_count() >= 2,
        "crowded routing needs a move-away: {:?}",
        outcome.mapped.ops
    );
}

/// Gate-based routing around the lattice boundary: qubits in opposite
/// corners still meet.
#[test]
fn corner_to_corner_gate_routing() {
    let p = params(6, 35, 1.0);
    let mut c = Circuit::new(35);
    c.cz(0, 34);
    let outcome = HybridMapper::new(p.clone(), MapperConfig::gate_only())
        .unwrap()
        .map(&c)
        .unwrap();
    verify_mapping(&c, &outcome.mapped, &p).unwrap();
    assert!(outcome.mapped.swap_count() >= 5);
}

/// Gate-only mode must refuse gates that are geometrically impossible
/// instead of looping.
#[test]
fn infeasible_multiqubit_gate_rejected_quickly() {
    let p = params(5, 20, 1.0); // max mutual cluster at r=1 is a pair
    let mut c = Circuit::new(20);
    c.ccz(0, 1, 2);
    let start = std::time::Instant::now();
    let err = HybridMapper::new(p, MapperConfig::gate_only())
        .unwrap()
        .map(&c)
        .unwrap_err();
    assert!(matches!(err, MapError::GateTooLarge { arity: 3, .. }));
    assert!(start.elapsed().as_secs() < 2);
}

/// The same gate succeeds in hybrid mode? No — geometry is impossible for
/// shuttling too; the feasibility check fires for every mode.
#[test]
fn infeasible_gate_rejected_in_all_modes() {
    let p = params(5, 20, 1.0);
    let mut c = Circuit::new(20);
    c.ccz(0, 1, 2);
    for config in [
        MapperConfig::shuttle_only(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    ] {
        let err = HybridMapper::new(p.clone(), config)
            .unwrap()
            .map(&c)
            .unwrap_err();
        assert!(matches!(err, MapError::GateTooLarge { .. }));
    }
}

/// A chain of dependent CZs on one qubit line routes without the budget
/// safety net tripping (regression guard for the sticky-decision fix).
#[test]
fn hub_qubit_workload_terminates() {
    // Star topology: qubit 0 interacts with everyone (QPE-like hub).
    let p = params(6, 30, 2.0);
    let mut c = Circuit::new(30);
    for q in 1..30 {
        c.cp(0.3, q, 0);
    }
    for alpha in [0.5, 0.95, 1.0, 1.05, 2.0] {
        let outcome = HybridMapper::new(
            p.clone(),
            MapperConfig::try_hybrid(alpha).expect("valid alpha"),
        )
        .unwrap()
        .map(&c)
        .unwrap_or_else(|e| panic!("alpha {alpha}: {e}"));
        verify_mapping(&c, &outcome.mapped, &p).unwrap();
    }
}

/// Routing SWAPs may park qubits on spare (qubit-free) atoms: the |0⟩
/// partner semantics must replay correctly.
#[test]
fn swaps_with_spare_atoms_verify() {
    let p = params(5, 24, 1.0);
    let mut c = Circuit::new(12); // half the atoms are spares
    c.cz(0, 11).cz(3, 8);
    let outcome = HybridMapper::new(p.clone(), MapperConfig::gate_only())
        .unwrap()
        .map(&c)
        .unwrap();
    verify_mapping(&c, &outcome.mapped, &p).unwrap();
    // At least one swap partner should be a spare atom (ids >= 12).
    let uses_spare = outcome.mapped.iter().any(|op| match op {
        MappedOp::Swap { a, b, .. } => a.0 >= 12 || b.0 >= 12,
        _ => false,
    });
    // Not guaranteed by the heuristic, but the replay above must hold
    // either way; record the observation for context.
    let _ = uses_spare;
}

/// Shuttle-only mapping leaves the qubit->atom assignment untouched: the
/// final mapping equals the initial one (only f_a changed).
#[test]
fn shuttling_preserves_qubit_assignment() {
    let p = HardwareParams::shuttling()
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(20)
        .build()
        .unwrap();
    let mut c = Circuit::new(20);
    c.cz(0, 19).cz(5, 14);
    let outcome = HybridMapper::new(p.clone(), MapperConfig::shuttle_only())
        .unwrap()
        .map(&c)
        .unwrap();
    let mut state = MappingState::identity(&p, 20).unwrap();
    for op in outcome.mapped.iter() {
        match op {
            MappedOp::Shuttle { atom, to, .. } => state.apply_move(*atom, *to),
            MappedOp::Swap { .. } => panic!("shuttle-only emitted a swap"),
            _ => {}
        }
    }
    for q in 0..20u32 {
        assert_eq!(state.atom_of_qubit(Qubit(q)), AtomId(q));
    }
}

/// The stream records sites consistently with the motion history: the
/// final site of every atom matches an independent replay.
#[test]
fn site_bookkeeping_matches_replay() {
    let p = params(6, 25, 2.0);
    let mut c = Circuit::new(25);
    c.cz(0, 24).ccz(1, 12, 23).cz(4, 20);
    let outcome = HybridMapper::new(
        p.clone(),
        MapperConfig::try_hybrid(1.0).expect("valid alpha"),
    )
    .unwrap()
    .map(&c)
    .unwrap();
    let mut site_of: Vec<Site> = (0..25)
        .map(|i| {
            MappingState::identity(&p, 25)
                .unwrap()
                .site_of_atom(AtomId(i))
        })
        .collect();
    for op in outcome.mapped.iter() {
        match op {
            MappedOp::Shuttle { atom, from, to } => {
                assert_eq!(site_of[atom.index()], *from);
                site_of[atom.index()] = *to;
            }
            MappedOp::Swap {
                a,
                b,
                site_a,
                site_b,
            } => {
                assert_eq!(site_of[a.index()], *site_a);
                assert_eq!(site_of[b.index()], *site_b);
            }
            MappedOp::Gate { atoms, sites, .. } => {
                for (atom, site) in atoms.iter().zip(sites) {
                    assert_eq!(site_of[atom.index()], *site);
                }
            }
            _ => {}
        }
    }
}
