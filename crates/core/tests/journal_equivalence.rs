//! Journal/clone-path equivalence: the data-oriented routing core must
//! behave *exactly* like the historical clone-based candidate
//! evaluation.
//!
//! Three layers of evidence:
//!
//! 1. **Apply → undo exactness** (proptest): arbitrary journaled
//!    swap/move interleavings roll back to the identical state —
//!    positions, qubit map, occupancy stamp, invariants — on both the
//!    square and the zoned topology.
//! 2. **Clone-path decision parity**: every `Router::propose` call of a
//!    realistic routing run is re-evaluated on a pristine
//!    `MappingState` clone with a cold scratch arena; the proposals
//!    must match candidate-for-candidate (op-for-op), and the live
//!    state must come back untouched. Runs over the Table-1 hardware
//!    presets on both topologies.
//! 3. **Source guard**: no `MappingState` clone remains in the
//!    candidate-evaluation path of the shuttle router.

use na_arch::{HardwareParams, Lattice, Neighborhood, Site};
use na_circuit::generators::{GraphState, Qft};
use na_circuit::{decompose_to_native, Circuit, Qubit};
use na_mapper::decision::Decider;
use na_mapper::route::{Proposal, Router, RoutingContext};
use na_mapper::{
    AtomId, FrontierGate, InitialLayout, MappedCircuit, MapperConfig, MappingState, RouteScratch,
    RoutingEngine, StateJournal,
};
use proptest::prelude::*;

fn scaled(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
    preset
        .to_builder()
        .lattice(side, 3.0)
        .num_atoms(atoms)
        .build()
        .expect("valid")
}

// ---------------------------------------------------------------------
// 1. apply → undo exactness on the zoned topology (the square lattice
//    case lives in `state.rs`'s unit proptests).
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn journal_roundtrip_on_zoned_lattice(ops in proptest::collection::vec(
        (0u32..12, 0u32..12, 0usize..64, proptest::bool::ANY), 0..50)
    ) {
        let p = scaled(HardwareParams::mixed(), 8, 12);
        let lattice = Lattice::zoned(8, 2, 1).expect("valid banding");
        let sites: Vec<Site> = lattice.iter().collect();
        let mut s = MappingState::on_lattice(&p, lattice, 8, InitialLayout::Identity)
            .expect("fits");
        let reference = s.clone();
        let stamp0 = s.occupancy_stamp();
        let mut j = StateJournal::new();
        let mark = j.mark();
        for (a, b, site_idx, is_swap) in ops {
            if is_swap {
                if a != b {
                    s.apply_swap_journaled(AtomId(a), AtomId(b), &mut j);
                }
            } else {
                let target = sites[site_idx % sites.len()];
                if s.is_free(target) {
                    s.apply_move_journaled(AtomId(a), target, &mut j);
                }
            }
        }
        s.undo_to(&mut j, mark);
        prop_assert!(j.is_empty());
        prop_assert_eq!(&s, &reference);
        prop_assert_eq!(s.occupancy_stamp(), stamp0);
        prop_assert!(s.check_invariants().is_ok());
    }

    /// A speculative multi-commit round is exactly a sequential replay
    /// of its emitted op stream: applying the stream to a clone of the
    /// pre-round state reproduces the post-round state (positions,
    /// qubit map, occupancy, invariants), and swap-only rounds leave
    /// the live state's occupancy stamp untouched.
    #[test]
    fn speculative_round_equals_sequential_replay(seed in 0u64..500, pairs in 1usize..6) {
        let p = scaled(HardwareParams::mixed(), 8, 40);
        let mut state = MappingState::identity(&p, 40).expect("fits");
        // Random qubit-disjoint frontier pairs (Fisher-Yates on an LCG),
        // keeping only pairs that actually need routing.
        let mut qubits: Vec<u32> = (0..40).collect();
        let mut rng = seed | 1;
        for i in (1..qubits.len()).rev() {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (rng >> 33) as usize % (i + 1);
            qubits.swap(i, j);
        }
        let frontier: Vec<FrontierGate> = (0..pairs)
            .map(|g| FrontierGate {
                op_index: g,
                qubits: vec![Qubit(qubits[2 * g]), Qubit(qubits[2 * g + 1])],
                capability: na_mapper::Capability::GateBased,
            })
            .filter(|g| !state.qubits_mutually_connected(&g.qubits, p.r_int))
            .collect();
        // An empty frontier (every sampled pair already executable) is a
        // vacuous round; skip the engine call.
        if !frontier.is_empty() {
            let eligible: Vec<usize> = frontier.iter().map(|g| g.op_index).collect();

            let pre = state.clone();
            let stamp0 = state.occupancy_stamp();
            let mut engine = RoutingEngine::from_config(
                &p,
                &MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            );
            let mut scratch = RouteScratch::new();
            let mut out = MappedCircuit::new(40, 40);
            let report = engine
                .step_speculative(&mut state, &frontier, &[], &eligible, 1, &mut scratch, &mut out)
                .expect("identity layout is never stuck");
            prop_assert!(report.commits >= 1);

            let mut replay = pre;
            for op in out.iter() {
                match op {
                    na_mapper::MappedOp::Swap { a, b, .. } => replay.apply_swap(*a, *b),
                    na_mapper::MappedOp::Shuttle { atom, to, .. } => replay.apply_move(*atom, *to),
                    _ => {}
                }
            }
            prop_assert_eq!(&replay, &state, "replay diverged from the multi-commit round");
            prop_assert!(replay.check_invariants().is_ok());
            prop_assert!(state.check_invariants().is_ok());
            if report.moves == 0 {
                prop_assert_eq!(state.occupancy_stamp(), stamp0, "swap-only round bumped the stamp");
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. clone-path decision parity over full routing runs.
// ---------------------------------------------------------------------

/// Wraps a router; every `propose` is replayed on a pristine clone of
/// the state with a cold scratch arena (the historical clone-based
/// evaluation path) and the two proposals must agree exactly.
#[derive(Debug)]
struct CloneCheck<R> {
    inner: R,
    r_int: f64,
    checked: std::rc::Rc<std::cell::Cell<usize>>,
}

impl<R> CloneCheck<R> {
    fn new(inner: R, r_int: f64, checked: std::rc::Rc<std::cell::Cell<usize>>) -> Self {
        CloneCheck {
            inner,
            r_int,
            checked,
        }
    }
}

impl<R: Router> Router for CloneCheck<R> {
    fn capability(&self) -> na_mapper::Capability {
        self.inner.capability()
    }

    fn propose(
        &self,
        ctx: &mut RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        fallback: bool,
    ) -> Proposal {
        let before = ctx.state().clone();
        let stamp = ctx.state().occupancy_stamp();
        let live = self.inner.propose(ctx, frontier, lookahead, fallback);

        // In-place speculation must leave zero residue.
        assert_eq!(ctx.state(), &before, "propose mutated the live state");
        assert_eq!(
            ctx.state().occupancy_stamp(),
            stamp,
            "propose changed the occupancy stamp"
        );

        // The clone-based path: pristine state copy, cold arena.
        let mut clone = before;
        let mut cold = RouteScratch::new();
        let hood = Neighborhood::new(self.r_int);
        let table = na_arch::NeighborTable::build(clone.lattice(), &hood);
        let mut ctx2 = RoutingContext::new(&mut clone, &hood, &table, self.r_int, &mut cold);
        let reference = self.inner.propose(&mut ctx2, frontier, lookahead, fallback);

        assert_eq!(
            live.candidates, reference.candidates,
            "journaled candidates diverged from the clone-based path"
        );
        assert_eq!(live.handoff, reference.handoff, "handoff diverged");
        self.checked.set(self.checked.get() + 1);
        live
    }

    fn note_applied(&mut self, state: &MappingState, candidate: &na_mapper::Candidate) {
        self.inner.note_applied(state, candidate);
    }
}

/// Routes every entangling gate of `circuit` on `state` through a
/// clone-checked hybrid engine, gate by gate in stream order. Returns
/// the number of clone-checked propose calls.
fn route_clone_checked(
    params: &HardwareParams,
    mut state: MappingState,
    circuit: &Circuit,
) -> usize {
    let config = MapperConfig::try_hybrid(1.0).expect("valid alpha");
    let decider = Decider::new(params, &config);
    let checked = std::rc::Rc::new(std::cell::Cell::new(0));
    let gate_check = CloneCheck::new(
        na_mapper::GateRouter::new(params, &config),
        params.r_int,
        std::rc::Rc::clone(&checked),
    );
    let shuttle_check = CloneCheck::new(
        na_mapper::ShuttleRouter::new(params, &config),
        params.r_int,
        std::rc::Rc::clone(&checked),
    );
    let mut engine =
        RoutingEngine::with_routers(params, vec![Box::new(gate_check), Box::new(shuttle_check)]);
    let mut scratch = RouteScratch::new();
    let mut out = MappedCircuit::new(circuit.num_qubits(), params.num_atoms);

    let native = decompose_to_native(circuit);
    let pending: Vec<&na_circuit::Operation> = native.iter().filter(|op| op.arity() >= 2).collect();
    let mut budget = 0usize;
    for (i, op) in pending.iter().enumerate().take(40) {
        while !state.qubits_mutually_connected(op.qubits(), params.r_int) {
            let qubits: Vec<Qubit> = op.qubits().to_vec();
            let capability = decider.decide(&state, &qubits);
            let frontier = [FrontierGate {
                op_index: i,
                qubits,
                capability,
            }];
            engine
                .step(&mut state, &frontier, &[], &mut scratch, &mut out)
                .expect("routable");
            budget += 1;
            assert!(budget < 4000, "routing must converge");
        }
    }
    state.check_invariants().expect("state stays consistent");
    checked.get()
}

#[test]
fn journaled_decisions_match_clone_path_on_table1_presets_square() {
    for preset in [
        HardwareParams::mixed(),
        HardwareParams::gate_based(),
        HardwareParams::shuttling(),
    ] {
        let p = scaled(preset, 6, 25);
        for circuit in [
            Qft::new(12).build(),
            GraphState::new(16).edges(22).seed(5).build(),
        ] {
            let state = MappingState::identity(&p, circuit.num_qubits()).expect("fits");
            let checks = route_clone_checked(&p, state, &circuit);
            assert!(checks > 0, "{}: no propose calls checked", p.name);
        }
    }
}

#[test]
fn journaled_decisions_match_clone_path_on_zoned_topology() {
    let p = scaled(HardwareParams::mixed(), 8, 25);
    let lattice = Lattice::zoned(8, 2, 1).expect("valid banding");
    let circuit = Qft::new(12).build();
    let state =
        MappingState::on_lattice(&p, lattice, circuit.num_qubits(), InitialLayout::Identity)
            .expect("fits");
    let checks = route_clone_checked(&p, state, &circuit);
    assert!(checks > 0, "no propose calls checked");
}

// ---------------------------------------------------------------------
// 3. source guard: the candidate-evaluation path is clone-free.
// ---------------------------------------------------------------------

#[test]
fn no_mapping_state_clone_in_candidate_evaluation() {
    let shuttle_src = include_str!("../src/route/shuttle.rs");
    let gate_src = include_str!("../src/route/gate.rs");
    for (name, src) in [("shuttle.rs", shuttle_src), ("gate.rs", gate_src)] {
        // Only the production half counts — unit tests may clone states
        // to build fixtures.
        let production = src.split("#[cfg(test)]").next().expect("non-empty");
        assert!(
            !production.contains("state.clone()") && !production.contains("sim = "),
            "{name} still clones the mapping state in the hot path"
        );
    }
}
