//! Coverage of the unified routing engine across every circuit
//! generator and every capability configuration: gate-only,
//! shuttle-only, and hybrid mappings must all produce
//! `verify_mapping`-clean streams, with mode invariants (no shuttles in
//! gate-only, no SWAPs in shuttle-only) intact.

use na_arch::HardwareParams;
use na_circuit::generators::{
    cuccaro_adder, ghz, GraphState, Qaoa, Qft, Qpe, RandomCircuit, Reversible,
};
use na_circuit::Circuit;
use na_mapper::{verify_mapping, HybridMapper, MapperConfig};
use proptest::prelude::*;

/// Every generator in `na_circuit::generators`, sized for a 6×6 lattice.
fn generator_suite() -> Vec<(&'static str, Circuit)> {
    vec![
        ("qft", Qft::new(14).build()),
        ("qpe", Qpe::new(14).build()),
        ("qaoa", Qaoa::new(16).edges(22).layers(2).seed(3).build()),
        ("graph_state", GraphState::new(18).edges(24).seed(5).build()),
        (
            "random",
            RandomCircuit::new(18)
                .layers(5)
                .multi_qubit_fraction(0.2)
                .seed(7)
                .build(),
        ),
        (
            "reversible",
            Reversible::new(16)
                .counts(&[(2, 18), (3, 10)])
                .seed(9)
                .build(),
        ),
        ("ghz", ghz(18)),
        ("cuccaro_adder", cuccaro_adder(5)),
    ]
}

fn hardware(preset: HardwareParams) -> HardwareParams {
    preset
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(26)
        .build()
        .expect("valid")
}

#[test]
fn every_generator_verifies_in_every_mode() {
    let params = hardware(HardwareParams::mixed());
    for (name, circuit) in generator_suite() {
        for (mode, config) in [
            ("gate-only", MapperConfig::gate_only()),
            ("shuttle-only", MapperConfig::shuttle_only()),
            (
                "hybrid",
                MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            ),
        ] {
            let mapper = HybridMapper::new(params.clone(), config.clone()).expect("valid");
            let outcome = mapper
                .map(&circuit)
                .unwrap_or_else(|e| panic!("{name}/{mode}: {e}"));
            verify_mapping(&circuit, &outcome.mapped, &params)
                .unwrap_or_else(|e| panic!("{name}/{mode}: {e}"));
            if config.is_gate_only() {
                assert_eq!(
                    outcome.mapped.shuttle_count(),
                    0,
                    "{name}: gate-only emitted shuttles"
                );
            }
            if config.is_shuttle_only() {
                assert_eq!(
                    outcome.mapped.swap_count(),
                    0,
                    "{name}: shuttle-only emitted SWAPs"
                );
            }
        }
    }
}

#[test]
fn every_generator_verifies_on_every_preset() {
    for preset in HardwareParams::table1_presets() {
        let params = hardware(preset);
        for (name, circuit) in generator_suite() {
            let mapper = HybridMapper::new(
                params.clone(),
                MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            )
            .expect("valid");
            let outcome = mapper
                .map(&circuit)
                .unwrap_or_else(|e| panic!("{name}@{}: {e}", params.name));
            verify_mapping(&circuit, &outcome.mapped, &params)
                .unwrap_or_else(|e| panic!("{name}@{}: {e}", params.name));
        }
    }
}

/// Routing statistics always agree with the emitted op stream, whatever
/// the mode.
#[test]
fn stats_agree_with_stream_in_every_mode() {
    let params = hardware(HardwareParams::mixed());
    for (_, circuit) in generator_suite() {
        for config in [
            MapperConfig::gate_only(),
            MapperConfig::shuttle_only(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        ] {
            let outcome = HybridMapper::new(params.clone(), config)
                .expect("valid")
                .map(&circuit)
                .expect("mappable");
            assert_eq!(outcome.stats.swaps_inserted, outcome.mapped.swap_count());
            assert_eq!(outcome.stats.shuttle_moves, outcome.mapped.shuttle_count());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits over random hybrid ratios and seeds stay
    /// verify-clean through the engine.
    #[test]
    fn random_hybrid_ratios_verify(
        seed in 0u64..500,
        layers in 1usize..7,
        log_alpha in -2.0f64..2.0,
    ) {
        let params = hardware(HardwareParams::mixed());
        let circuit = RandomCircuit::new(16)
            .layers(layers)
            .multi_qubit_fraction(0.25)
            .seed(seed)
            .build();
        let config = MapperConfig::try_hybrid(10f64.powf(log_alpha)).expect("valid alpha");
        let outcome = HybridMapper::new(params.clone(), config)
            .expect("valid")
            .map(&circuit)
            .expect("mappable");
        verify_mapping(&circuit, &outcome.mapped, &params).expect("verified");
    }

    /// The engine is deterministic: identical inputs produce identical
    /// op streams.
    #[test]
    fn engine_is_deterministic(seed in 0u64..200) {
        let params = hardware(HardwareParams::mixed());
        let circuit = RandomCircuit::new(14)
            .layers(4)
            .multi_qubit_fraction(0.2)
            .seed(seed)
            .build();
        let mapper = HybridMapper::new(params, MapperConfig::try_hybrid(1.0).expect("valid alpha")).expect("valid");
        let a = mapper.map(&circuit).expect("mappable");
        let b = mapper.map(&circuit).expect("mappable");
        prop_assert_eq!(a.mapped.ops, b.mapped.ops);
    }
}
