//! Property tests for the scaling primitives of the routing hot path:
//!
//! * CSR-table BFS ≡ the geometric reference BFS (whole field),
//! * target-bounded early-exit BFS ≡ the full field **on the requested
//!   targets**, over random occupancy patterns, radii and topologies,
//! * the resumable cache upgrade: bounded query → full field does not
//!   change the answer and never repeats settle work.

use proptest::prelude::*;

use na_arch::{HardwareParams, Lattice, NeighborTable, Neighborhood, Site};
use na_mapper::route::distance::{
    bfs_occupied, bfs_occupied_bounded_into, bfs_occupied_table_into, region_bfs_into, UNREACHABLE,
};
use na_mapper::route::DistanceCache;
use na_mapper::{AtomId, InitialLayout, MappingState};

/// A mapping state with pseudo-random occupancy: `num_atoms` atoms on
/// `lattice`, scattered by a deterministic walk driven by `seed`.
fn scattered_state(lattice: Lattice, num_atoms: u32, seed: u64) -> MappingState {
    let params = HardwareParams::mixed()
        .to_builder()
        .lattice(lattice.side(), 3.0)
        .num_atoms(num_atoms)
        .build()
        .expect("valid");
    let mut state = MappingState::on_lattice(&params, lattice, num_atoms, InitialLayout::Identity)
        .expect("fits");
    // Deterministic scatter: move atoms to pseudo-random free sites.
    let mut rng = seed | 1;
    for a in 0..num_atoms {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let free = state.free_site_indices();
        if free.is_empty() {
            break;
        }
        let pick = free[(rng >> 33) as usize % free.len()] as usize;
        let site = state.lattice().site(pick);
        state.apply_move(AtomId(a), site);
    }
    state
        .check_invariants()
        .expect("scatter preserves invariants");
    state
}

/// Occupied sites of `state`, used as starts/targets pools.
fn occupied_sites(state: &MappingState) -> Vec<Site> {
    state
        .lattice()
        .iter()
        .filter(|s| !state.is_free(*s))
        .collect()
}

proptest! {
    /// CSR-table BFS produces the identical distance field to the
    /// geometric `hood.around` reference on random occupancy.
    #[test]
    fn csr_bfs_equals_reference(side in 4u32..10, fill in 3u32..40,
                                seed in 0u64..1000, r in 1.0f64..3.0) {
        let lattice = Lattice::new(side);
        let atoms = fill.min(lattice.num_sites() as u32 - 1);
        let state = scattered_state(lattice, atoms, seed);
        let hood = Neighborhood::new(r);
        let table = NeighborTable::build(state.lattice(), &hood);
        let occ = occupied_sites(&state);
        let start = occ[seed as usize % occ.len()];
        let reference = bfs_occupied(&state, &[start], &hood);
        let mut dist = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        bfs_occupied_table_into(&state, &[start], &table, &mut dist, &mut queue);
        prop_assert_eq!(&dist, &reference);
    }

    /// Same equivalence over zoned lattices (lane rows never carry
    /// atoms, so the CSR table and the geometric filter must agree).
    #[test]
    fn csr_bfs_equals_reference_zoned(side in 5u32..10, zone in 1u32..3,
                                      seed in 0u64..1000, r in 1.0f64..3.0) {
        let lattice = Lattice::zoned(side, zone, 1).expect("valid");
        let atoms = (lattice.num_sites() as u32 / 2).max(2);
        let state = scattered_state(lattice, atoms, seed);
        let hood = Neighborhood::new(r);
        let table = NeighborTable::build(state.lattice(), &hood);
        let occ = occupied_sites(&state);
        let start = occ[seed as usize % occ.len()];
        let reference = bfs_occupied(&state, &[start], &hood);
        let mut dist = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        bfs_occupied_table_into(&state, &[start], &table, &mut dist, &mut queue);
        prop_assert_eq!(&dist, &reference);
    }

    /// Bounded early-exit BFS answers exactly like the full field on
    /// every requested target — including `UNREACHABLE` verdicts — over
    /// random occupancy patterns, radii and target sets.
    #[test]
    fn bounded_bfs_equals_full_on_targets(side in 4u32..10, fill in 3u32..40,
                                          seed in 0u64..1000, r in 1.0f64..3.0,
                                          target_picks in proptest::collection::vec(0usize..1000, 1..6)) {
        let lattice = Lattice::new(side);
        let atoms = fill.min(lattice.num_sites() as u32 - 1);
        let state = scattered_state(lattice, atoms, seed);
        let hood = Neighborhood::new(r);
        let table = NeighborTable::build(state.lattice(), &hood);
        let occ = occupied_sites(&state);
        let start = occ[seed as usize % occ.len()];
        // Targets drawn from the whole lattice: occupied, free, and
        // (often) unreachable sites all exercised.
        let all: Vec<Site> = state.lattice().iter().collect();
        let targets: Vec<Site> = target_picks.iter().map(|&p| all[p % all.len()]).collect();

        let reference = bfs_occupied(&state, &[start], &hood);
        let mut dist = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        let settled = bfs_occupied_bounded_into(
            &state, &[start], &table, &targets, &mut dist, &mut queue,
        );
        for &t in &targets {
            let idx = state.lattice().index(t);
            prop_assert_eq!(dist[idx], reference[idx], "target {} disagrees", t);
        }
        // The bounded search never settles more than the full field.
        let full_settled = reference.iter().filter(|&&d| d != UNREACHABLE).count();
        prop_assert!(settled <= full_settled);
    }

    /// The coarse region-BFS distance is an **admissible lower bound**
    /// on the exact fine BFS distance: for every site the fine search
    /// reaches, its region's hop distance (seeded at the start's
    /// region) never exceeds the fine hop distance — and a region the
    /// region graph cannot reach contains no fine-reachable site. This
    /// is the invariant that makes corridor pruning exact.
    #[test]
    fn region_bfs_lower_bounds_fine_distance(side in 9u32..28, fill in 8u32..160,
                                             seed in 0u64..1000, r in 1.0f64..3.0) {
        let lattice = Lattice::new(side);
        let atoms = fill.min(lattice.num_sites() as u32 - 1);
        let state = scattered_state(lattice, atoms, seed);
        let hood = Neighborhood::new(r);
        let table = NeighborTable::build(state.lattice(), &hood);
        let occ = occupied_sites(&state);
        let start = occ[seed as usize % occ.len()];
        let fine = bfs_occupied(&state, &[start], &hood);
        let grid = table.regions();
        let start_region = grid.region_of(state.lattice().index(start));
        let mut rdist = Vec::new();
        let mut rqueue = std::collections::VecDeque::new();
        region_bfs_into(grid, &[start_region], &mut rdist, &mut rqueue);
        for (idx, &d) in fine.iter().enumerate() {
            if d == UNREACHABLE {
                continue;
            }
            let region = grid.region_of(idx) as usize;
            prop_assert_ne!(
                rdist[region], UNREACHABLE,
                "fine-reachable site {} sits in a region-unreachable region", idx
            );
            prop_assert!(
                rdist[region] <= d,
                "region distance {} exceeds fine distance {} at site {}",
                rdist[region], d, idx
            );
        }
    }

    /// The cache's corridor-armed bounded query (region BFS from the
    /// target regions restricting the fine drain) answers exactly like
    /// the corridor-less [`bfs_occupied_bounded_into`] on every
    /// requested target — corridor pruning is a pure accelerator.
    #[test]
    fn corridor_bounded_query_equals_full_bounded_bfs(side in 9u32..26, fill in 8u32..120,
                                                      seed in 0u64..1000, r in 1.0f64..3.0,
                                                      target_picks in proptest::collection::vec(0usize..1000, 1..6)) {
        let lattice = Lattice::new(side);
        let atoms = fill.min(lattice.num_sites() as u32 - 1);
        let state = scattered_state(lattice, atoms, seed);
        let hood = Neighborhood::new(r);
        let table = NeighborTable::build(state.lattice(), &hood);
        let occ = occupied_sites(&state);
        let start = occ[seed as usize % occ.len()];
        let all: Vec<Site> = state.lattice().iter().collect();
        let targets: Vec<Site> = target_picks.iter().map(|&p| all[p % all.len()]).collect();

        let mut dist = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        bfs_occupied_bounded_into(&state, &[start], &table, &targets, &mut dist, &mut queue);

        let cache = DistanceCache::new();
        let mut out = Vec::new();
        cache.distances_at(&state, &table, start, &targets, &mut out);
        for (i, &t) in targets.iter().enumerate() {
            prop_assert_eq!(
                out[i], dist[state.lattice().index(t)],
                "corridor query disagrees on target {}", t
            );
        }
    }

    /// Corridor equivalence over zoned lattices, where a lane gap wider
    /// than the interaction radius disconnects the bands outright: the
    /// region graph proves cross-band targets unreachable and the
    /// corridor may answer without any fine BFS — the verdicts must
    /// still match the exhaustive bounded search exactly.
    #[test]
    fn corridor_bounded_query_equals_full_bounded_bfs_zoned(side in 9u32..20, zone in 1u32..4,
                                                            gap in 1u32..4, seed in 0u64..1000,
                                                            r in 1.0f64..3.0,
                                                            target_picks in proptest::collection::vec(0usize..1000, 1..6)) {
        let lattice = Lattice::zoned(side, zone, gap).expect("valid");
        let atoms = (lattice.num_sites() as u32 / 2).max(2);
        let state = scattered_state(lattice, atoms, seed);
        let hood = Neighborhood::new(r);
        let table = NeighborTable::build(state.lattice(), &hood);
        let occ = occupied_sites(&state);
        let start = occ[seed as usize % occ.len()];
        let all: Vec<Site> = state.lattice().iter().collect();
        let targets: Vec<Site> = target_picks.iter().map(|&p| all[p % all.len()]).collect();

        let mut dist = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        bfs_occupied_bounded_into(&state, &[start], &table, &targets, &mut dist, &mut queue);

        let cache = DistanceCache::new();
        let mut out = Vec::new();
        cache.distances_at(&state, &table, start, &targets, &mut out);
        for (i, &t) in targets.iter().enumerate() {
            prop_assert_eq!(
                out[i], dist[state.lattice().index(t)],
                "zoned corridor query disagrees on target {}", t
            );
        }
    }

    /// A zoned lattice whose lane gap exceeds the interaction radius
    /// disconnects the bands — a query whose target band sits in a
    /// different (region-graph-unreachable) coarse region must count as
    /// pruned, never as a plain flood of the start's component. Note
    /// the geometry: regions are 8 cells tall
    /// ([`na_arch::RegionGrid::DEFAULT_SIDE`]), so start and target
    /// must be more than one region row apart for region-level pruning
    /// to be *observable* — intra-region disconnection is (correctly)
    /// resolved by the fine BFS, not the corridor.
    #[test]
    fn cross_band_queries_always_trip_corridor_pruning(side in 18u32..28, seed in 0u64..1000) {
        // Bands of 2 trap rows every 4 rows: band starts (multiples of
        // 4) never straddle an 8-row region boundary, so with r = 1 <
        // gap = 2 no fine edge ever crosses region rows.
        let lattice = Lattice::zoned(side, 2, 2).expect("valid");
        let state = scattered_state(lattice, 4, seed);
        let hood = Neighborhood::new(1.0); // gap 2 > r 1: bands disconnected
        let table = NeighborTable::build(state.lattice(), &hood);
        let sites: Vec<Site> = state.lattice().iter().collect();
        let start = sites[0];
        let target = *sites.last().expect("non-empty lattice");
        prop_assert!(target.y - start.y >= 16, "sites must span region rows");

        let cache = DistanceCache::new();
        let mut out = Vec::new();
        cache.distances_at(&state, &table, start, &[target], &mut out);
        prop_assert_eq!(out[0], UNREACHABLE, "cross-band target must be unreachable");
        let stats = cache.snapshot();
        prop_assert!(stats.corridor_queries > 0, "query must arm the corridor");
        prop_assert!(
            stats.corridor_pruned > 0,
            "disconnected-band query must prune, not flood: {:?}", stats
        );
    }

    /// The cache's bounded query plus the full-field upgrade resumes the
    /// same search: answers match the reference and total settle work
    /// equals exactly one full BFS.
    #[test]
    fn cache_resume_is_exact_and_work_conserving(side in 4u32..9, fill in 4u32..30,
                                                 seed in 0u64..1000, r in 1.0f64..2.6) {
        let lattice = Lattice::new(side);
        let atoms = fill.min(lattice.num_sites() as u32 - 1);
        let state = scattered_state(lattice, atoms, seed);
        let hood = Neighborhood::new(r);
        let table = NeighborTable::build(state.lattice(), &hood);
        let occ = occupied_sites(&state);
        let start = occ[seed as usize % occ.len()];
        let target = occ[(seed / 7) as usize % occ.len()];

        let cache = DistanceCache::new();
        let mut out = Vec::new();
        cache.distances_at(&state, &table, start, &[target], &mut out);
        let reference = bfs_occupied(&state, &[start], &hood);
        prop_assert_eq!(out[0], reference[state.lattice().index(target)]);
        // Upgrade to the full field: identical to the reference.
        let full = cache.field(&state, &table, start);
        prop_assert_eq!(&*full, &reference);
        // Work conservation: bounded + resume settled each reachable
        // site exactly once.
        let full_settled = reference.iter().filter(|&&d| d != UNREACHABLE).count() as u64;
        prop_assert_eq!(cache.sites_settled(), full_settled);
    }
}
