//! Initial layout strategies.
//!
//! The paper evaluates with the trivial identity layout
//! (`q_i ↔ Q_i ↔ C_i`, §4.1) and leaves layout optimization as future
//! work; this module provides the identity plus two useful alternatives
//! so the effect of the initial placement can be studied (ablation A4 in
//! DESIGN.md).

use na_arch::{Lattice, Site};
use serde::{Deserialize, Serialize};

/// How atoms (and therefore circuit qubits, which start on atom `i`) are
/// placed on the lattice before routing begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum InitialLayout {
    /// Row-major identity placement: atom `i` on site index `i` (the
    /// paper's setting).
    #[default]
    Identity,
    /// Atoms packed around the lattice center, nearest sites first.
    /// Reduces boundary effects: early routing happens in a region with
    /// full vicinities.
    CenterCompact,
    /// Seeded random placement (for robustness experiments).
    Random(u64),
}

impl InitialLayout {
    /// The site of atom `i` for each `i < num_atoms`.
    ///
    /// # Panics
    ///
    /// Panics if `num_atoms` exceeds the lattice size.
    pub fn place(&self, lattice: &Lattice, num_atoms: u32) -> Vec<Site> {
        let total = lattice.num_sites();
        assert!(
            (num_atoms as usize) <= total,
            "cannot place {num_atoms} atoms on {total} sites"
        );
        match self {
            InitialLayout::Identity => (0..num_atoms as usize).map(|i| lattice.site(i)).collect(),
            InitialLayout::CenterCompact => {
                let c = (f64::from(lattice.side()) - 1.0) / 2.0;
                let mut sites: Vec<Site> = lattice.iter().collect();
                sites.sort_by(|a, b| {
                    let da = (f64::from(a.x) - c).powi(2) + (f64::from(a.y) - c).powi(2);
                    let db = (f64::from(b.x) - c).powi(2) + (f64::from(b.y) - c).powi(2);
                    da.partial_cmp(&db).expect("finite").then(a.cmp(b))
                });
                sites.truncate(num_atoms as usize);
                sites
            }
            InitialLayout::Random(seed) => {
                // Deterministic Fisher-Yates driven by a splitmix64 stream
                // (keeps `na-mapper` free of a rand dependency).
                let mut sites: Vec<Site> = lattice.iter().collect();
                let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut next = || {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^ (z >> 31)
                };
                for i in (1..sites.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    sites.swap(i, j);
                }
                sites.truncate(num_atoms as usize);
                sites
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_row_major() {
        let lattice = Lattice::new(4);
        let sites = InitialLayout::Identity.place(&lattice, 6);
        assert_eq!(sites[0], Site::new(0, 0));
        assert_eq!(sites[5], Site::new(1, 1));
    }

    #[test]
    fn center_compact_starts_at_center() {
        let lattice = Lattice::new(5);
        let sites = InitialLayout::CenterCompact.place(&lattice, 5);
        assert_eq!(sites[0], Site::new(2, 2));
        // All early sites adjacent to the center.
        for s in &sites[1..] {
            assert!(s.distance(Site::new(2, 2)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn placements_are_disjoint_and_in_bounds() {
        let lattice = Lattice::new(6);
        for layout in [
            InitialLayout::Identity,
            InitialLayout::CenterCompact,
            InitialLayout::Random(42),
        ] {
            let sites = layout.place(&lattice, 30);
            assert_eq!(sites.len(), 30);
            let mut dedup = sites.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 30, "{layout:?} produced duplicates");
            for s in sites {
                assert!(lattice.contains(s));
            }
        }
    }

    #[test]
    fn random_layout_deterministic_per_seed() {
        let lattice = Lattice::new(6);
        let a = InitialLayout::Random(7).place(&lattice, 20);
        let b = InitialLayout::Random(7).place(&lattice, 20);
        let c = InitialLayout::Random(8).place(&lattice, 20);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_atoms_panics() {
        InitialLayout::Identity.place(&Lattice::new(3), 10);
    }
}
