//! Hybrid gate/shuttling circuit mapper for neutral-atom quantum
//! computers.
//!
//! This crate implements the core contribution of *"Hybrid Circuit
//! Mapping: Leveraging the Full Spectrum of Computational Capabilities of
//! Neutral Atom Quantum Computers"* (Schmid et al., DAC 2024): a compiler
//! that routes each gate of a quantum circuit either by **SWAP insertion**
//! (modifying the qubit mapping `f_q`) or by **atom shuttling** (modifying
//! the atom mapping `f_a`), choosing per gate via success-probability
//! estimates derived from the hardware parameters.
//!
//! The mapping process follows the five building blocks of the paper's
//! Fig. 4:
//!
//! 1. layer creation (commutation-aware frontier + lookahead, from
//!    [`na_circuit::dag`]),
//! 2. capability decision ([`decision`]),
//! 3. gate-based mapping ([`route::gate`], cost Eq. (2)–(3)),
//! 4. shuttling-based mapping ([`route::shuttle`], cost Eq. (4)–(5)),
//! 5. processing to hardware operations ([`ops`], consumed by
//!    `na-schedule`).
//!
//! Steps 3 and 4 run inside the unified [`route::RoutingEngine`]: both
//! routers implement the [`route::Router`] trait, share one
//! [`route::CostModel`] (Eq. 1–5) and one cached distance layer
//! ([`route::RoutingContext`]), and compete through a single candidate
//! comparator.
//!
//! # Example
//!
//! ```
//! use na_arch::HardwareParams;
//! use na_circuit::generators::Qft;
//! use na_mapper::{HybridMapper, MapperConfig};
//!
//! let params = HardwareParams::mixed()
//!     .to_builder()
//!     .lattice(6, 3.0)
//!     .num_atoms(16)
//!     .build()?;
//! let mapper = HybridMapper::new(params, MapperConfig::try_hybrid(1.0).expect("valid alpha"))?;
//! let outcome = mapper.map(&Qft::new(8).build())?;
//! assert!(outcome.stats.swaps_inserted + outcome.stats.shuttle_moves > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cancel;
pub mod config;
pub mod decision;
pub mod error;
pub mod layout;
pub mod mapper;
pub mod ops;
pub mod render;
pub mod route;
pub mod sink;
pub mod state;
pub mod verify;

pub use cancel::{CancelReason, CancelToken};
pub use config::{MapperConfig, RoundMode};
pub use decision::Capability;
pub use error::{ConfigError, MapError};
pub use layout::InitialLayout;
pub use mapper::{HybridMapper, MapScratch, MapStats, MappingOutcome, StreamOutcome};
pub use ops::{AtomId, MappedCircuit, MappedOp};
pub use route::{
    CacheStats, Candidate, CostModel, DistanceCache, FrontierGate, GateRouter, RouteScratch,
    Router, RoutingContext, RoutingEngine, RoutingOp, ShuttleRouter,
};
pub use sink::OpSink;
pub use state::{JournalMark, MappingState, StateJournal};
pub use verify::{verify_mapping, verify_mapping_on, VerifyError};
