//! The hybrid mapping process (paper Fig. 4).
//!
//! [`HybridMapper::map`] consumes a circuit and produces a stream of
//! hardware operations by iterating the five building blocks:
//!
//! 1. **Layer creation** — commutation-aware frontier and lookahead from
//!    [`na_circuit::dag`].
//! 2. **Capability decision** — each frontier gate is assigned to a
//!    routing capability by comparing weighted success-probability
//!    estimates ([`crate::decision`]); the assignment is sticky until the
//!    gate executes.
//! 3. **Routing (with 4.)** — the unified
//!    [`crate::route::RoutingEngine`] lets every registered router
//!    propose candidates for its gates and applies the best one per
//!    round through a single comparator. Gate-based mapping (Eq. 2–3)
//!    and shuttling-based mapping (Eq. 4–5) are the two built-in
//!    routers; their priority ordering (SWAPs before shuttles, paper
//!    §3.2 (4)) is a property of the engine, not of this loop.
//! 5. **Processing to hardware operations** — the emitted
//!    [`MappedOp`] stream (SWAP decomposition and AOD batching happen in
//!    `na-schedule`).
//!
//! The mapper itself is strategy-agnostic: it never names a concrete
//! router, it only partitions gates by [`Capability`] and persists the
//! engine's reassignment reports.

use std::time::{Duration, Instant};

use na_arch::{HardwareParams, Lattice, NativeGateSet, NeighborTable, Target};
use na_circuit::{decompose_to_native, Circuit, CircuitDag, LayerTracker, Operation};

use serde::{Deserialize, Serialize};

use crate::cancel::CancelToken;
use crate::config::{MapperConfig, RoundMode};
use crate::decision::{Capability, Decider};
use crate::error::MapError;
use crate::ops::{MappedCircuit, MappedOp};
use crate::route::{FrontierGate, RouteScratch, RoutingEngine};
use crate::sink::OpSink;
use crate::state::MappingState;

/// Reusable working memory of one mapping thread: the routing arena plus
/// the per-round frontier/lookahead buffers.
///
/// One `MapScratch` serves one thread. Created implicitly by
/// [`HybridMapper::map`] / [`HybridMapper::map_into`]; callers that map
/// many circuits on the same thread (e.g. batch compilation workers)
/// should create one and pass it to
/// [`HybridMapper::map_into_scratch`] so the distance-cache pools and
/// router tables stay warm across circuits. No semantic state crosses
/// circuits — only buffer capacity.
#[derive(Debug, Default)]
pub struct MapScratch {
    pub(crate) route: RouteScratch,
    frontier: Vec<FrontierGate>,
    lookahead: Vec<FrontierGate>,
}

impl MapScratch {
    /// An empty scratch; buffers grow on first use and stay warm.
    pub fn new() -> Self {
        MapScratch::default()
    }

    /// The routing arena (exposed for benchmarks/diagnostics).
    pub fn route(&self) -> &RouteScratch {
        &self.route
    }
}

/// Statistics of one mapping run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MapStats {
    /// Routing SWAPs inserted (each decomposes to 3 CZ downstream).
    pub swaps_inserted: usize,
    /// Shuttle moves inserted.
    pub shuttle_moves: usize,
    /// Entangling gates first assigned to gate-based routing.
    pub gates_gate_routed: usize,
    /// Entangling gates first assigned to shuttling-based routing.
    pub gates_shuttle_routed: usize,
    /// Routing rounds executed (engine steps that applied operations).
    pub rounds_total: usize,
    /// Candidates committed across all rounds; exceeds `rounds_total`
    /// exactly when speculative rounds multi-commit
    /// ([`RoundMode::Speculative`]), equals it in
    /// [`RoundMode::Single`].
    pub commits_total: usize,
}

/// Result of a mapping run: the hardware op stream plus statistics and
/// wall-clock runtime.
#[derive(Debug, Clone)]
pub struct MappingOutcome {
    /// The mapped circuit.
    pub mapped: MappedCircuit,
    /// Routing statistics.
    pub stats: MapStats,
    /// Wall-clock mapping time (the paper's RT column).
    pub runtime: Duration,
}

/// Result of a streaming mapping run ([`HybridMapper::map_into`]): the
/// op stream went to the caller's [`OpSink`], so only statistics and
/// runtime remain to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Routing statistics.
    pub stats: MapStats,
    /// Wall-clock mapping time (the paper's RT column).
    pub runtime: Duration,
}

/// The hybrid gate/shuttling mapper.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::generators::GraphState;
/// use na_mapper::{HybridMapper, MapperConfig};
///
/// let params = HardwareParams::mixed()
///     .to_builder()
///     .lattice(5, 3.0)
///     .num_atoms(12)
///     .build()?;
/// let mapper = HybridMapper::new(params, MapperConfig::default())?;
/// let outcome = mapper.map(&GraphState::new(10).edges(14).seed(1).build())?;
/// assert_eq!(outcome.mapped.gate_count(), 10 + 14); // all gates executed
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridMapper {
    params: HardwareParams,
    config: MapperConfig,
    lattice: Lattice,
    gates: NativeGateSet,
    /// CSR interaction adjacency of `(lattice, params.r_int)` — taken
    /// from the resolved [`TargetSpec`](na_arch::TargetSpec) in
    /// [`HybridMapper::for_target`] and handed to the routing engine on
    /// every map call, so the hot path never rebuilds it.
    table_int: NeighborTable,
}

impl HybridMapper {
    /// Creates a mapper for the full square lattice of `params` after
    /// validating the hardware description and the configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`na_arch::ArchError`] from parameter validation as
    /// [`MapError::Arch`] and [`crate::ConfigError`] from configuration
    /// validation as [`MapError::Config`] — the same contract as
    /// [`HybridMapper::for_target`], so a hand-built config with e.g.
    /// NaN weights cannot silently feed the cost model.
    pub fn new(params: HardwareParams, config: MapperConfig) -> Result<Self, MapError> {
        params.validate()?;
        config.validate()?;
        let lattice = Lattice::new(params.lattice_side);
        let table_int = NeighborTable::for_radius(&lattice, params.r_int);
        Ok(HybridMapper {
            params,
            config,
            lattice,
            gates: NativeGateSet::default(),
            table_int,
        })
    }

    /// Creates a mapper for an arbitrary backend [`Target`]: the trap
    /// topology, native gate set and parameter set all come from the
    /// target description instead of assuming the full square lattice.
    ///
    /// # Errors
    ///
    /// * [`MapError::Arch`] — the target description is invalid
    ///   (including an atom count exceeding the topology's trap count).
    /// * [`MapError::Config`] — the configuration is invalid, or
    ///   requests shuttling on a target whose native gate set has none.
    pub fn for_target(target: &dyn Target, config: MapperConfig) -> Result<Self, MapError> {
        target.validate()?;
        config.validate()?;
        let gates = target.native_gates();
        if !gates.supports_shuttling && !config.is_gate_only() {
            return Err(MapError::Config(
                crate::error::ConfigError::ShuttlingUnsupported {
                    target: target.id(),
                },
            ));
        }
        // Resolve the target once: the spec snapshot carries the CSR
        // interaction adjacency the routing hot path consumes.
        let spec = target.spec();
        Ok(HybridMapper {
            params: spec.params,
            config,
            lattice: spec.lattice,
            gates,
            table_int: spec.interaction_table,
        })
    }

    /// The hardware parameters.
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    /// The mapper configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// The trap topology this mapper routes on.
    pub fn lattice(&self) -> Lattice {
        self.lattice
    }

    /// Maps `circuit` to the hardware, inserting SWAPs and shuttle moves.
    ///
    /// Non-native gates (`CᵐX`, `SWAP`) are decomposed first; `op_index`
    /// values in the output refer to the decomposed circuit, available via
    /// [`decompose_to_native`].
    ///
    /// # Errors
    ///
    /// * [`MapError::CircuitTooWide`] — more circuit qubits than atoms.
    /// * [`MapError::GateTooLarge`] — a gate's operands cannot fit any
    ///   mutual-interaction arrangement.
    /// * [`MapError::RoutingStuck`] — no routing progress within the
    ///   safety budget.
    pub fn map(&self, circuit: &Circuit) -> Result<MappingOutcome, MapError> {
        let mut out = MappedCircuit::with_layout(
            circuit.num_qubits(),
            self.params.num_atoms,
            self.config.initial_layout,
        );
        let run = self.map_into(circuit, &mut out)?;
        Ok(MappingOutcome {
            mapped: out,
            stats: run.stats,
            runtime: run.runtime,
        })
    }

    /// Maps `circuit`, streaming every emitted [`MappedOp`] into `sink`
    /// instead of materializing a [`MappedCircuit`].
    ///
    /// This is the single-pass entry point of the fused compile
    /// pipeline: a downstream consumer (e.g. an incremental scheduler)
    /// processes operations as they are routed. [`HybridMapper::map`] is
    /// the trivial instance with a collecting sink.
    ///
    /// The stream starts from the configured
    /// [initial layout](crate::InitialLayout) exactly like
    /// [`MappedCircuit::layout`] records it.
    ///
    /// # Errors
    ///
    /// Same contract as [`HybridMapper::map`]. On error the sink may
    /// have received a prefix of the stream.
    pub fn map_into(
        &self,
        circuit: &Circuit,
        sink: &mut dyn OpSink,
    ) -> Result<StreamOutcome, MapError> {
        self.map_into_scratch(circuit, sink, &mut MapScratch::new())
    }

    /// [`HybridMapper::map_into`] with caller-provided working memory:
    /// the routing arena (distance cache pools, journal, dense router
    /// tables) and frontier buffers come from `scratch` and stay warm
    /// for the next circuit mapped with the same scratch.
    ///
    /// This is the batch hot path: one `MapScratch` per worker thread,
    /// reused across every circuit that worker compiles. Results are
    /// identical to [`HybridMapper::map_into`] — scratch carries
    /// capacity, never decisions.
    ///
    /// # Errors
    ///
    /// Same contract as [`HybridMapper::map`]. On error the sink may
    /// have received a prefix of the stream.
    pub fn map_into_scratch(
        &self,
        circuit: &Circuit,
        sink: &mut dyn OpSink,
        scratch: &mut MapScratch,
    ) -> Result<StreamOutcome, MapError> {
        self.map_impl(circuit, sink, scratch, None)
    }

    /// [`HybridMapper::map_into_scratch`] with a cooperative
    /// [`CancelToken`], polled once per routing round.
    ///
    /// The poll is a pure read — routing decisions are identical to the
    /// token-free entry points, so artifacts stay byte-for-byte the
    /// same when the token never trips.
    ///
    /// # Errors
    ///
    /// Same contract as [`HybridMapper::map`], plus
    /// [`MapError::Cancelled`] when the token trips at a checkpoint. On
    /// cancellation the sink may have received a prefix of the stream.
    pub fn map_into_cancel(
        &self,
        circuit: &Circuit,
        sink: &mut dyn OpSink,
        scratch: &mut MapScratch,
        cancel: &CancelToken,
    ) -> Result<StreamOutcome, MapError> {
        self.map_impl(circuit, sink, scratch, Some(cancel))
    }

    fn map_impl(
        &self,
        circuit: &Circuit,
        sink: &mut dyn OpSink,
        scratch: &mut MapScratch,
        cancel: Option<&CancelToken>,
    ) -> Result<StreamOutcome, MapError> {
        let start = Instant::now();
        let native = if circuit.is_native() {
            circuit.clone()
        } else {
            decompose_to_native(circuit)
        };

        // Feasibility: a CᵐZ needs m sites pairwise within r_int on the
        // target topology, and within the native gate set's arity cap.
        let max_arity = native.iter().map(Operation::arity).max().unwrap_or(0);
        let capacity = self
            .lattice
            .cluster_capacity(self.params.r_int, max_arity.max(1))
            .min(self.gates.max_rydberg_arity);
        for (i, op) in native.iter().enumerate() {
            if op.arity() > capacity {
                return Err(MapError::GateTooLarge {
                    op_index: i,
                    arity: op.arity(),
                    capacity,
                });
            }
        }

        let mut state = MappingState::on_lattice(
            &self.params,
            self.lattice,
            native.num_qubits(),
            self.config.initial_layout,
        )?;
        let dag = CircuitDag::new(&native);
        let mut layers = LayerTracker::new(&dag);
        let decider = Decider::new(&self.params, &self.config);
        let mut engine =
            RoutingEngine::with_table(&self.params, &self.config, self.table_int.clone());

        let mut stats = MapStats::default();
        // Sticky capability assignment: a gate keeps its first decision
        // until executed (re-deciding every iteration lets borderline
        // gates oscillate between capabilities and livelock the routers;
        // only the engine's handoff reports may override it).
        let mut assigned: Vec<Option<Capability>> = vec![None; native.len()];

        let budget = self
            .config
            .max_ops_per_gate
            .saturating_mul(native.len())
            .saturating_add(1000);
        let mut routing_ops = 0usize;
        // Stall breaker: routing ops applied since the last gate executed.
        let mut ops_since_progress = 0usize;

        while !layers.is_done() {
            // Cancellation checkpoint: one relaxed load (plus a clock
            // read when a deadline is set) per routing round.
            if let Some(token) = cancel {
                if let Err(reason) = token.check() {
                    return Err(MapError::Cancelled { reason });
                }
            }

            // (1) Execute everything currently executable.
            if self.execute_ready(&native, &dag, &mut layers, &mut state, sink) {
                ops_since_progress = 0;
                continue;
            }
            if layers.is_done() {
                break;
            }

            // (2) Assign frontier gates to capabilities (sticky). The
            // gate lists live in reusable scratch buffers; `live` counts
            // the slots valid this round.
            let mut front_live = self.frontier_gates(
                &native,
                layers.front(),
                &state,
                &decider,
                &mut assigned,
                &mut stats,
                &mut scratch.frontier,
            );

            // Stall breaker: if routing churns without executing anything,
            // force the first non-fallback frontier gate through the
            // fallback router alone (its chains guarantee executability
            // by construction).
            let stall_limit = 64 + 8 * front_live;
            if ops_since_progress > stall_limit {
                if let Some(fallback) = engine.fallback_capability() {
                    let idx = scratch.frontier[..front_live]
                        .iter()
                        .position(|g| g.capability != fallback)
                        .unwrap_or(0);
                    scratch.frontier.swap(0, idx);
                    scratch.frontier[0].capability = fallback;
                    front_live = 1;
                }
            }
            let la = layers.lookahead(
                &dag,
                self.config.lookahead_depth,
                self.config.lookahead_max_gates,
            );
            let la_live =
                self.lookahead_gates(&native, &la, &state, &decider, &mut scratch.lookahead);

            // (3)/(4) One engine round: propose, rank, apply — one
            // commit per round in Single mode, a conflict-checked batch
            // of commits in Speculative mode (restricted beyond the
            // best candidate to the first qubit-disjoint front group).
            let round = match self.config.round_mode {
                RoundMode::Single => engine.step(
                    &mut state,
                    &scratch.frontier[..front_live],
                    &scratch.lookahead[..la_live],
                    &mut scratch.route,
                    sink,
                ),
                RoundMode::Speculative => {
                    let groups = layers.front_disjoint_groups(&native);
                    let eligible = groups.first().map(Vec::as_slice).unwrap_or(&[]);
                    engine.step_speculative(
                        &mut state,
                        &scratch.frontier[..front_live],
                        &scratch.lookahead[..la_live],
                        eligible,
                        self.config.eval_threads,
                        &mut scratch.route,
                        sink,
                    )
                }
            };
            match round {
                Ok(report) => {
                    for (op_index, capability) in report.reassigned {
                        assigned[op_index] = Some(capability);
                    }
                    stats.swaps_inserted += report.swaps;
                    stats.shuttle_moves += report.moves;
                    stats.rounds_total += 1;
                    stats.commits_total += report.commits;
                    let applied = report.swaps + report.moves;
                    routing_ops += applied;
                    ops_since_progress += applied;
                }
                Err(op_index) => {
                    return Err(MapError::RoutingStuck {
                        op_index,
                        ops_spent: routing_ops,
                    })
                }
            }

            if routing_ops > budget {
                let blocked = layers.front().first().copied().unwrap_or(0);
                return Err(MapError::RoutingStuck {
                    op_index: blocked,
                    ops_spent: routing_ops,
                });
            }
        }

        Ok(StreamOutcome {
            stats,
            runtime: start.elapsed(),
        })
    }

    /// Executes every frontier gate that is currently executable
    /// (single-qubit gates always; entangling gates when their atoms are
    /// mutually within `r_int`). Returns `true` if anything executed.
    fn execute_ready(
        &self,
        native: &Circuit,
        dag: &CircuitDag,
        layers: &mut LayerTracker,
        state: &mut MappingState,
        out: &mut dyn OpSink,
    ) -> bool {
        let mut any = false;
        loop {
            let ready: Vec<usize> = layers
                .front()
                .iter()
                .copied()
                .filter(|&i| {
                    let op = &native.ops()[i];
                    op.arity() == 1
                        || state.qubits_mutually_connected(op.qubits(), self.params.r_int)
                })
                .collect();
            if ready.is_empty() {
                return any;
            }
            for i in ready {
                let op = &native.ops()[i];
                let atoms: Vec<_> = op
                    .qubits()
                    .iter()
                    .map(|&q| state.atom_of_qubit(q))
                    .collect();
                let sites: Vec<_> = atoms.iter().map(|&a| state.site_of_atom(a)).collect();
                out.accept(MappedOp::Gate {
                    op_index: i,
                    op: op.clone(),
                    atoms,
                    sites,
                });
                layers.mark_executed(dag, i);
                any = true;
            }
        }
    }

    /// Annotates the frontier's entangling gates with their (sticky)
    /// capability assignment, recording first-time decisions in `stats`.
    /// Writes into the reusable `buf` (inner qubit vectors recycled) and
    /// returns the number of live slots.
    #[allow(clippy::too_many_arguments)]
    fn frontier_gates(
        &self,
        native: &Circuit,
        front: &[usize],
        state: &MappingState,
        decider: &Decider,
        assigned: &mut [Option<Capability>],
        stats: &mut MapStats,
        buf: &mut Vec<FrontierGate>,
    ) -> usize {
        let mut live = 0usize;
        for &i in front {
            let op: &Operation = &native.ops()[i];
            if op.arity() < 2 {
                continue; // executes directly
            }
            let capability = match assigned[i] {
                Some(capability) => capability,
                None => {
                    let capability = decider.decide(state, op.qubits());
                    match capability {
                        Capability::GateBased => stats.gates_gate_routed += 1,
                        Capability::Shuttling => stats.gates_shuttle_routed += 1,
                    }
                    assigned[i] = Some(capability);
                    capability
                }
            };
            fill_gate_slot(buf, live, i, op.qubits(), capability);
            live += 1;
        }
        live
    }

    /// Annotates lookahead gates with a (non-sticky) capability — only
    /// their pull direction matters, so decisions are re-made per round
    /// and not recorded. Same buffer contract as
    /// [`HybridMapper::frontier_gates`].
    fn lookahead_gates(
        &self,
        native: &Circuit,
        lookahead: &[usize],
        state: &MappingState,
        decider: &Decider,
        buf: &mut Vec<FrontierGate>,
    ) -> usize {
        let mut live = 0usize;
        for &i in lookahead {
            let op = &native.ops()[i];
            if op.arity() < 2 {
                continue;
            }
            let capability = decider.decide(state, op.qubits());
            fill_gate_slot(buf, live, i, op.qubits(), capability);
            live += 1;
        }
        live
    }
}

/// Writes a frontier gate into slot `live` of the reusable buffer,
/// recycling the slot's qubit vector instead of allocating.
fn fill_gate_slot(
    buf: &mut Vec<FrontierGate>,
    live: usize,
    op_index: usize,
    qubits: &[na_circuit::Qubit],
    capability: Capability,
) {
    if live < buf.len() {
        let slot = &mut buf[live];
        slot.op_index = op_index;
        slot.qubits.clear();
        slot.qubits.extend_from_slice(qubits);
        slot.capability = capability;
    } else {
        buf.push(FrontierGate {
            op_index,
            qubits: qubits.to_vec(),
            capability,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_mapping;
    use na_circuit::generators::{GraphState, Qft, RandomCircuit, Reversible};

    fn small(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
        preset
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .build()
            .expect("valid")
    }

    #[test]
    fn maps_trivial_circuit_without_routing() {
        let p = small(HardwareParams::mixed(), 4, 8);
        let mapper = HybridMapper::new(p, MapperConfig::default()).unwrap();
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).cz(2, 3);
        let outcome = mapper.map(&c).unwrap();
        assert_eq!(outcome.mapped.gate_count(), 3);
        assert_eq!(outcome.stats.swaps_inserted, 0);
        assert_eq!(outcome.stats.shuttle_moves, 0);
    }

    #[test]
    fn shuttle_only_inserts_no_swaps() {
        let p = small(HardwareParams::shuttling(), 6, 20);
        let mapper = HybridMapper::new(p, MapperConfig::shuttle_only()).unwrap();
        let c = Qft::new(12).build();
        let outcome = mapper.map(&c).unwrap();
        assert_eq!(outcome.mapped.swap_count(), 0, "mode (A): ΔCZ = 0");
        assert!(outcome.mapped.shuttle_count() > 0);
        assert_eq!(outcome.mapped.gate_count(), c.len());
    }

    #[test]
    fn gate_only_inserts_no_shuttles() {
        let p = small(HardwareParams::gate_based(), 6, 20);
        let mapper = HybridMapper::new(p, MapperConfig::gate_only()).unwrap();
        let c = Qft::new(12).build();
        let outcome = mapper.map(&c).unwrap();
        assert_eq!(outcome.mapped.shuttle_count(), 0, "mode (B): no moves");
        assert!(outcome.mapped.swap_count() > 0);
        assert_eq!(outcome.mapped.gate_count(), c.len());
    }

    #[test]
    fn hybrid_mapping_verifies_on_random_circuits() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let mapper = HybridMapper::new(
            p.clone(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        )
        .unwrap();
        for seed in 0..5 {
            let c = RandomCircuit::new(20)
                .layers(6)
                .multi_qubit_fraction(0.2)
                .seed(seed)
                .build();
            let outcome = mapper.map(&c).unwrap();
            verify_mapping(&c, &outcome.mapped, &p).unwrap();
        }
    }

    #[test]
    fn multiqubit_reversible_circuit_maps() {
        let p = small(HardwareParams::mixed(), 6, 20);
        let mapper = HybridMapper::new(
            p.clone(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        )
        .unwrap();
        let c = Reversible::new(16)
            .counts(&[(3, 20), (4, 6)])
            .seed(3)
            .build();
        let outcome = mapper.map(&c).unwrap();
        let native = decompose_to_native(&c);
        assert_eq!(outcome.mapped.gate_count(), native.len());
        verify_mapping(&c, &outcome.mapped, &p).unwrap();
    }

    #[test]
    fn graph_state_maps_on_all_presets() {
        for preset in [
            HardwareParams::shuttling(),
            HardwareParams::gate_based(),
            HardwareParams::mixed(),
        ] {
            let p = small(preset, 6, 25);
            let mapper = HybridMapper::new(
                p.clone(),
                MapperConfig::try_hybrid(1.0).expect("valid alpha"),
            )
            .unwrap();
            let c = GraphState::new(20).edges(26).seed(9).build();
            let outcome = mapper.map(&c).unwrap();
            verify_mapping(&c, &outcome.mapped, &p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn rejects_circuit_wider_than_atom_count() {
        let p = small(HardwareParams::mixed(), 4, 8);
        let mapper = HybridMapper::new(p, MapperConfig::default()).unwrap();
        let c = Circuit::new(9);
        assert!(matches!(
            mapper.map(&c),
            Err(MapError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn rejects_gate_exceeding_interaction_capacity() {
        // r_int = 1: at most 5 sites mutually... the disc has 4 + center,
        // but a CᵐZ on 6 qubits cannot fit.
        let p = small(HardwareParams::mixed(), 6, 20)
            .to_builder()
            .radius(1.0)
            .build()
            .unwrap();
        let mapper = HybridMapper::new(p, MapperConfig::default()).unwrap();
        let mut c = Circuit::new(8);
        c.mcz(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(matches!(mapper.map(&c), Err(MapError::GateTooLarge { .. })));
    }

    #[test]
    fn decisions_recorded_in_stats() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let mapper =
            HybridMapper::new(p, MapperConfig::try_hybrid(1.0).expect("valid alpha")).unwrap();
        let c = Qft::new(16).build();
        let outcome = mapper.map(&c).unwrap();
        let routed = outcome.stats.gates_gate_routed + outcome.stats.gates_shuttle_routed;
        assert!(routed > 0);
        assert!(routed <= c.entangling_count());
    }

    #[test]
    fn op_indices_cover_native_circuit() {
        let p = small(HardwareParams::mixed(), 6, 20);
        let mapper = HybridMapper::new(p, MapperConfig::default()).unwrap();
        let mut c = Circuit::new(10);
        c.cx(0, 9).mcx(&[1, 2, 3]).h(5);
        let native = decompose_to_native(&c);
        let outcome = mapper.map(&c).unwrap();
        let mut seen = vec![false; native.len()];
        for op in outcome.mapped.iter() {
            if let MappedOp::Gate { op_index, .. } = op {
                assert!(!seen[*op_index], "op {op_index} executed twice");
                seen[*op_index] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every native op executed");
    }

    #[test]
    fn speculative_rounds_multi_commit_on_disjoint_workloads() {
        // A wide graph-state layer offers many qubit-disjoint frontier
        // gates per round — speculative rounds must commit more than one
        // candidate per round somewhere in the run.
        let p = small(HardwareParams::mixed(), 10, 64);
        let mapper = HybridMapper::new(
            p.clone(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        )
        .unwrap();
        let c = GraphState::new(48).edges(80).seed(5).build();
        let outcome = mapper.map(&c).unwrap();
        verify_mapping(&c, &outcome.mapped, &p).unwrap();
        assert!(outcome.stats.rounds_total > 0);
        assert!(
            outcome.stats.commits_total > outcome.stats.rounds_total,
            "expected multi-commit rounds: {} commits over {} rounds",
            outcome.stats.commits_total,
            outcome.stats.rounds_total
        );
    }

    #[test]
    fn round_modes_agree_on_executed_gates() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let c = GraphState::new(20).edges(30).seed(2).build();
        let run = |mode: RoundMode| {
            let cfg = MapperConfig::try_hybrid(1.0)
                .expect("valid alpha")
                .with_round_mode(mode);
            let mapper = HybridMapper::new(p.clone(), cfg).unwrap();
            let outcome = mapper.map(&c).unwrap();
            verify_mapping(&c, &outcome.mapped, &p).unwrap();
            outcome
        };
        let single = run(RoundMode::Single);
        let speculative = run(RoundMode::Speculative);
        assert_eq!(single.stats.commits_total, single.stats.rounds_total);
        assert_eq!(single.mapped.gate_count(), speculative.mapped.gate_count());
        assert!(speculative.stats.rounds_total <= single.stats.rounds_total);
    }

    #[test]
    fn pre_cancelled_token_stops_mapping_at_first_round() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let mapper =
            HybridMapper::new(p, MapperConfig::try_hybrid(1.0).expect("valid alpha")).unwrap();
        let c = Qft::new(14).build();
        let token = crate::CancelToken::never();
        token.cancel();
        let mut sink =
            MappedCircuit::with_layout(c.num_qubits(), 25, mapper.config().initial_layout);
        let err = mapper
            .map_into_cancel(&c, &mut sink, &mut MapScratch::new(), &token)
            .unwrap_err();
        assert!(matches!(
            err,
            MapError::Cancelled {
                reason: crate::CancelReason::Explicit
            }
        ));
    }

    #[test]
    fn untripped_token_yields_identical_artifacts() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let mapper =
            HybridMapper::new(p, MapperConfig::try_hybrid(1.0).expect("valid alpha")).unwrap();
        let c = Qft::new(14).build();
        let plain = mapper.map(&c).unwrap();
        let token = crate::CancelToken::with_deadline(Duration::from_secs(3600));
        let mut sink =
            MappedCircuit::with_layout(c.num_qubits(), 25, mapper.config().initial_layout);
        let run = mapper
            .map_into_cancel(&c, &mut sink, &mut MapScratch::new(), &token)
            .unwrap();
        assert_eq!(plain.mapped, sink, "checkpoint polls perturbed routing");
        assert_eq!(plain.stats, run.stats);
    }

    #[test]
    fn stats_match_stream_counts() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let mapper =
            HybridMapper::new(p, MapperConfig::try_hybrid(1.0).expect("valid alpha")).unwrap();
        let c = Qft::new(14).build();
        let outcome = mapper.map(&c).unwrap();
        assert_eq!(outcome.stats.swaps_inserted, outcome.mapped.swap_count());
        assert_eq!(outcome.stats.shuttle_moves, outcome.mapped.shuttle_count());
    }
}
