//! The hybrid mapping process (paper Fig. 4).
//!
//! [`HybridMapper::map`] consumes a circuit and produces a stream of
//! hardware operations by iterating the five building blocks:
//!
//! 1. **Layer creation** — commutation-aware frontier and lookahead from
//!    [`na_circuit::dag`].
//! 2. **Capability decision** — each frontier gate is assigned to
//!    gate-based (`f_g`) or shuttling-based (`f_s`) routing by comparing
//!    weighted success-probability estimates ([`crate::decision`]).
//! 3. **Gate-based mapping** — the cheapest SWAP according to Eq. (2)–(3)
//!    is inserted until a gate becomes executable; multi-qubit gates
//!    first acquire a geometric position (falling back to shuttling when
//!    none exists).
//! 4. **Shuttling-based mapping** — move chains per Eq. (4)–(5); only
//!    considered once `f_g` is empty, so SWAPs and shuttles do not
//!    interfere (paper §3.2 (4)).
//! 5. **Processing to hardware operations** — the emitted
//!    [`MappedOp`] stream (SWAP decomposition and AOD batching happen in
//!    `na-schedule`).

use std::time::{Duration, Instant};

use na_arch::HardwareParams;
use na_circuit::{decompose_to_native, Circuit, CircuitDag, LayerTracker, Operation};

use crate::config::MapperConfig;
use crate::decision::{Capability, Decider};
use crate::error::MapError;
use crate::gate_router::{GateRouter, RoutedGate};
use crate::ops::{MappedCircuit, MappedOp};
use crate::shuttle_router::{ShuttleGate, ShuttleRouter};
use crate::state::MappingState;

/// Statistics of one mapping run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MapStats {
    /// Routing SWAPs inserted (each decomposes to 3 CZ downstream).
    pub swaps_inserted: usize,
    /// Shuttle moves inserted.
    pub shuttle_moves: usize,
    /// Entangling gates first assigned to gate-based routing.
    pub gates_gate_routed: usize,
    /// Entangling gates first assigned to shuttling-based routing.
    pub gates_shuttle_routed: usize,
}

/// Result of a mapping run: the hardware op stream plus statistics and
/// wall-clock runtime.
#[derive(Debug, Clone)]
pub struct MappingOutcome {
    /// The mapped circuit.
    pub mapped: MappedCircuit,
    /// Routing statistics.
    pub stats: MapStats,
    /// Wall-clock mapping time (the paper's RT column).
    pub runtime: Duration,
}

/// The hybrid gate/shuttling mapper.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::generators::GraphState;
/// use na_mapper::{HybridMapper, MapperConfig};
///
/// let params = HardwareParams::mixed()
///     .to_builder()
///     .lattice(5, 3.0)
///     .num_atoms(12)
///     .build()?;
/// let mapper = HybridMapper::new(params, MapperConfig::default())?;
/// let outcome = mapper.map(&GraphState::new(10).edges(14).seed(1).build())?;
/// assert_eq!(outcome.mapped.gate_count(), 10 + 14); // all gates executed
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridMapper {
    params: HardwareParams,
    config: MapperConfig,
}

impl HybridMapper {
    /// Creates a mapper after validating the hardware description.
    ///
    /// # Errors
    ///
    /// Propagates [`na_arch::ArchError`] from parameter validation.
    pub fn new(params: HardwareParams, config: MapperConfig) -> Result<Self, MapError> {
        params.validate()?;
        Ok(HybridMapper { params, config })
    }

    /// The hardware parameters.
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    /// The mapper configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Maps `circuit` to the hardware, inserting SWAPs and shuttle moves.
    ///
    /// Non-native gates (`CᵐX`, `SWAP`) are decomposed first; `op_index`
    /// values in the output refer to the decomposed circuit, available via
    /// [`decompose_to_native`].
    ///
    /// # Errors
    ///
    /// * [`MapError::CircuitTooWide`] — more circuit qubits than atoms.
    /// * [`MapError::GateTooLarge`] — a gate's operands cannot fit any
    ///   mutual-interaction arrangement.
    /// * [`MapError::RoutingStuck`] — no routing progress within the
    ///   safety budget.
    pub fn map(&self, circuit: &Circuit) -> Result<MappingOutcome, MapError> {
        let start = Instant::now();
        let native = if circuit.is_native() {
            circuit.clone()
        } else {
            decompose_to_native(circuit)
        };

        // Feasibility: a CᵐZ needs m sites pairwise within r_int.
        let max_arity = native.iter().map(Operation::arity).max().unwrap_or(0);
        let capacity = na_arch::geometry::max_cluster_size(self.params.r_int, max_arity.max(1));
        for (i, op) in native.iter().enumerate() {
            if op.arity() > capacity {
                return Err(MapError::GateTooLarge {
                    op_index: i,
                    arity: op.arity(),
                    capacity,
                });
            }
        }

        let mut state = MappingState::with_layout(
            &self.params,
            native.num_qubits(),
            self.config.initial_layout,
        )?;
        let dag = CircuitDag::new(&native);
        let mut layers = LayerTracker::new(&dag);
        let decider = Decider::new(&self.params, &self.config);
        let mut gate_router = GateRouter::new(&self.params, &self.config);
        let mut shuttle_router = ShuttleRouter::new(&self.params, &self.config);

        let mut out = MappedCircuit::with_layout(
            native.num_qubits(),
            self.params.num_atoms,
            self.config.initial_layout,
        );
        let mut stats = MapStats::default();
        // Sticky capability assignment: a gate keeps its first decision
        // until executed (re-deciding every iteration lets borderline
        // gates oscillate between capabilities and livelock the routers;
        // only the position-not-found fallback may override to shuttling).
        let mut assigned: Vec<Option<Capability>> = vec![None; native.len()];

        let budget = self
            .config
            .max_ops_per_gate
            .saturating_mul(native.len())
            .saturating_add(1000);
        let mut routing_ops = 0usize;
        // Stall breaker: routing ops applied since the last gate executed.
        let mut ops_since_progress = 0usize;

        while !layers.is_done() {
            // (1) Execute everything currently executable.
            if self.execute_ready(&native, &dag, &mut layers, &mut state, &mut out) {
                ops_since_progress = 0;
                continue;
            }
            if layers.is_done() {
                break;
            }

            // (2) Partition frontier and lookahead by capability.
            let (mut f_g, mut f_s) = self.partition(
                &native,
                layers.front(),
                &state,
                &decider,
                &gate_router,
                &mut assigned,
                &mut stats,
            );

            // Stall breaker: if routing churns without executing anything,
            // force the lowest-index frontier gate through a shuttle chain
            // (chains guarantee executability by construction).
            let stall_limit = 64 + 8 * (f_g.len() + f_s.len());
            if ops_since_progress > stall_limit && self.config.alpha_shuttle > 0.0 {
                let forced: Vec<ShuttleGate> = f_g
                    .drain(..)
                    .map(|g| ShuttleGate {
                        op_index: g.op_index,
                        qubits: g.qubits,
                    })
                    .chain(f_s.drain(..))
                    .take(1)
                    .collect();
                f_s = forced;
            }
            let la = layers.lookahead(
                &dag,
                self.config.lookahead_depth,
                self.config.lookahead_max_gates,
            );
            let (l_g, l_s) = self.partition_lookahead(&native, &la, &state, &decider);

            // In hybrid mode, gates whose SWAP routing cannot start
            // (isolated atoms, no position) flow to the shuttle router.
            if !f_g.is_empty() {
                // (3) Gate-based mapping: insert the best SWAP.
                if let Some((a, b)) = gate_router.best_swap(&state, &f_g, &l_g) {
                    out.ops.push(MappedOp::Swap {
                        a,
                        b,
                        site_a: state.site_of_atom(a),
                        site_b: state.site_of_atom(b),
                    });
                    state.apply_swap(a, b);
                    gate_router.note_swap_applied(&state, a, b);
                    stats.swaps_inserted += 1;
                    routing_ops += 1;
                    ops_since_progress += 1;
                } else if self.config.alpha_shuttle > 0.0 {
                    // No SWAP candidate at all: reroute via shuttling.
                    f_s.extend(f_g.drain(..).map(|g| ShuttleGate {
                        op_index: g.op_index,
                        qubits: g.qubits,
                    }));
                } else {
                    return Err(MapError::RoutingStuck {
                        op_index: f_g[0].op_index,
                        ops_spent: routing_ops,
                    });
                }
            }

            if f_g.is_empty() && !f_s.is_empty() {
                // (4) Shuttling-based mapping: apply the best move chain.
                // (Applying one chain per round and re-deciding keeps
                // chains short; merging moves of *independent* chains into
                // shared AOD transactions happens downstream in the
                // scheduler's batch aggregation.)
                match shuttle_router.best_chain(&state, &f_s, &l_s) {
                    Some(chain) => {
                        for mv in &chain.moves {
                            out.ops.push(MappedOp::Shuttle {
                                atom: mv.atom,
                                from: mv.from,
                                to: mv.to,
                            });
                            state.apply_move(mv.atom, mv.to);
                        }
                        shuttle_router.note_moves_applied(&chain.moves);
                        stats.shuttle_moves += chain.moves.len();
                        routing_ops += chain.moves.len();
                        ops_since_progress += chain.moves.len();
                    }
                    None => {
                        return Err(MapError::RoutingStuck {
                            op_index: f_s[0].op_index,
                            ops_spent: routing_ops,
                        })
                    }
                }
            }

            if routing_ops > budget {
                let blocked = layers.front().first().copied().unwrap_or(0);
                return Err(MapError::RoutingStuck {
                    op_index: blocked,
                    ops_spent: routing_ops,
                });
            }
        }

        Ok(MappingOutcome {
            mapped: out,
            stats,
            runtime: start.elapsed(),
        })
    }

    /// Executes every frontier gate that is currently executable
    /// (single-qubit gates always; entangling gates when their atoms are
    /// mutually within `r_int`). Returns `true` if anything executed.
    fn execute_ready(
        &self,
        native: &Circuit,
        dag: &CircuitDag,
        layers: &mut LayerTracker,
        state: &mut MappingState,
        out: &mut MappedCircuit,
    ) -> bool {
        let mut any = false;
        loop {
            let ready: Vec<usize> = layers
                .front()
                .iter()
                .copied()
                .filter(|&i| {
                    let op = &native.ops()[i];
                    op.arity() == 1
                        || state.qubits_mutually_connected(op.qubits(), self.params.r_int)
                })
                .collect();
            if ready.is_empty() {
                return any;
            }
            for i in ready {
                let op = &native.ops()[i];
                let atoms: Vec<_> = op
                    .qubits()
                    .iter()
                    .map(|&q| state.atom_of_qubit(q))
                    .collect();
                let sites: Vec<_> = atoms.iter().map(|&a| state.site_of_atom(a)).collect();
                out.ops.push(MappedOp::Gate {
                    op_index: i,
                    op: op.clone(),
                    atoms,
                    sites,
                });
                layers.mark_executed(dag, i);
                any = true;
            }
        }
    }

    /// Splits the frontier's entangling gates into gate-based and
    /// shuttling-based lists, resolving multi-qubit positions.
    #[allow(clippy::too_many_arguments)]
    fn partition(
        &self,
        native: &Circuit,
        front: &[usize],
        state: &MappingState,
        decider: &Decider,
        gate_router: &GateRouter,
        assigned: &mut [Option<Capability>],
        stats: &mut MapStats,
    ) -> (Vec<RoutedGate>, Vec<ShuttleGate>) {
        let mut f_g = Vec::new();
        let mut f_s = Vec::new();
        for &i in front {
            let op: &Operation = &native.ops()[i];
            if op.arity() < 2 {
                continue; // executes directly
            }
            let qubits = op.qubits().to_vec();
            let mut cap = match assigned[i] {
                Some(cap) => cap,
                None => {
                    let cap = decider.decide(state, &qubits);
                    match cap {
                        Capability::GateBased => stats.gates_gate_routed += 1,
                        Capability::Shuttling => stats.gates_shuttle_routed += 1,
                    }
                    cap
                }
            };
            let mut position = None;
            if cap == Capability::GateBased && op.arity() >= 3 {
                position = gate_router.find_position(state, &qubits);
                if position.is_none() && self.config.alpha_shuttle > 0.0 {
                    // Paper §3.2 (3): no position found -> use shuttling.
                    cap = Capability::Shuttling;
                }
            }
            assigned[i] = Some(cap);
            match cap {
                Capability::GateBased => f_g.push(RoutedGate {
                    op_index: i,
                    qubits,
                    position,
                }),
                Capability::Shuttling => f_s.push(ShuttleGate {
                    op_index: i,
                    qubits,
                }),
            }
        }
        (f_g, f_s)
    }

    /// Splits lookahead gates by capability (positions are not resolved
    /// for lookahead gates — only their pull direction matters).
    fn partition_lookahead(
        &self,
        native: &Circuit,
        lookahead: &[usize],
        state: &MappingState,
        decider: &Decider,
    ) -> (Vec<RoutedGate>, Vec<ShuttleGate>) {
        let mut l_g = Vec::new();
        let mut l_s = Vec::new();
        for &i in lookahead {
            let op = &native.ops()[i];
            if op.arity() < 2 {
                continue;
            }
            let qubits = op.qubits().to_vec();
            match decider.decide(state, &qubits) {
                Capability::GateBased => l_g.push(RoutedGate {
                    op_index: i,
                    qubits,
                    position: None,
                }),
                Capability::Shuttling => l_s.push(ShuttleGate {
                    op_index: i,
                    qubits,
                }),
            }
        }
        (l_g, l_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_mapping;
    use na_circuit::generators::{GraphState, Qft, RandomCircuit, Reversible};

    fn small(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
        preset
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .build()
            .expect("valid")
    }

    #[test]
    fn maps_trivial_circuit_without_routing() {
        let p = small(HardwareParams::mixed(), 4, 8);
        let mapper = HybridMapper::new(p, MapperConfig::default()).unwrap();
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).cz(2, 3);
        let outcome = mapper.map(&c).unwrap();
        assert_eq!(outcome.mapped.gate_count(), 3);
        assert_eq!(outcome.stats.swaps_inserted, 0);
        assert_eq!(outcome.stats.shuttle_moves, 0);
    }

    #[test]
    fn shuttle_only_inserts_no_swaps() {
        let p = small(HardwareParams::shuttling(), 6, 20);
        let mapper = HybridMapper::new(p, MapperConfig::shuttle_only()).unwrap();
        let c = Qft::new(12).build();
        let outcome = mapper.map(&c).unwrap();
        assert_eq!(outcome.mapped.swap_count(), 0, "mode (A): ΔCZ = 0");
        assert!(outcome.mapped.shuttle_count() > 0);
        assert_eq!(outcome.mapped.gate_count(), c.len());
    }

    #[test]
    fn gate_only_inserts_no_shuttles() {
        let p = small(HardwareParams::gate_based(), 6, 20);
        let mapper = HybridMapper::new(p, MapperConfig::gate_only()).unwrap();
        let c = Qft::new(12).build();
        let outcome = mapper.map(&c).unwrap();
        assert_eq!(outcome.mapped.shuttle_count(), 0, "mode (B): no moves");
        assert!(outcome.mapped.swap_count() > 0);
        assert_eq!(outcome.mapped.gate_count(), c.len());
    }

    #[test]
    fn hybrid_mapping_verifies_on_random_circuits() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let mapper = HybridMapper::new(p.clone(), MapperConfig::hybrid(1.0)).unwrap();
        for seed in 0..5 {
            let c = RandomCircuit::new(20)
                .layers(6)
                .multi_qubit_fraction(0.2)
                .seed(seed)
                .build();
            let outcome = mapper.map(&c).unwrap();
            verify_mapping(&c, &outcome.mapped, &p).unwrap();
        }
    }

    #[test]
    fn multiqubit_reversible_circuit_maps() {
        let p = small(HardwareParams::mixed(), 6, 20);
        let mapper = HybridMapper::new(p.clone(), MapperConfig::hybrid(1.0)).unwrap();
        let c = Reversible::new(16)
            .counts(&[(3, 20), (4, 6)])
            .seed(3)
            .build();
        let outcome = mapper.map(&c).unwrap();
        let native = decompose_to_native(&c);
        assert_eq!(outcome.mapped.gate_count(), native.len());
        verify_mapping(&c, &outcome.mapped, &p).unwrap();
    }

    #[test]
    fn graph_state_maps_on_all_presets() {
        for preset in [
            HardwareParams::shuttling(),
            HardwareParams::gate_based(),
            HardwareParams::mixed(),
        ] {
            let p = small(preset, 6, 25);
            let mapper = HybridMapper::new(p.clone(), MapperConfig::hybrid(1.0)).unwrap();
            let c = GraphState::new(20).edges(26).seed(9).build();
            let outcome = mapper.map(&c).unwrap();
            verify_mapping(&c, &outcome.mapped, &p)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn rejects_circuit_wider_than_atom_count() {
        let p = small(HardwareParams::mixed(), 4, 8);
        let mapper = HybridMapper::new(p, MapperConfig::default()).unwrap();
        let c = Circuit::new(9);
        assert!(matches!(
            mapper.map(&c),
            Err(MapError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn rejects_gate_exceeding_interaction_capacity() {
        // r_int = 1: at most 5 sites mutually... the disc has 4 + center,
        // but a CᵐZ on 6 qubits cannot fit.
        let p = small(HardwareParams::mixed(), 6, 20)
            .to_builder()
            .radius(1.0)
            .build()
            .unwrap();
        let mapper = HybridMapper::new(p, MapperConfig::default()).unwrap();
        let mut c = Circuit::new(8);
        c.mcz(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(matches!(mapper.map(&c), Err(MapError::GateTooLarge { .. })));
    }

    #[test]
    fn decisions_recorded_in_stats() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let mapper = HybridMapper::new(p, MapperConfig::hybrid(1.0)).unwrap();
        let c = Qft::new(16).build();
        let outcome = mapper.map(&c).unwrap();
        let routed = outcome.stats.gates_gate_routed + outcome.stats.gates_shuttle_routed;
        assert!(routed > 0);
        assert!(routed <= c.entangling_count());
    }

    #[test]
    fn op_indices_cover_native_circuit() {
        let p = small(HardwareParams::mixed(), 6, 20);
        let mapper = HybridMapper::new(p, MapperConfig::default()).unwrap();
        let mut c = Circuit::new(10);
        c.cx(0, 9).mcx(&[1, 2, 3]).h(5);
        let native = decompose_to_native(&c);
        let outcome = mapper.map(&c).unwrap();
        let mut seen = vec![false; native.len()];
        for op in outcome.mapped.iter() {
            if let MappedOp::Gate { op_index, .. } = op {
                assert!(!seen[*op_index], "op {op_index} executed twice");
                seen[*op_index] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every native op executed");
    }
}
