//! Streaming consumers of the mapper's operation stream.
//!
//! [`HybridMapper::map_into`](crate::HybridMapper::map_into) and
//! [`RoutingEngine::step`](crate::route::RoutingEngine::step) emit
//! [`MappedOp`]s into any [`OpSink`] as routing progresses, instead of
//! requiring a fully materialized [`MappedCircuit`]. This is the core of
//! the fused compile pipeline: a downstream consumer (e.g.
//! `na-schedule`'s `IncrementalScheduler`) can batch, check restrictions
//! and accumulate metrics op-by-op while the mapper is still routing.
//!
//! [`MappedCircuit`] remains the trivial collecting sink, so every
//! pre-existing caller keeps working unchanged.

use crate::ops::{MappedCircuit, MappedOp};

/// A consumer of the mapper's operation stream.
///
/// The mapper calls [`OpSink::accept`] exactly once per emitted
/// operation, in execution order. Implementations must not reorder
/// operations: the stream order *is* the program order that downstream
/// scheduling relies on.
pub trait OpSink {
    /// Consumes the next operation of the stream.
    fn accept(&mut self, op: MappedOp);
}

impl OpSink for MappedCircuit {
    /// The trivial collecting sink: appends to [`MappedCircuit::ops`].
    fn accept(&mut self, op: MappedOp) {
        self.ops.push(op);
    }
}

impl OpSink for Vec<MappedOp> {
    /// Bare collection without circuit context (useful in tests).
    fn accept(&mut self, op: MappedOp) {
        self.push(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AtomId;
    use na_arch::Site;

    fn shuttle(atom: u32) -> MappedOp {
        MappedOp::Shuttle {
            atom: AtomId(atom),
            from: Site::new(0, 0),
            to: Site::new(1, 1),
        }
    }

    #[test]
    fn mapped_circuit_collects_in_order() {
        let mut mc = MappedCircuit::new(2, 4);
        mc.accept(shuttle(0));
        mc.accept(shuttle(1));
        assert_eq!(mc.len(), 2);
        assert_eq!(mc.ops[0].atoms(), vec![AtomId(0)]);
        assert_eq!(mc.ops[1].atoms(), vec![AtomId(1)]);
    }

    #[test]
    fn vec_sink_collects() {
        let mut v: Vec<MappedOp> = Vec::new();
        v.accept(shuttle(3));
        assert_eq!(v.len(), 1);
    }
}
