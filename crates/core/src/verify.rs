//! Independent verification of mapped circuits.
//!
//! [`verify_mapping`] replays a [`MappedCircuit`] against a fresh identity
//! layout and checks every hardware-level invariant:
//!
//! * gates execute on the atoms that actually carry their circuit qubits,
//!   with all operands pairwise within `r_int`,
//! * SWAPs act on interaction-connected atoms,
//! * shuttles move real atoms onto free, in-bounds sites,
//! * every operation of the (native-decomposed) input circuit executes
//!   exactly once, in an order consistent with the dependency DAG.
//!
//! This is the test oracle for the whole mapper: any routing bug that
//! produces a physically impossible schedule is caught here.

use std::error::Error;
use std::fmt;

use na_arch::HardwareParams;
use na_circuit::{decompose_to_native, Circuit, CircuitDag};

use crate::ops::{MappedCircuit, MappedOp};
use crate::state::MappingState;

/// Violations detected while replaying a mapped circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// A gate was executed on atoms that do not carry its qubits.
    WrongAtoms {
        /// Index of the mapped op in the stream.
        stream_index: usize,
    },
    /// A gate executed while its operands were not mutually connected.
    NotConnected {
        /// Index of the mapped op in the stream.
        stream_index: usize,
    },
    /// A SWAP between atoms outside the interaction radius.
    SwapOutOfRange {
        /// Index of the mapped op in the stream.
        stream_index: usize,
    },
    /// A shuttle with an inconsistent source or an occupied target.
    BadShuttle {
        /// Index of the mapped op in the stream.
        stream_index: usize,
        /// Explanation.
        reason: String,
    },
    /// An operation executed before one of its DAG predecessors.
    OrderViolation {
        /// Index of the offending circuit operation.
        op_index: usize,
    },
    /// An operation executed more than once.
    DuplicateExecution {
        /// Index of the offending circuit operation.
        op_index: usize,
    },
    /// Some circuit operations never executed.
    MissingOps {
        /// Number of unexecuted operations.
        missing: usize,
    },
    /// Gate content mismatch between the stream and the circuit.
    GateMismatch {
        /// Index of the mapped op in the stream.
        stream_index: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::WrongAtoms { stream_index } => {
                write!(
                    f,
                    "stream op {stream_index}: atoms do not carry the gate qubits"
                )
            }
            VerifyError::NotConnected { stream_index } => {
                write!(
                    f,
                    "stream op {stream_index}: operands not mutually within r_int"
                )
            }
            VerifyError::SwapOutOfRange { stream_index } => {
                write!(f, "stream op {stream_index}: swap partners outside r_int")
            }
            VerifyError::BadShuttle {
                stream_index,
                reason,
            } => write!(f, "stream op {stream_index}: invalid shuttle: {reason}"),
            VerifyError::OrderViolation { op_index } => {
                write!(f, "operation {op_index} executed before a dependency")
            }
            VerifyError::DuplicateExecution { op_index } => {
                write!(f, "operation {op_index} executed twice")
            }
            VerifyError::MissingOps { missing } => {
                write!(f, "{missing} operations never executed")
            }
            VerifyError::GateMismatch { stream_index } => {
                write!(f, "stream op {stream_index}: gate differs from the circuit")
            }
        }
    }
}

impl Error for VerifyError {}

/// Replays `mapped` against `circuit` (decomposed to native gates) on the
/// given hardware and checks all physical and logical invariants.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::generators::Qft;
/// use na_mapper::{verify_mapping, HybridMapper, MapperConfig};
///
/// let params = HardwareParams::mixed()
///     .to_builder()
///     .lattice(5, 3.0)
///     .num_atoms(12)
///     .build()?;
/// let circuit = Qft::new(10).build();
/// let mapper = HybridMapper::new(params.clone(), MapperConfig::default())?;
/// let outcome = mapper.map(&circuit)?;
/// verify_mapping(&circuit, &outcome.mapped, &params)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify_mapping(
    circuit: &Circuit,
    mapped: &MappedCircuit,
    params: &HardwareParams,
) -> Result<(), VerifyError> {
    verify_mapping_on(
        circuit,
        mapped,
        params,
        na_arch::Lattice::new(params.lattice_side),
    )
}

/// [`verify_mapping`] on an explicit trap topology — required whenever
/// the mapped stream was produced for a non-square
/// [`Target`](na_arch::Target) (e.g. a zoned layout), where both the
/// initial placement and the bounds checks depend on the lattice.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_mapping_on(
    circuit: &Circuit,
    mapped: &MappedCircuit,
    params: &HardwareParams,
    lattice: na_arch::Lattice,
) -> Result<(), VerifyError> {
    let native = if circuit.is_native() {
        circuit.clone()
    } else {
        decompose_to_native(circuit)
    };
    let dag = CircuitDag::new(&native);
    let mut executed = vec![false; native.len()];
    let mut state = MappingState::on_lattice(params, lattice, native.num_qubits(), mapped.layout)
        .expect("verified by mapper");

    for (si, mop) in mapped.iter().enumerate() {
        match mop {
            MappedOp::Gate {
                op_index,
                op,
                atoms,
                sites,
            } => {
                if *op_index >= native.len() || &native.ops()[*op_index] != op {
                    return Err(VerifyError::GateMismatch { stream_index: si });
                }
                if executed[*op_index] {
                    return Err(VerifyError::DuplicateExecution {
                        op_index: *op_index,
                    });
                }
                for &p in dag.predecessors(*op_index) {
                    if !executed[p] {
                        return Err(VerifyError::OrderViolation {
                            op_index: *op_index,
                        });
                    }
                }
                if atoms.len() != op.arity() || sites.len() != op.arity() {
                    return Err(VerifyError::WrongAtoms { stream_index: si });
                }
                for ((q, a), s) in op.qubits().iter().zip(atoms).zip(sites) {
                    if state.atom_of_qubit(*q) != *a || state.site_of_atom(*a) != *s {
                        return Err(VerifyError::WrongAtoms { stream_index: si });
                    }
                }
                if op.arity() >= 2 && !state.qubits_mutually_connected(op.qubits(), params.r_int) {
                    return Err(VerifyError::NotConnected { stream_index: si });
                }
                executed[*op_index] = true;
            }
            MappedOp::Swap {
                a,
                b,
                site_a,
                site_b,
            } => {
                if state.site_of_atom(*a) != *site_a || state.site_of_atom(*b) != *site_b {
                    return Err(VerifyError::SwapOutOfRange { stream_index: si });
                }
                if !site_a.within(*site_b, params.r_int) {
                    return Err(VerifyError::SwapOutOfRange { stream_index: si });
                }
                state.apply_swap(*a, *b);
            }
            MappedOp::Shuttle { atom, from, to } => {
                if state.site_of_atom(*atom) != *from {
                    return Err(VerifyError::BadShuttle {
                        stream_index: si,
                        reason: format!("atom {atom} is not at {from}"),
                    });
                }
                if !state.lattice().contains(*to) {
                    return Err(VerifyError::BadShuttle {
                        stream_index: si,
                        reason: format!("target {to} out of bounds"),
                    });
                }
                if !state.is_free(*to) {
                    return Err(VerifyError::BadShuttle {
                        stream_index: si,
                        reason: format!("target {to} occupied"),
                    });
                }
                state.apply_move(*atom, *to);
            }
        }
    }

    let missing = executed.iter().filter(|&&e| !e).count();
    if missing > 0 {
        return Err(VerifyError::MissingOps { missing });
    }
    Ok(())
}

/// Verifies that the mapped stream implements *exactly the same unitary*
/// as the input circuit, up to the final qubit→atom permutation, by dense
/// statevector simulation.
///
/// This is the strongest (and most expensive) oracle in the workspace:
/// the original circuit and the "atom circuit" (gates on atom indices,
/// routing SWAPs as real SWAP gates, shuttles dropped — they do not touch
/// the quantum state) are both simulated and compared.
///
/// # Errors
///
/// Returns [`VerifyError::GateMismatch`] with `stream_index = usize::MAX`
/// when the states differ.
///
/// # Panics
///
/// Panics when the hardware has more than 24 atoms (dense simulation
/// cap) — use [`verify_mapping`] for larger instances.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::generators::Qft;
/// use na_mapper::{verify::verify_unitary_equivalence, HybridMapper, MapperConfig};
///
/// let params = HardwareParams::mixed()
///     .to_builder()
///     .lattice(4, 3.0)
///     .num_atoms(12)
///     .build()?;
/// let circuit = Qft::new(8).build();
/// let outcome = HybridMapper::new(params.clone(), MapperConfig::default())?
///     .map(&circuit)?;
/// verify_unitary_equivalence(&circuit, &outcome.mapped, &params)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify_unitary_equivalence(
    circuit: &Circuit,
    mapped: &MappedCircuit,
    params: &HardwareParams,
) -> Result<(), VerifyError> {
    use na_circuit::sim::Statevector;
    use na_circuit::{GateKind, Operation, Qubit};

    let native = if circuit.is_native() {
        circuit.clone()
    } else {
        decompose_to_native(circuit)
    };
    let num_atoms = mapped.num_atoms;

    // Build the atom-level circuit: original gates on their atoms plus
    // explicit SWAP gates; shuttles only change geometry, not the state.
    let mut atom_circuit = Circuit::new(num_atoms);
    let mut state = MappingState::with_layout(params, native.num_qubits(), mapped.layout)
        .expect("verified by mapper");
    for mop in mapped.iter() {
        match mop {
            MappedOp::Gate { op, atoms, .. } => {
                let operands: Vec<Qubit> = atoms.iter().map(|a| Qubit(a.0)).collect();
                let atom_op = Operation::new(*op.kind(), operands).expect("mapped gate is valid");
                atom_circuit.push(atom_op).expect("atoms in range");
            }
            MappedOp::Swap { a, b, .. } => {
                let op = Operation::new(GateKind::Swap, vec![Qubit(a.0), Qubit(b.0)])
                    .expect("two distinct atoms");
                atom_circuit.push(op).expect("atoms in range");
                state.apply_swap(*a, *b);
            }
            MappedOp::Shuttle { atom, to, .. } => state.apply_move(*atom, *to),
        }
    }

    // Reference: the original circuit embedded into the atom register,
    // with each qubit relocated to its final atom.
    let psi_orig = Statevector::simulate(&native).embed_into(num_atoms);
    let mut perm: Vec<u32> = vec![u32::MAX; num_atoms as usize];
    let mut taken = vec![false; num_atoms as usize];
    for q in 0..native.num_qubits() {
        let atom = state.atom_of_qubit(Qubit(q));
        perm[q as usize] = atom.0;
        taken[atom.index()] = true;
    }
    // Complete the permutation over |0⟩ positions (any bijection works).
    let mut free = (0..num_atoms).filter(|&a| !taken[a as usize]);
    for slot in perm.iter_mut() {
        if *slot == u32::MAX {
            *slot = free.next().expect("bijection completes");
        }
    }
    let reference = psi_orig.permute_qubits(&perm);
    let actual = Statevector::simulate(&atom_circuit);

    let fidelity = reference.fidelity_with(&actual);
    if (fidelity - 1.0).abs() > 1e-7 {
        return Err(VerifyError::GateMismatch {
            stream_index: usize::MAX,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AtomId;
    use na_arch::Site;
    use na_circuit::{GateKind, Operation, Qubit};

    fn params() -> HardwareParams {
        HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(10)
            .radius(1.0)
            .build()
            .expect("valid")
    }

    fn cz_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.cz(0, 1);
        c
    }

    fn gate_mop(op_index: usize, atoms: &[u32], sites: &[(i32, i32)]) -> MappedOp {
        MappedOp::Gate {
            op_index,
            op: Operation::new(GateKind::Cz, vec![Qubit(0), Qubit(1)]).unwrap(),
            atoms: atoms.iter().map(|&a| AtomId(a)).collect(),
            sites: sites.iter().map(|&(x, y)| Site::new(x, y)).collect(),
        }
    }

    #[test]
    fn accepts_direct_execution() {
        let c = cz_circuit();
        let mut mc = MappedCircuit::new(4, 10);
        mc.ops.push(gate_mop(0, &[0, 1], &[(0, 0), (1, 0)]));
        verify_mapping(&c, &mc, &params()).unwrap();
    }

    #[test]
    fn rejects_wrong_atoms() {
        let c = cz_circuit();
        let mut mc = MappedCircuit::new(4, 10);
        mc.ops.push(gate_mop(0, &[2, 1], &[(2, 0), (1, 0)]));
        assert!(matches!(
            verify_mapping(&c, &mc, &params()),
            Err(VerifyError::WrongAtoms { .. })
        ));
    }

    #[test]
    fn rejects_disconnected_gate() {
        let mut c = Circuit::new(4);
        c.cz(0, 3);
        let mut mc = MappedCircuit::new(4, 10);
        mc.ops.push(MappedOp::Gate {
            op_index: 0,
            op: Operation::new(GateKind::Cz, vec![Qubit(0), Qubit(3)]).unwrap(),
            atoms: vec![AtomId(0), AtomId(3)],
            sites: vec![Site::new(0, 0), Site::new(3, 0)],
        });
        assert!(matches!(
            verify_mapping(&c, &mc, &params()),
            Err(VerifyError::NotConnected { .. })
        ));
    }

    #[test]
    fn rejects_missing_ops() {
        let c = cz_circuit();
        let mc = MappedCircuit::new(4, 10);
        assert_eq!(
            verify_mapping(&c, &mc, &params()),
            Err(VerifyError::MissingOps { missing: 1 })
        );
    }

    #[test]
    fn rejects_duplicate_execution() {
        let c = cz_circuit();
        let mut mc = MappedCircuit::new(4, 10);
        mc.ops.push(gate_mop(0, &[0, 1], &[(0, 0), (1, 0)]));
        mc.ops.push(gate_mop(0, &[0, 1], &[(0, 0), (1, 0)]));
        assert!(matches!(
            verify_mapping(&c, &mc, &params()),
            Err(VerifyError::DuplicateExecution { .. })
        ));
    }

    #[test]
    fn rejects_order_violation() {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1); // cz depends on h
        let mut mc = MappedCircuit::new(4, 10);
        mc.ops.push(gate_mop(1, &[0, 1], &[(0, 0), (1, 0)]));
        assert!(matches!(
            verify_mapping(&c, &mc, &params()),
            Err(VerifyError::OrderViolation { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_swap() {
        let c = cz_circuit();
        let mut mc = MappedCircuit::new(4, 10);
        mc.ops.push(MappedOp::Swap {
            a: AtomId(0),
            b: AtomId(8),
            site_a: Site::new(0, 0),
            site_b: Site::new(0, 2),
        });
        assert!(matches!(
            verify_mapping(&c, &mc, &params()),
            Err(VerifyError::SwapOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_shuttle_to_occupied_site() {
        let c = cz_circuit();
        let mut mc = MappedCircuit::new(4, 10);
        mc.ops.push(MappedOp::Shuttle {
            atom: AtomId(0),
            from: Site::new(0, 0),
            to: Site::new(1, 0),
        });
        assert!(matches!(
            verify_mapping(&c, &mc, &params()),
            Err(VerifyError::BadShuttle { .. })
        ));
    }

    #[test]
    fn unitary_equivalence_across_modes() {
        use crate::config::MapperConfig;
        use crate::mapper::HybridMapper;
        use na_circuit::generators::RandomCircuit;
        let p = HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(12)
            .build()
            .expect("valid");
        for config in [
            MapperConfig::shuttle_only(),
            MapperConfig::gate_only(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        ] {
            for seed in 0..4 {
                let c = RandomCircuit::new(10)
                    .layers(5)
                    .multi_qubit_fraction(0.2)
                    .seed(seed)
                    .build();
                let outcome = HybridMapper::new(p.clone(), config.clone())
                    .unwrap()
                    .map(&c)
                    .unwrap();
                verify_unitary_equivalence(&c, &outcome.mapped, &p)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn unitary_equivalence_catches_corruption() {
        use crate::config::MapperConfig;
        use crate::mapper::HybridMapper;
        let p = HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(10)
            .radius(1.0) // force SWAP insertion
            .build()
            .expect("valid");
        // Hadamards on every qubit so each CZ acts non-trivially (a CZ
        // with a |0⟩ partner is a no-op and would mask the corruption).
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        c.cz(0, 5).cz(1, 4).h(3);
        let outcome = HybridMapper::new(p.clone(), MapperConfig::gate_only())
            .unwrap()
            .map(&c)
            .unwrap();
        let mut corrupted = outcome.mapped.clone();
        let pos = corrupted
            .ops
            .iter()
            .position(|o| matches!(o, MappedOp::Swap { .. }))
            .expect("routing at r_int = 1 must insert a SWAP");
        corrupted.ops.remove(pos);
        assert!(verify_unitary_equivalence(&c, &corrupted, &p).is_err());
    }

    #[test]
    fn accepts_swap_then_gate() {
        // Swap q1's atom away, bring q0 next to... simpler: swap atoms 1
        // and 2, so qubit 1 sits at (2,0); then cz(0,1) is not executable
        // at r=1; instead swap back and execute.
        let c = cz_circuit();
        let mut mc = MappedCircuit::new(4, 10);
        mc.ops.push(MappedOp::Swap {
            a: AtomId(1),
            b: AtomId(2),
            site_a: Site::new(1, 0),
            site_b: Site::new(2, 0),
        });
        // Now qubit 1 is on atom 2 at (2,0): too far from qubit 0 at (0,0).
        mc.ops.push(MappedOp::Swap {
            a: AtomId(1),
            b: AtomId(2),
            site_a: Site::new(1, 0),
            site_b: Site::new(2, 0),
        });
        mc.ops.push(gate_mop(0, &[0, 1], &[(0, 0), (1, 0)]));
        verify_mapping(&c, &mc, &params()).unwrap();
    }
}
