//! Plain-text rendering of mapping states — a debugging aid for routing
//! decisions (and the closest thing to the paper's Fig. 2 in a terminal).

use na_circuit::Qubit;

use crate::state::MappingState;

/// Renders the lattice occupancy as an ASCII grid.
///
/// Cells show `.` for a free trap, `o` for a spare atom (no circuit
/// qubit) and the qubit index in base-36 (`0-9a-z`, `#` beyond 35; pass
/// `wide = true` for full decimal indices) for qubit-carrying atoms.
/// Row 0 is printed at the top.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_mapper::{render::render_state, MappingState};
/// let params = HardwareParams::mixed()
///     .to_builder()
///     .lattice(3, 3.0)
///     .num_atoms(4)
///     .build()?;
/// let state = MappingState::identity(&params, 3)?;
/// let text = render_state(&state, false);
/// assert_eq!(text.lines().count(), 3);
/// assert!(text.starts_with("0 1 2"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_state(state: &MappingState, wide: bool) -> String {
    let lattice = state.lattice();
    let side = lattice.side() as i32;
    let cell_width = if wide {
        (state.num_qubits().max(2) - 1).to_string().len()
    } else {
        1
    };
    let mut out = String::new();
    for y in 0..side {
        for x in 0..side {
            if x > 0 {
                out.push(' ');
            }
            let site = na_arch::Site::new(x, y);
            let cell = match state.atom_at_site(site) {
                None => ".".to_string(),
                Some(atom) => match state.qubit_of_atom(atom) {
                    None => "o".to_string(),
                    Some(q) => format_qubit(q, wide),
                },
            };
            out.push_str(&format!("{cell:>cell_width$}"));
        }
        out.push('\n');
    }
    out
}

fn format_qubit(q: Qubit, wide: bool) -> String {
    match q.0 {
        i if wide || i < 10 => i.to_string(),
        i if i < 36 => char::from(b'a' + (i - 10) as u8).to_string(),
        _ => "#".to_string(),
    }
}

/// Renders the interaction vicinity of one qubit: the qubit as `Q`,
/// interaction partners (within `r_int`) as `+`, everything else as in
/// [`render_state`].
pub fn render_vicinity(state: &MappingState, q: Qubit, r_int: f64) -> String {
    let lattice = state.lattice();
    let side = lattice.side() as i32;
    let center = state.site_of_qubit(q);
    let mut out = String::new();
    for y in 0..side {
        for x in 0..side {
            if x > 0 {
                out.push(' ');
            }
            let site = na_arch::Site::new(x, y);
            let symbol = if site == center {
                'Q'
            } else if state.atom_at_site(site).is_some() && center.within(site, r_int) {
                '+'
            } else if state.atom_at_site(site).is_some() {
                'o'
            } else {
                '.'
            };
            out.push(symbol);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::HardwareParams;

    fn state() -> MappingState {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(12)
            .build()
            .expect("valid");
        MappingState::identity(&params, 11).expect("fits")
    }

    #[test]
    fn grid_dimensions_match_lattice() {
        let text = render_state(&state(), false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            assert_eq!(line.split(' ').count(), 4);
        }
    }

    #[test]
    fn symbols_reflect_occupancy() {
        let text = render_state(&state(), false);
        // 11 qubits (0-9, a), one spare atom, four free sites.
        assert_eq!(text.matches('o').count(), 1);
        assert_eq!(text.matches('.').count(), 4);
        assert!(text.contains('a')); // qubit 10 in base 36
    }

    #[test]
    fn wide_mode_uses_decimal() {
        let text = render_state(&state(), true);
        assert!(text.contains("10"));
        assert!(!text.contains('a'));
    }

    #[test]
    fn vicinity_marks_partners() {
        let s = state();
        let text = render_vicinity(&s, Qubit(5), 2.0);
        assert_eq!(text.matches('Q').count(), 1);
        // Qubit 5 at (1, 1) on a dense 4x4 top-3-rows layout: the r = 2
        // disc holds many partners.
        assert!(text.matches('+').count() >= 8);
    }

    #[test]
    fn rendering_tracks_moves() {
        let mut s = state();
        let before = render_state(&s, false);
        let free = s.nearest_free_site(na_arch::Site::new(0, 0), &[]).unwrap();
        s.apply_move(crate::ops::AtomId(0), free);
        let after = render_state(&s, false);
        assert_ne!(before, after);
    }
}
