//! Shuttling-based routing: move-chain construction and the cost function
//! of the paper's Eq. (4)–(5).
//!
//! Considering every possible rearrangement is infeasible (O(N^|C|),
//! §3.1.1), so only moves that bring gate qubits *directly* into the
//! vicinity of another gate qubit are considered, in two flavours
//! (Example 5):
//!
//! * a **direct move** `M` onto an unoccupied coordinate,
//! * a **move-away combination** `(M_away, M)` that first parks the
//!   blocking atom on the nearest free coordinate.
//!
//! For each gate, chains are built around every choice of *central* gate
//! qubit (which stays put) plus a fallback anchor scan for crowded
//! regions; chains are kept minimal (bounded by `2(m − 1)` moves) on the
//! intuition that two moves are unlikely to beat one even when
//! parallelized (§3.3.2).

use std::collections::VecDeque;

use na_arch::{aod, HardwareParams, Move, Neighborhood, Site};
use na_circuit::Qubit;

use crate::config::MapperConfig;
use crate::connectivity::gate_remaining_distance;
use crate::ops::AtomId;
use crate::state::MappingState;

/// A frontier or lookahead gate prepared for shuttling-based routing.
#[derive(Debug, Clone)]
pub struct ShuttleGate {
    /// Index of the operation in the input circuit.
    pub op_index: usize,
    /// The gate's circuit qubits.
    pub qubits: Vec<Qubit>,
}

/// One move of a chain, bound to the atom that travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainMove {
    /// The shuttled atom.
    pub atom: AtomId,
    /// Source site.
    pub from: Site,
    /// Target site (free when the move executes).
    pub to: Site,
}

impl ChainMove {
    fn as_move(&self) -> Move {
        Move::new(self.from, self.to)
    }
}

/// A complete move chain making one frontier gate executable.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveChain {
    /// Index into the frontier slice this chain serves.
    pub gate: usize,
    /// Moves in execution order (move-aways precede dependent moves).
    pub moves: Vec<ChainMove>,
    /// Total cost under Eq. (4).
    pub cost: f64,
}

/// The shuttling-based router. Owns the recent-move window used by the
/// parallelism term `C_t_parallel`.
#[derive(Debug)]
pub struct ShuttleRouter {
    r_int: f64,
    hood_int: Neighborhood,
    lookahead_weight: f64,
    time_weight: f64,
    recency_window: usize,
    t_act_us: f64,
    t_deact_us: f64,
    speed_um_per_us: f64,
    lattice_constant_um: f64,
    recent_moves: VecDeque<Move>,
}

impl ShuttleRouter {
    /// Creates a router for the given hardware and configuration.
    pub fn new(params: &HardwareParams, config: &MapperConfig) -> Self {
        ShuttleRouter {
            r_int: params.r_int,
            hood_int: Neighborhood::new(params.r_int),
            lookahead_weight: config.lookahead_weight,
            time_weight: config.time_weight,
            recency_window: config.recency_window,
            t_act_us: params.t_act_us,
            t_deact_us: params.t_deact_us,
            speed_um_per_us: params.shuttle_speed_um_per_us,
            lattice_constant_um: params.lattice_constant_um,
            recent_moves: VecDeque::new(),
        }
    }

    /// Chooses the cheapest move chain over all frontier gates according
    /// to Eq. (4)–(5). Returns `None` if no gate needs routing or no
    /// chain could be constructed.
    pub fn best_chain(
        &self,
        state: &MappingState,
        front: &[ShuttleGate],
        lookahead: &[ShuttleGate],
    ) -> Option<MoveChain> {
        let mut best: Option<MoveChain> = None;
        for (gi, gate) in front.iter().enumerate() {
            if state.qubits_mutually_connected(&gate.qubits, self.r_int) {
                continue; // already executable
            }
            for chain in self.chains_for_gate(state, &gate.qubits) {
                let cost = self.chain_cost(state, &chain, front, lookahead);
                if best
                    .as_ref()
                    .is_none_or(|b| cost < b.cost - 1e-12)
                {
                    best = Some(MoveChain {
                        gate: gi,
                        moves: chain,
                        cost,
                    });
                }
            }
        }
        best
    }

    /// Candidate chains for one gate: one per viable central qubit, plus
    /// anchor-scan fallbacks when no center works.
    fn chains_for_gate(&self, state: &MappingState, qubits: &[Qubit]) -> Vec<Vec<ChainMove>> {
        let mut chains = Vec::new();
        for (ci, &center) in qubits.iter().enumerate() {
            let anchor = state.site_of_qubit(center);
            if let Some(chain) = self.build_chain(state, qubits, anchor, Some(ci)) {
                chains.push(chain);
            }
        }
        if chains.is_empty() {
            // Fallback: scan anchors near the gate centroid.
            let centroid = centroid_of(state, qubits);
            let lattice = state.lattice();
            let mut anchors: Vec<Site> = lattice.iter().collect();
            anchors.sort_by(|a, b| {
                dist2_to(centroid, *a)
                    .partial_cmp(&dist2_to(centroid, *b))
                    .expect("finite")
                    .then(a.cmp(b))
            });
            for anchor in anchors.into_iter().take(64) {
                if let Some(chain) = self.build_chain(state, qubits, anchor, None) {
                    chains.push(chain);
                    break;
                }
            }
        }
        chains
    }

    /// Builds a chain gathering all gate qubits on mutually compatible
    /// sites around `anchor`. When `center` names a gate qubit, that qubit
    /// stays on its current site.
    fn build_chain(
        &self,
        state: &MappingState,
        qubits: &[Qubit],
        anchor: Site,
        center: Option<usize>,
    ) -> Option<Vec<ChainMove>> {
        let lattice = state.lattice();
        let mut sim = state.clone();
        let mut moves: Vec<ChainMove> = Vec::new();
        let mut placed: Vec<Site> = Vec::new();

        // Placement order: the center first (stays put), then the rest by
        // proximity to the anchor.
        let mut order: Vec<usize> = (0..qubits.len()).collect();
        order.sort_by_key(|&i| {
            let key = if center == Some(i) {
                -1
            } else {
                state.site_of_qubit(qubits[i]).distance_sq(anchor)
            };
            (key, i)
        });

        for &qi in &order {
            let q = qubits[qi];
            let here = sim.site_of_qubit(q);
            let stays = placed.iter().all(|&t| t.within(here, self.r_int))
                && (center == Some(qi) || here.within(anchor, self.r_int));
            if stays {
                // Already compatible with everything placed so far.
                placed.push(here);
                continue;
            }
            // Candidate targets around the anchor, nearest to the qubit
            // first; must stay compatible with already-placed sites.
            let mut candidates: Vec<Site> = std::iter::once(anchor)
                .chain(self.hood_int.around(anchor))
                .filter(|s| {
                    lattice.contains(*s)
                        && placed.iter().all(|&t| t.within(*s, self.r_int))
                        && !placed.contains(s)
                })
                .collect();
            candidates.sort_by_key(|s| (here.distance_sq(*s), *s));

            // First preference: a free site (direct move).
            let direct = candidates.iter().copied().find(|&s| sim.is_free(s));
            let target = if let Some(t) = direct {
                t
            } else {
                // Move-away: evict the blocking atom from the best
                // occupied candidate that is not another gate qubit.
                let gate_sites: Vec<Site> =
                    qubits.iter().map(|&g| sim.site_of_qubit(g)).collect();
                let mut evicted = None;
                for &s in &candidates {
                    if gate_sites.contains(&s) {
                        continue;
                    }
                    let Some(blocker) = sim.atom_at_site(s) else {
                        continue;
                    };
                    let mut excluded = placed.clone();
                    excluded.extend(gate_sites.iter().copied());
                    excluded.push(s);
                    let Some(park) = sim.nearest_free_site(s, &excluded) else {
                        continue;
                    };
                    moves.push(ChainMove {
                        atom: blocker,
                        from: s,
                        to: park,
                    });
                    sim.apply_move(blocker, park);
                    evicted = Some(s);
                    break;
                }
                evicted?
            };
            let atom = sim.atom_of_qubit(q);
            moves.push(ChainMove {
                atom,
                from: sim.site_of_atom(atom),
                to: target,
            });
            sim.apply_move(atom, target);
            placed.push(target);
        }

        // Chain must actually make the gate executable.
        if !sim.qubits_mutually_connected(qubits, self.r_int) {
            return None;
        }
        // Center-based chains respect the paper's 2(m−1) bound; the anchor
        // fallback may additionally move the would-be center.
        debug_assert!(moves.len() <= 2 * qubits.len());
        Some(moves)
    }

    /// Total chain cost: Σ over moves of Eq. (4).
    fn chain_cost(
        &self,
        state: &MappingState,
        chain: &[ChainMove],
        front: &[ShuttleGate],
        lookahead: &[ShuttleGate],
    ) -> f64 {
        let mut sim = state.clone();
        let mut recent: Vec<Move> = self.recent_moves.iter().copied().collect();
        let mut total = 0.0;
        for mv in chain {
            let before_f: f64 = front
                .iter()
                .map(|g| gate_remaining_distance(&sim, &g.qubits, self.r_int))
                .sum();
            let before_l: f64 = lookahead
                .iter()
                .map(|g| gate_remaining_distance(&sim, &g.qubits, self.r_int))
                .sum();
            sim.apply_move(mv.atom, mv.to);
            let after_f: f64 = front
                .iter()
                .map(|g| gate_remaining_distance(&sim, &g.qubits, self.r_int))
                .sum();
            let after_l: f64 = lookahead
                .iter()
                .map(|g| gate_remaining_distance(&sim, &g.qubits, self.r_int))
                .sum();

            let c_parallel: f64 = recent
                .iter()
                .rev()
                .take(self.recency_window)
                .map(|m| self.delta_t(&mv.as_move(), m))
                .sum();

            total += (after_f - before_f)
                + self.lookahead_weight * (after_l - before_l)
                + self.time_weight * c_parallel;
            recent.push(mv.as_move());
        }
        total
    }

    /// The ΔT(M, M_t) model of §3.3.2: zero when fully parallelizable
    /// with a recent move, activation overhead when only loading
    /// parallelizes, full standalone time otherwise.
    fn delta_t(&self, m: &Move, recent: &Move) -> f64 {
        if aod::moves_fully_parallel(m, recent) {
            0.0
        } else if aod::loads_parallel(m, recent) {
            self.t_act_us + self.t_deact_us
        } else {
            self.t_act_us
                + m.rectilinear_distance() * self.lattice_constant_um / self.speed_um_per_us
                + self.t_deact_us
        }
    }

    /// Records applied moves into the recency window.
    pub fn note_moves_applied(&mut self, moves: &[ChainMove]) {
        for mv in moves {
            self.recent_moves.push_back(mv.as_move());
            while self.recent_moves.len() > self.recency_window {
                self.recent_moves.pop_front();
            }
        }
    }
}

fn centroid_of(state: &MappingState, qubits: &[Qubit]) -> (f64, f64) {
    let mut x = 0.0;
    let mut y = 0.0;
    for &q in qubits {
        let s = state.site_of_qubit(q);
        x += f64::from(s.x);
        y += f64::from(s.y);
    }
    let n = qubits.len() as f64;
    (x / n, y / n)
}

fn dist2_to(centroid: (f64, f64), s: Site) -> f64 {
    let dx = f64::from(s.x) - centroid.0;
    let dy = f64::from(s.y) - centroid.1;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(side: u32, atoms: u32, r: f64) -> HardwareParams {
        HardwareParams::shuttling()
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .radius(r)
            .build()
            .expect("valid")
    }

    fn gate(qubits: &[u32]) -> ShuttleGate {
        ShuttleGate {
            op_index: 0,
            qubits: qubits.iter().map(|&q| Qubit(q)).collect(),
        }
    }

    fn apply(state: &mut MappingState, chain: &MoveChain) {
        for mv in &chain.moves {
            state.apply_move(mv.atom, mv.to);
        }
    }

    #[test]
    fn direct_move_when_free_site_available() {
        // 5x5 lattice, 10 atoms in the top two rows; plenty of free sites.
        let p = params(5, 10, 1.0);
        let mut state = MappingState::identity(&p, 10).expect("fits");
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        // q0 at (0,0), q9 at (4,1): distance > 1.
        let front = [gate(&[0, 9])];
        let chain = router.best_chain(&state, &front, &[]).expect("chain");
        assert_eq!(chain.moves.len(), 1, "one direct move suffices");
        apply(&mut state, &chain);
        assert!(state.qubits_mutually_connected(&[Qubit(0), Qubit(9)], p.r_int));
        state.check_invariants().unwrap();
    }

    #[test]
    fn move_away_used_in_crowded_region() {
        // Dense 4x4 lattice with 15 atoms; a single free site at (3,3).
        let p = params(4, 15, 1.0);
        let mut state = MappingState::identity(&p, 15).expect("fits");
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        // q0 at (0,0) and q10 at (2,2): all neighbours of both are occupied.
        let front = [gate(&[0, 10])];
        let chain = router.best_chain(&state, &front, &[]).expect("chain");
        assert!(
            chain.moves.len() >= 2,
            "crowded routing needs a move-away, got {:?}",
            chain.moves
        );
        apply(&mut state, &chain);
        assert!(state.qubits_mutually_connected(&[Qubit(0), Qubit(10)], p.r_int));
        state.check_invariants().unwrap();
    }

    #[test]
    fn chain_bounded_by_worst_case() {
        // r_int = √2: three qubits fit an L-shaped arrangement (at r = 1
        // no three lattice sites are pairwise within range at all).
        let p = params(5, 20, std::f64::consts::SQRT_2);
        let state = MappingState::identity(&p, 20).expect("fits");
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [gate(&[0, 12, 19])];
        let chain = router.best_chain(&state, &front, &[]).expect("chain");
        // 2(m-1) for center-based chains; the anchor fallback may also
        // relocate the would-be center (<= 2m).
        assert!(chain.moves.len() <= 2 * 3, "bounded, got {:?}", chain.moves);
    }

    #[test]
    fn multiqubit_gate_becomes_executable() {
        let p = params(6, 20, std::f64::consts::SQRT_2);
        let mut state = MappingState::identity(&p, 20).expect("fits");
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let qubits = [Qubit(0), Qubit(7), Qubit(19)];
        let front = [gate(&[0, 7, 19])];
        let chain = router.best_chain(&state, &front, &[]).expect("chain");
        apply(&mut state, &chain);
        assert!(state.qubits_mutually_connected(&qubits, p.r_int));
    }

    #[test]
    fn executable_gate_needs_no_chain() {
        let p = params(5, 10, 2.0);
        let state = MappingState::identity(&p, 10).expect("fits");
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [gate(&[0, 1])];
        assert!(router.best_chain(&state, &front, &[]).is_none());
    }

    #[test]
    fn parallelizable_chains_preferred_with_recent_moves() {
        let p = params(6, 12, 1.0);
        let state = MappingState::identity(&p, 12).expect("fits");
        let mut router =
            ShuttleRouter::new(&p, &MapperConfig::shuttle_only().with_time_weight(1.0));
        // Seed the recency window with a downward move.
        router.note_moves_applied(&[ChainMove {
            atom: AtomId(11),
            from: Site::new(5, 1),
            to: Site::new(5, 4),
        }]);
        let front = [gate(&[0, 9])];
        let chain = router.best_chain(&state, &front, &[]).expect("chain");
        // The chosen move should at least load-parallelize with the
        // recent one (distinct source).
        for mv in &chain.moves {
            assert_ne!(mv.from, Site::new(5, 1));
        }
    }

    #[test]
    fn delta_t_cases() {
        let p = params(5, 10, 1.0);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let m1 = Move::new(Site::new(0, 0), Site::new(0, 2));
        let m_parallel = Move::new(Site::new(2, 0), Site::new(2, 2));
        let m_conflict = Move::new(Site::new(3, 4), Site::new(3, 1)); // opposite y direction
        assert_eq!(router.delta_t(&m_parallel, &m1), 0.0);
        let load_only = router.delta_t(&m_conflict, &m1);
        assert_eq!(load_only, p.t_act_us + p.t_deact_us);
        let m_same_src = Move::new(Site::new(0, 0), Site::new(1, 0));
        let full = router.delta_t(&m_same_src, &m_same_src);
        assert!(full > load_only);
    }

    #[test]
    fn chains_deterministic() {
        let p = params(5, 15, 1.0);
        let state = MappingState::identity(&p, 15).expect("fits");
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [gate(&[0, 12])];
        let a = router.best_chain(&state, &front, &[]).expect("chain");
        let b = router.best_chain(&state, &front, &[]).expect("chain");
        assert_eq!(a, b);
    }
}
