//! Mapper error types.

use std::error::Error;
use std::fmt;

use na_arch::ArchError;

/// Errors raised during circuit mapping.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MapError {
    /// The hardware description is inconsistent.
    Arch(ArchError),
    /// The circuit needs more qubits than the hardware provides atoms.
    CircuitTooWide {
        /// Circuit width.
        circuit_qubits: u32,
        /// Available atoms.
        atoms: u32,
    },
    /// Routing made no progress within the safety budget — usually a sign
    /// of a hardware configuration whose interaction radius cannot realize
    /// a required multi-qubit gate geometry.
    RoutingStuck {
        /// Index of the circuit operation that could not be routed.
        op_index: usize,
        /// Routing operations spent before giving up.
        ops_spent: usize,
    },
    /// A multi-qubit gate has more operands than any geometric arrangement
    /// within `r_int` can accommodate.
    GateTooLarge {
        /// Index of the circuit operation.
        op_index: usize,
        /// Operand count.
        arity: usize,
        /// Sites available within a mutual-interaction disc.
        capacity: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Arch(e) => write!(f, "invalid architecture: {e}"),
            MapError::CircuitTooWide {
                circuit_qubits,
                atoms,
            } => write!(
                f,
                "circuit needs {circuit_qubits} qubits but hardware has {atoms} atoms"
            ),
            MapError::RoutingStuck {
                op_index,
                ops_spent,
            } => write!(
                f,
                "routing stuck on operation {op_index} after {ops_spent} routing operations"
            ),
            MapError::GateTooLarge {
                op_index,
                arity,
                capacity,
            } => write!(
                f,
                "operation {op_index} acts on {arity} qubits but at most {capacity} \
                 sites fit within the interaction radius"
            ),
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for MapError {
    fn from(e: ArchError) -> Self {
        MapError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_context() {
        let e = MapError::CircuitTooWide {
            circuit_qubits: 300,
            atoms: 200,
        };
        assert!(e.to_string().contains("300"));
        let e = MapError::RoutingStuck {
            op_index: 17,
            ops_spent: 4000,
        };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn arch_error_wraps_with_source() {
        let inner = ArchError::InvalidParameter {
            name: "r_int",
            reason: "must be positive".into(),
        };
        let e = MapError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MapError>();
    }
}
