//! Mapper error types.

use std::error::Error;
use std::fmt;

use na_arch::ArchError;

/// Errors raised while validating a [`MapperConfig`].
///
/// These replace the construction-time panics of the original
/// constructors (`assert!` on a non-finite α, `place()` aborting on an
/// undersized lattice): the fallible paths
/// ([`MapperConfig::try_hybrid`], `Compiler::build` in `na-pipeline`)
/// surface them as typed errors instead.
///
/// [`MapperConfig`]: crate::MapperConfig
/// [`MapperConfig::try_hybrid`]: crate::MapperConfig::try_hybrid
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The hybrid decision ratio `α = α_g/α_s` is not finite and
    /// positive.
    InvalidAlphaRatio {
        /// The rejected value.
        value: f64,
    },
    /// A capability weight or cost weight is outside its domain.
    InvalidWeight {
        /// Name of the offending knob.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Both capability weights are zero — no router could run.
    NoCapability,
    /// Speculative candidate evaluation needs at least one worker thread.
    ZeroEvalThreads,
    /// The AOD transaction cap would forbid every move.
    EmptyAodBatchCap,
    /// A shuttle-capable mapping mode was requested on a target whose
    /// native gate set has no shuttling.
    ShuttlingUnsupported {
        /// Identifier of the rejecting target.
        target: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidAlphaRatio { value } => {
                write!(
                    f,
                    "hybrid alpha ratio must be finite and positive, got {value}"
                )
            }
            ConfigError::InvalidWeight { name, value } => {
                write!(
                    f,
                    "mapper weight `{name}` must be finite and non-negative, got {value}"
                )
            }
            ConfigError::NoCapability => {
                write!(f, "both capability weights are zero; enable at least one of gate-based or shuttling routing")
            }
            ConfigError::ZeroEvalThreads => {
                write!(
                    f,
                    "`eval_threads` must be at least 1 (1 = evaluate on the caller thread)"
                )
            }
            ConfigError::EmptyAodBatchCap => {
                write!(
                    f,
                    "AOD transaction cap `max_batch_moves` must allow at least 1 move"
                )
            }
            ConfigError::ShuttlingUnsupported { target } => {
                write!(
                    f,
                    "target `{target}` has no shuttling capability; use a gate-only mapping mode"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// Errors raised during circuit mapping.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MapError {
    /// The hardware description is inconsistent.
    Arch(ArchError),
    /// The mapper configuration is invalid (see [`ConfigError`]).
    Config(ConfigError),
    /// The circuit needs more qubits than the hardware provides atoms.
    CircuitTooWide {
        /// Circuit width.
        circuit_qubits: u32,
        /// Available atoms.
        atoms: u32,
    },
    /// Routing made no progress within the safety budget — usually a sign
    /// of a hardware configuration whose interaction radius cannot realize
    /// a required multi-qubit gate geometry.
    RoutingStuck {
        /// Index of the circuit operation that could not be routed.
        op_index: usize,
        /// Routing operations spent before giving up.
        ops_spent: usize,
    },
    /// A multi-qubit gate has more operands than any geometric arrangement
    /// within `r_int` can accommodate.
    GateTooLarge {
        /// Index of the circuit operation.
        op_index: usize,
        /// Operand count.
        arity: usize,
        /// Sites available within a mutual-interaction disc.
        capacity: usize,
    },
    /// Mapping was stopped at a checkpoint by a [`CancelToken`].
    ///
    /// [`CancelToken`]: crate::CancelToken
    Cancelled {
        /// Whether the token tripped explicitly or by deadline.
        reason: crate::CancelReason,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Arch(e) => write!(f, "invalid architecture: {e}"),
            MapError::Config(e) => write!(f, "invalid mapper configuration: {e}"),
            MapError::CircuitTooWide {
                circuit_qubits,
                atoms,
            } => write!(
                f,
                "circuit needs {circuit_qubits} qubits but hardware has {atoms} atoms"
            ),
            MapError::RoutingStuck {
                op_index,
                ops_spent,
            } => write!(
                f,
                "routing stuck on operation {op_index} after {ops_spent} routing operations"
            ),
            MapError::GateTooLarge {
                op_index,
                arity,
                capacity,
            } => write!(
                f,
                "operation {op_index} acts on {arity} qubits but at most {capacity} \
                 sites fit within the interaction radius"
            ),
            MapError::Cancelled { reason } => match reason {
                crate::CancelReason::Explicit => write!(f, "mapping cancelled"),
                crate::CancelReason::DeadlineExceeded => {
                    write!(f, "mapping deadline exceeded")
                }
            },
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Arch(e) => Some(e),
            MapError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for MapError {
    fn from(e: ArchError) -> Self {
        MapError::Arch(e)
    }
}

impl From<ConfigError> for MapError {
    fn from(e: ConfigError) -> Self {
        MapError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_context() {
        let e = MapError::CircuitTooWide {
            circuit_qubits: 300,
            atoms: 200,
        };
        assert!(e.to_string().contains("300"));
        let e = MapError::RoutingStuck {
            op_index: 17,
            ops_spent: 4000,
        };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn arch_error_wraps_with_source() {
        let inner = ArchError::InvalidParameter {
            name: "r_int",
            reason: "must be positive".into(),
        };
        let e = MapError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MapError>();
    }
}
