//! Cooperative cancellation for long-running mapping passes.
//!
//! A [`CancelToken`] is a hand-rolled, dependency-free stop signal: an
//! atomic flag (settable from any thread) combined with an optional
//! absolute deadline. Hot loops poll it at coarse checkpoints — once
//! per mapper round, once per scheduler flush wave, once per lowered
//! AOD batch — so the poll cost is a relaxed atomic load plus (when a
//! deadline is set) one monotonic clock read, far below the work of a
//! single routing round. Polls are pure reads: they never perturb
//! routing decisions, so artifacts stay byte-identical whether or not
//! a token is attached.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a cancelled computation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called explicitly.
    Explicit,
    /// The token's deadline passed.
    DeadlineExceeded,
}

/// A cloneable stop signal: explicit cancellation plus an optional
/// deadline.
///
/// Clones share the same flag, so cancelling any clone cancels all of
/// them. The token never unblocks non-cooperative code — computations
/// observe it only at their own checkpoints.
///
/// ```
/// use na_mapper::{CancelReason, CancelToken};
///
/// let token = CancelToken::never();
/// assert!(token.check().is_ok());
/// token.cancel();
/// assert_eq!(token.check(), Err(CancelReason::Explicit));
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only trips on an explicit [`cancel`](Self::cancel).
    pub fn never() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A token that trips `budget` from now (or on explicit cancel).
    pub fn with_deadline(budget: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + budget)
    }

    /// A token that trips at the absolute instant `deadline`.
    ///
    /// Used by service layers that fix the deadline at admission time
    /// so queue wait counts against the budget.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Trips the token; every clone observes it on its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// The checkpoint poll: `Ok(())` to keep going, or the reason to
    /// stop.
    ///
    /// Explicit cancellation wins over a simultaneously-expired
    /// deadline so callers that abort a request see the reason they
    /// asked for.
    pub fn check(&self) -> Result<(), CancelReason> {
        if self.flag.load(Ordering::Acquire) {
            return Err(CancelReason::Explicit);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(CancelReason::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_stays_ok_until_cancelled() {
        let t = CancelToken::never();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        t.cancel();
        assert_eq!(t.check(), Err(CancelReason::Explicit));
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::never();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_trips_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.check(), Err(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn explicit_cancel_wins_over_expired_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        t.cancel();
        assert_eq!(t.check(), Err(CancelReason::Explicit));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(t.check().is_ok());
        assert!(t.deadline().is_some());
    }
}
