//! Mapping state: the two assignments `f_q` (qubit → atom) and `f_a`
//! (atom → site) plus fast occupancy lookups.
//!
//! Gate-based routing permutes `f_q` via [`MappingState::apply_swap`];
//! shuttling-based routing permutes `f_a` via [`MappingState::apply_move`]
//! (paper §2.2 and Example 4).

use na_arch::{HardwareParams, Lattice, Neighborhood, Site};
use na_circuit::Qubit;

use crate::error::MapError;
use crate::layout::InitialLayout;
use crate::ops::AtomId;

/// The joint qubit/atom mapping maintained during routing.
///
/// Invariants (checked in debug builds and by
/// [`MappingState::check_invariants`]):
///
/// * every atom occupies exactly one in-bounds site; no two atoms share a
///   site,
/// * `atom_of_qubit` and `qubit_of_atom` are mutually inverse on assigned
///   atoms.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::Qubit;
/// use na_mapper::MappingState;
///
/// let params = HardwareParams::mixed()
///     .to_builder()
///     .lattice(4, 3.0)
///     .num_atoms(8)
///     .build()?;
/// let state = MappingState::identity(&params, 6)?;
/// // Identity layout: qubit i on atom i at site index i.
/// assert_eq!(state.site_of_qubit(Qubit(5)).x, 1);
/// assert_eq!(state.site_of_qubit(Qubit(5)).y, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MappingState {
    lattice: Lattice,
    site_of_atom: Vec<Site>,
    atom_at_site: Vec<Option<AtomId>>,
    qubit_of_atom: Vec<Option<Qubit>>,
    atom_of_qubit: Vec<AtomId>,
    /// Dense indices of the currently free sites, in no particular
    /// order — kept in sync by every move so free-site queries scan
    /// `O(free)` instead of `O(sites)` (on the paper's near-full arrays
    /// free sites are the small minority).
    free_sites: Vec<u32>,
    /// Per site: position of that site inside `free_sites`, or
    /// `u32::MAX` when the site is occupied.
    free_pos: Vec<u32>,
    /// Side length (in sites) of the coarse regions below — the same
    /// [`na_arch::RegionGrid::DEFAULT_SIDE`] the neighbor table uses, so
    /// the state's buckets and the router's region graph agree on what a
    /// "region" is.
    region_side: u32,
    /// Region-grid width in regions.
    regions_x: u32,
    /// Region-grid height in regions.
    regions_y: u32,
    /// Per site: its coarse region, from [`na_arch::RegionGrid::partition`].
    region_of_site: Vec<u32>,
    /// Per region: dense indices of the free sites inside it, in no
    /// particular order. Lets proximity queries walk outward region ring
    /// by region ring instead of scanning the global free list — on a
    /// 100×100 lattice with thousands of atoms, the global scan is four
    /// orders of magnitude more work than the two or three rings a
    /// typical query touches.
    free_by_region: Vec<Vec<u32>>,
    /// Per site: slot inside its region's `free_by_region` bucket, or
    /// `u32::MAX` when occupied.
    free_slot: Vec<u32>,
    /// Per region: the atoms currently sitting inside it, in no
    /// particular order — the same ring-walk accelerator for anchor
    /// scans over atoms.
    atoms_by_region: Vec<Vec<u32>>,
    /// Per atom: slot inside its region's `atoms_by_region` bucket.
    atom_region_slot: Vec<u32>,
    /// Process-unique stamp of this state's occupancy configuration:
    /// refreshed on construction, clone, and every shuttle move — but
    /// not by SWAPs, which permute `f_q` only. Two states never share a
    /// stamp, so cached distance fields over the occupied graph (see
    /// [`crate::route::DistanceCache`]) are valid exactly while the
    /// stamp they were computed at is still current.
    occupancy_stamp: u64,
}

/// Source of process-unique occupancy stamps (0 is never issued, so a
/// cache can use it as "nothing cached yet").
fn next_occupancy_stamp() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One recorded mutation of a [`MappingState`], enough for exact revert.
#[derive(Debug, Clone, Copy)]
enum JournalEntry {
    /// A qubit exchange (its own inverse).
    Swap { a: AtomId, b: AtomId },
    /// A shuttle move: where the atom came from, and the occupancy stamp
    /// the state carried *before* the move — restored verbatim on undo so
    /// distance fields cached against the pre-move occupancy become valid
    /// again the moment the move is reverted.
    Move {
        atom: AtomId,
        from: Site,
        stamp_before: u64,
    },
}

/// Position in a [`StateJournal`], as returned by [`StateJournal::mark`]
/// and consumed by [`MappingState::undo_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JournalMark(usize);

/// An apply/undo log of [`MappingState`] mutations.
///
/// Routers speculate candidate routing operations **in place** on the
/// live state — [`MappingState::apply_swap_journaled`] /
/// [`MappingState::apply_move_journaled`] record each mutation here, and
/// [`MappingState::undo_to`] reverts to any earlier [`JournalMark`]
/// exactly: positions, the qubit map, *and* the occupancy stamp.
///
/// # Stamp semantics
///
/// Speculative moves mint fresh process-unique stamps (the same
/// generator as committed moves), so a speculatively modified occupancy
/// can never alias the committed one — or any other state — in a stamp-
/// keyed distance cache. Undo restores the exact pre-move stamp, so
/// every field cached against the committed occupancy is valid again
/// once the speculation is rolled back: candidate evaluation no longer
/// costs the cache anything.
///
/// The journal is plain storage and can be reused across rounds
/// (rolling back to [`JournalMark`] 0 leaves an empty journal with its
/// capacity intact).
#[derive(Debug, Clone, Default)]
pub struct StateJournal {
    entries: Vec<JournalEntry>,
}

impl StateJournal {
    /// An empty journal.
    pub fn new() -> Self {
        StateJournal::default()
    }

    /// The current position; pass to [`MappingState::undo_to`] to revert
    /// everything recorded after this point.
    #[inline]
    pub fn mark(&self) -> JournalMark {
        JournalMark(self.entries.len())
    }

    /// Number of recorded, not-yet-undone mutations.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is recorded — i.e. no speculation is in
    /// flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Clone for MappingState {
    /// Clones receive a fresh stamp: they start occupancy-identical but
    /// diverge independently, so sharing the original's stamp could
    /// alias cached distance fields across states.
    fn clone(&self) -> Self {
        MappingState {
            lattice: self.lattice,
            site_of_atom: self.site_of_atom.clone(),
            atom_at_site: self.atom_at_site.clone(),
            qubit_of_atom: self.qubit_of_atom.clone(),
            atom_of_qubit: self.atom_of_qubit.clone(),
            free_sites: self.free_sites.clone(),
            free_pos: self.free_pos.clone(),
            region_side: self.region_side,
            regions_x: self.regions_x,
            regions_y: self.regions_y,
            region_of_site: self.region_of_site.clone(),
            free_by_region: self.free_by_region.clone(),
            free_slot: self.free_slot.clone(),
            atoms_by_region: self.atoms_by_region.clone(),
            atom_region_slot: self.atom_region_slot.clone(),
            occupancy_stamp: next_occupancy_stamp(),
        }
    }
}

impl PartialEq for MappingState {
    /// Equality of the physical configuration; the occupancy stamp is a
    /// cache-invalidation token, not part of the state.
    fn eq(&self, other: &Self) -> bool {
        self.lattice == other.lattice
            && self.site_of_atom == other.site_of_atom
            && self.atom_at_site == other.atom_at_site
            && self.qubit_of_atom == other.qubit_of_atom
            && self.atom_of_qubit == other.atom_of_qubit
    }
}

impl MappingState {
    /// Builds the trivial identity layout of the paper's §4.1:
    /// `q_i ↔ Q_i ↔ C_i` with the remaining atoms parked on the next
    /// sites in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::CircuitTooWide`] if `num_qubits` exceeds the
    /// atom count, and propagates architecture validation errors.
    pub fn identity(params: &HardwareParams, num_qubits: u32) -> Result<Self, MapError> {
        MappingState::with_layout(params, num_qubits, InitialLayout::Identity)
    }

    /// Builds a mapping state with an explicit [`InitialLayout`] on the
    /// full square lattice of `params`: atom `i` sits on
    /// `layout.place(..)[i]`, circuit qubit `i` starts on atom `i`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::CircuitTooWide`] if `num_qubits` exceeds the
    /// atom count, and propagates architecture validation errors.
    pub fn with_layout(
        params: &HardwareParams,
        num_qubits: u32,
        layout: InitialLayout,
    ) -> Result<Self, MapError> {
        params.validate()?;
        MappingState::on_lattice(
            params,
            Lattice::new(params.lattice_side),
            num_qubits,
            layout,
        )
    }

    /// Builds a mapping state on an explicit trap topology — the
    /// target-aware constructor used when the lattice is not the full
    /// square grid of `params` (e.g. a zoned storage/interaction
    /// layout).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::CircuitTooWide`] if `num_qubits` exceeds the
    /// atom count, and [`MapError::Arch`] with
    /// [`na_arch::ArchError::TooManyAtoms`] when the topology holds
    /// fewer than `num_atoms + 1` traps.
    pub fn on_lattice(
        params: &HardwareParams,
        lattice: Lattice,
        num_qubits: u32,
        layout: InitialLayout,
    ) -> Result<Self, MapError> {
        if num_qubits > params.num_atoms {
            return Err(MapError::CircuitTooWide {
                circuit_qubits: num_qubits,
                atoms: params.num_atoms,
            });
        }
        if params.num_atoms as usize >= lattice.num_sites() {
            return Err(MapError::Arch(na_arch::ArchError::TooManyAtoms {
                atoms: params.num_atoms,
                sites: lattice.num_sites() as u32,
            }));
        }
        let num_atoms = params.num_atoms as usize;
        let site_of_atom = layout.place(&lattice, params.num_atoms);
        let mut atom_at_site = vec![None; lattice.num_sites()];
        for (a, site) in site_of_atom.iter().enumerate() {
            atom_at_site[lattice.index(*site)] = Some(AtomId(a as u32));
        }
        let qubit_of_atom = (0..num_atoms)
            .map(|a| {
                if (a as u32) < num_qubits {
                    Some(Qubit(a as u32))
                } else {
                    None
                }
            })
            .collect();
        let atom_of_qubit = (0..num_qubits).map(AtomId).collect();
        // The subtraction cannot underflow: the `num_atoms >= num_sites`
        // guard above already rejected over- and exactly-full topologies
        // with a typed `TooManyAtoms`, so `num_sites > num_atoms` holds
        // here (the routers need at least one free site to shuttle
        // through anyway).
        let mut free_sites = Vec::with_capacity(lattice.num_sites() - num_atoms);
        let mut free_pos = vec![u32::MAX; lattice.num_sites()];
        for (idx, occupant) in atom_at_site.iter().enumerate() {
            if occupant.is_none() {
                free_pos[idx] = free_sites.len() as u32;
                free_sites.push(idx as u32);
            }
        }
        let (regions_x, regions_y, region_of_site) =
            na_arch::RegionGrid::partition(&lattice, na_arch::RegionGrid::DEFAULT_SIDE);
        let num_regions = (regions_x * regions_y) as usize;
        let mut free_by_region = vec![Vec::new(); num_regions];
        let mut free_slot = vec![u32::MAX; lattice.num_sites()];
        for &idx in &free_sites {
            let r = region_of_site[idx as usize] as usize;
            free_slot[idx as usize] = free_by_region[r].len() as u32;
            free_by_region[r].push(idx);
        }
        let mut atoms_by_region = vec![Vec::new(); num_regions];
        let mut atom_region_slot = vec![u32::MAX; num_atoms];
        for (a, site) in site_of_atom.iter().enumerate() {
            let r = region_of_site[lattice.index(*site)] as usize;
            atom_region_slot[a] = atoms_by_region[r].len() as u32;
            atoms_by_region[r].push(a as u32);
        }
        Ok(MappingState {
            lattice,
            site_of_atom,
            atom_at_site,
            qubit_of_atom,
            atom_of_qubit,
            free_sites,
            free_pos,
            region_side: na_arch::RegionGrid::DEFAULT_SIDE,
            regions_x,
            regions_y,
            region_of_site,
            free_by_region,
            free_slot,
            atoms_by_region,
            atom_region_slot,
            occupancy_stamp: next_occupancy_stamp(),
        })
    }

    /// Process-unique stamp of this state's occupancy configuration
    /// (`f_a`): refreshed by [`MappingState::apply_move`] (and on
    /// construction/clone), untouched by [`MappingState::apply_swap`].
    /// Cached distance fields over the occupied graph are valid exactly
    /// while this value is unchanged; never zero.
    #[inline]
    pub fn occupancy_stamp(&self) -> u64 {
        self.occupancy_stamp
    }

    /// The underlying lattice.
    #[inline]
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Number of atoms.
    #[inline]
    pub fn num_atoms(&self) -> usize {
        self.site_of_atom.len()
    }

    /// Number of mapped circuit qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.atom_of_qubit.len()
    }

    /// The atom currently carrying circuit qubit `q`.
    #[inline]
    pub fn atom_of_qubit(&self, q: Qubit) -> AtomId {
        self.atom_of_qubit[q.index()]
    }

    /// The circuit qubit carried by `atom`, if any.
    #[inline]
    pub fn qubit_of_atom(&self, atom: AtomId) -> Option<Qubit> {
        self.qubit_of_atom[atom.index()]
    }

    /// The trap site of `atom`.
    #[inline]
    pub fn site_of_atom(&self, atom: AtomId) -> Site {
        self.site_of_atom[atom.index()]
    }

    /// The trap site of the atom carrying qubit `q`.
    #[inline]
    pub fn site_of_qubit(&self, q: Qubit) -> Site {
        self.site_of_atom(self.atom_of_qubit(q))
    }

    /// The atom trapped at `site`, if any.
    #[inline]
    pub fn atom_at_site(&self, site: Site) -> Option<AtomId> {
        self.atom_at_site[self.lattice.index(site)]
    }

    /// The atom trapped at dense site index `idx`, if any — the CSR
    /// companion of [`MappingState::atom_at_site`] for callers iterating
    /// a [`na_arch::NeighborTable`] (no coordinate → index conversion).
    #[inline]
    pub fn atom_at_site_index(&self, idx: usize) -> Option<AtomId> {
        self.atom_at_site[idx]
    }

    /// Returns `true` if `site` holds no atom.
    #[inline]
    pub fn is_free(&self, site: Site) -> bool {
        self.atom_at_site(site).is_none()
    }

    /// Returns `true` if dense site index `idx` holds no atom.
    #[inline]
    pub fn is_free_index(&self, idx: usize) -> bool {
        self.atom_at_site[idx].is_none()
    }

    /// Dense indices of the currently free sites, in unspecified order.
    #[inline]
    pub fn free_site_indices(&self) -> &[u32] {
        &self.free_sites
    }

    /// Removes `idx` from / adds `idx` to the free-site list — the only
    /// two places occupancy flips, shared by moves and their undo. Both
    /// mirror the flip into the per-region free bucket, so the global
    /// list and the region index can never disagree.
    #[inline]
    fn mark_occupied(&mut self, idx: usize) {
        let pos = self.free_pos[idx] as usize;
        debug_assert_ne!(pos as u32, u32::MAX, "site already occupied");
        let last = self.free_sites.pop().expect("free list non-empty");
        if pos < self.free_sites.len() {
            self.free_sites[pos] = last;
            self.free_pos[last as usize] = pos as u32;
        } else {
            debug_assert_eq!(last, idx as u32, "free list out of sync");
        }
        self.free_pos[idx] = u32::MAX;
        let region = self.region_of_site[idx] as usize;
        let slot = self.free_slot[idx] as usize;
        let bucket = &mut self.free_by_region[region];
        let last = bucket.pop().expect("region free bucket non-empty");
        if slot < bucket.len() {
            bucket[slot] = last;
            self.free_slot[last as usize] = slot as u32;
        } else {
            debug_assert_eq!(last, idx as u32, "region free bucket out of sync");
        }
        self.free_slot[idx] = u32::MAX;
    }

    #[inline]
    fn mark_free(&mut self, idx: usize) {
        debug_assert_eq!(self.free_pos[idx], u32::MAX, "site already free");
        self.free_pos[idx] = self.free_sites.len() as u32;
        self.free_sites.push(idx as u32);
        let region = self.region_of_site[idx] as usize;
        self.free_slot[idx] = self.free_by_region[region].len() as u32;
        self.free_by_region[region].push(idx as u32);
    }

    /// Re-files `atom` from the region of `from_idx` into the region of
    /// `to_idx` after a shuttle (or its undo). No-op when both sites
    /// share a region.
    #[inline]
    fn relocate_atom_region(&mut self, atom: AtomId, from_idx: usize, to_idx: usize) {
        let from_region = self.region_of_site[from_idx] as usize;
        let to_region = self.region_of_site[to_idx] as usize;
        if from_region == to_region {
            return;
        }
        let slot = self.atom_region_slot[atom.index()] as usize;
        let bucket = &mut self.atoms_by_region[from_region];
        let last = bucket.pop().expect("region atom bucket non-empty");
        if slot < bucket.len() {
            bucket[slot] = last;
            self.atom_region_slot[last as usize] = slot as u32;
        } else {
            debug_assert_eq!(last, atom.0, "region atom bucket out of sync");
        }
        self.atom_region_slot[atom.index()] = self.atoms_by_region[to_region].len() as u32;
        self.atoms_by_region[to_region].push(atom.0);
    }

    /// Exchanges the circuit qubits of two atoms — the effect of a SWAP
    /// gate on `f_q`. Atoms without an assigned qubit participate as
    /// `|0⟩`-state partners.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn apply_swap(&mut self, a: AtomId, b: AtomId) {
        assert_ne!(a, b, "cannot swap an atom with itself");
        let qa = self.qubit_of_atom[a.index()];
        let qb = self.qubit_of_atom[b.index()];
        self.qubit_of_atom[a.index()] = qb;
        self.qubit_of_atom[b.index()] = qa;
        if let Some(q) = qa {
            self.atom_of_qubit[q.index()] = b;
        }
        if let Some(q) = qb {
            self.atom_of_qubit[q.index()] = a;
        }
    }

    /// Moves `atom` to the free site `to` — the effect of a shuttle on
    /// `f_a`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of bounds or occupied.
    pub fn apply_move(&mut self, atom: AtomId, to: Site) {
        assert!(self.lattice.contains(to), "move target {to} out of bounds");
        assert!(self.is_free(to), "move target {to} is occupied");
        let from = self.site_of_atom[atom.index()];
        let from_idx = self.lattice.index(from);
        let to_idx = self.lattice.index(to);
        self.atom_at_site[from_idx] = None;
        self.mark_free(from_idx);
        self.atom_at_site[to_idx] = Some(atom);
        self.mark_occupied(to_idx);
        self.relocate_atom_region(atom, from_idx, to_idx);
        self.site_of_atom[atom.index()] = to;
        self.occupancy_stamp = next_occupancy_stamp();
    }

    /// [`MappingState::apply_swap`] with the mutation recorded in
    /// `journal` for exact revert via [`MappingState::undo_to`].
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn apply_swap_journaled(&mut self, a: AtomId, b: AtomId, journal: &mut StateJournal) {
        journal.entries.push(JournalEntry::Swap { a, b });
        self.apply_swap(a, b);
    }

    /// [`MappingState::apply_move`] with the mutation recorded in
    /// `journal` for exact revert via [`MappingState::undo_to`].
    ///
    /// The move mints a fresh process-unique occupancy stamp (like any
    /// committed move), so the speculative occupancy never aliases the
    /// committed one in a stamp-keyed cache; undo restores the exact
    /// pre-move stamp.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of bounds or occupied.
    pub fn apply_move_journaled(&mut self, atom: AtomId, to: Site, journal: &mut StateJournal) {
        journal.entries.push(JournalEntry::Move {
            atom,
            from: self.site_of_atom[atom.index()],
            stamp_before: self.occupancy_stamp,
        });
        self.apply_move(atom, to);
    }

    /// Reverts every mutation recorded after `mark`, newest first,
    /// restoring positions, the qubit map and the occupancy stamp
    /// exactly as they were when `mark` was taken.
    ///
    /// # Panics
    ///
    /// Panics if `mark` lies beyond the journal's current length (i.e.
    /// it was taken from a different journal or already undone past).
    pub fn undo_to(&mut self, journal: &mut StateJournal, mark: JournalMark) {
        assert!(
            mark.0 <= journal.entries.len(),
            "journal mark {mark:?} beyond length {}",
            journal.entries.len()
        );
        while journal.entries.len() > mark.0 {
            match journal.entries.pop().expect("length checked") {
                JournalEntry::Swap { a, b } => self.apply_swap(a, b),
                JournalEntry::Move {
                    atom,
                    from,
                    stamp_before,
                } => {
                    let here = self.site_of_atom[atom.index()];
                    let here_idx = self.lattice.index(here);
                    let from_idx = self.lattice.index(from);
                    self.atom_at_site[here_idx] = None;
                    self.mark_free(here_idx);
                    self.atom_at_site[from_idx] = Some(atom);
                    self.mark_occupied(from_idx);
                    self.relocate_atom_region(atom, here_idx, from_idx);
                    self.site_of_atom[atom.index()] = from;
                    self.occupancy_stamp = stamp_before;
                }
            }
        }
    }

    /// Occupied sites within `hood` of `center` (excluding `center`).
    pub fn occupied_within(&self, center: Site, hood: &Neighborhood) -> Vec<Site> {
        hood.around(center)
            .filter(|s| self.lattice.contains(*s) && !self.is_free(*s))
            .collect()
    }

    /// Free sites within `hood` of `center`.
    pub fn free_within(&self, center: Site, hood: &Neighborhood) -> Vec<Site> {
        hood.around(center)
            .filter(|s| self.lattice.contains(*s) && self.is_free(*s))
            .collect()
    }

    /// Side length (in sites) of the coarse regions the state's
    /// occupancy buckets are filed under.
    #[inline]
    pub fn region_side(&self) -> u32 {
        self.region_side
    }

    /// Region-grid dimensions `(regions_x, regions_y)`.
    #[inline]
    pub fn region_dims(&self) -> (u32, u32) {
        (self.regions_x, self.regions_y)
    }

    /// The atoms currently inside `region` (row-major region index), in
    /// unspecified order. Kept exact by every move and its undo; lets
    /// anchor scans walk outward by region ring instead of touching all
    /// atoms.
    #[inline]
    pub fn atoms_in_region(&self, region: usize) -> &[u32] {
        &self.atoms_by_region[region]
    }

    /// Dense indices of the free sites currently inside `region`
    /// (row-major region index), in unspecified order.
    #[inline]
    pub fn free_in_region(&self, region: usize) -> &[u32] {
        &self.free_by_region[region]
    }

    /// The nearest free site to `from` (Euclidean, ties by site order),
    /// excluding the sites in `excluded`. Returns `None` when the lattice
    /// has no free site outside `excluded`.
    ///
    /// Walks the per-region free buckets outward ring by ring from
    /// `from`'s region and stops at the first ring whose distance lower
    /// bound ([`na_arch::RegionGrid::ring_min_cells`]) strictly exceeds
    /// the best distance found — on a mega lattice a query touches a
    /// handful of regions instead of every free site. The minimum is
    /// taken under the same `(distance², site)` key the old full scans
    /// used, and the stop condition is strict (a ring is still scanned
    /// when its bound ties the incumbent), so the winner is identical.
    pub fn nearest_free_site(&self, from: Site, excluded: &[Site]) -> Option<Site> {
        let side = self.region_side;
        let cx = ((from.x.max(0) as u32) / side).min(self.regions_x - 1);
        let cy = ((from.y.max(0) as u32) / side).min(self.regions_y - 1);
        let max_k = (cx.max(self.regions_x - 1 - cx)).max(cy.max(self.regions_y - 1 - cy));
        let mut best: Option<(i64, Site)> = None;
        for k in 0..=max_k {
            if let Some((best_d2, _)) = best {
                let lb = i64::from(na_arch::RegionGrid::ring_min_cells(side, k));
                if lb * lb > best_d2 {
                    break;
                }
            }
            na_arch::RegionGrid::for_each_ring_region(
                self.regions_x,
                self.regions_y,
                cx,
                cy,
                k,
                &mut |rx, ry| {
                    let region = (ry * self.regions_x + rx) as usize;
                    for &idx in &self.free_by_region[region] {
                        let s = self.lattice.site(idx as usize);
                        if excluded.contains(&s) {
                            continue;
                        }
                        let key = (from.distance_sq(s), s);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                },
            );
        }
        best.map(|(_, s)| s)
    }

    /// Returns `true` if all listed qubits sit on sites that are pairwise
    /// within `r_int` — the gate executability condition.
    ///
    /// The `r²` bound is hoisted out of the pair loop
    /// ([`Site::within_threshold_sq`]), so each pair costs one exact
    /// integer compare — decision-identical to the per-pair
    /// [`Site::within`] float check it replaces.
    pub fn qubits_mutually_connected(&self, qubits: &[Qubit], r_int: f64) -> bool {
        let r_sq = Site::within_threshold_sq(r_int);
        for (i, &a) in qubits.iter().enumerate() {
            let sa = self.site_of_qubit(a);
            for &b in &qubits[i + 1..] {
                if sa.distance_sq(self.site_of_qubit(b)) > r_sq {
                    return false;
                }
            }
        }
        true
    }

    /// Validates the mutual-inverse and occupancy invariants.
    ///
    /// Intended for tests and debug assertions; the public mutators
    /// preserve these invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = vec![false; self.lattice.num_sites()];
        for (a, site) in self.site_of_atom.iter().enumerate() {
            if !self.lattice.contains(*site) {
                return Err(format!("atom {a} at out-of-bounds site {site}"));
            }
            let idx = self.lattice.index(*site);
            if seen[idx] {
                return Err(format!("two atoms share site {site}"));
            }
            seen[idx] = true;
            if self.atom_at_site[idx] != Some(AtomId(a as u32)) {
                return Err(format!("occupancy map out of sync at {site}"));
            }
        }
        let occupied = self.atom_at_site.iter().flatten().count();
        if occupied != self.num_atoms() {
            return Err(format!(
                "occupancy map lists {occupied} atoms, expected {}",
                self.num_atoms()
            ));
        }
        for (qi, atom) in self.atom_of_qubit.iter().enumerate() {
            if self.qubit_of_atom[atom.index()] != Some(Qubit(qi as u32)) {
                return Err(format!("qubit {qi} and atom {atom} maps out of sync"));
            }
        }
        if self.free_sites.len() != self.lattice.num_sites() - self.num_atoms() {
            return Err(format!(
                "free list holds {} sites, expected {}",
                self.free_sites.len(),
                self.lattice.num_sites() - self.num_atoms()
            ));
        }
        for (pos, &idx) in self.free_sites.iter().enumerate() {
            if self.atom_at_site[idx as usize].is_some() {
                return Err(format!("free list entry {idx} is occupied"));
            }
            if self.free_pos[idx as usize] != pos as u32 {
                return Err(format!("free list position of site {idx} out of sync"));
            }
        }
        let bucketed_free: usize = self.free_by_region.iter().map(Vec::len).sum();
        if bucketed_free != self.free_sites.len() {
            return Err(format!(
                "region free buckets hold {bucketed_free} sites, free list holds {}",
                self.free_sites.len()
            ));
        }
        for (region, bucket) in self.free_by_region.iter().enumerate() {
            for (slot, &idx) in bucket.iter().enumerate() {
                if self.region_of_site[idx as usize] as usize != region {
                    return Err(format!("site {idx} filed in wrong region {region}"));
                }
                if self.atom_at_site[idx as usize].is_some() {
                    return Err(format!("region free bucket entry {idx} is occupied"));
                }
                if self.free_slot[idx as usize] != slot as u32 {
                    return Err(format!("region free slot of site {idx} out of sync"));
                }
            }
        }
        let bucketed_atoms: usize = self.atoms_by_region.iter().map(Vec::len).sum();
        if bucketed_atoms != self.num_atoms() {
            return Err(format!(
                "region atom buckets hold {bucketed_atoms} atoms, expected {}",
                self.num_atoms()
            ));
        }
        for (region, bucket) in self.atoms_by_region.iter().enumerate() {
            for (slot, &a) in bucket.iter().enumerate() {
                let site_idx = self.lattice.index(self.site_of_atom[a as usize]);
                if self.region_of_site[site_idx] as usize != region {
                    return Err(format!("atom {a} filed in wrong region {region}"));
                }
                if self.atom_region_slot[a as usize] != slot as u32 {
                    return Err(format!("region slot of atom {a} out of sync"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_params() -> HardwareParams {
        HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(10)
            .build()
            .expect("valid")
    }

    fn state() -> MappingState {
        MappingState::identity(&small_params(), 6).expect("fits")
    }

    #[test]
    fn identity_layout_matches_paper() {
        let s = state();
        for i in 0..6u32 {
            assert_eq!(s.atom_of_qubit(Qubit(i)), AtomId(i));
            assert_eq!(s.site_of_atom(AtomId(i)), s.lattice().site(i as usize));
        }
        // Unassigned atoms park after the qubit-carrying ones.
        assert_eq!(s.qubit_of_atom(AtomId(7)), None);
        s.check_invariants().unwrap();
    }

    #[test]
    fn too_wide_circuit_rejected() {
        let err = MappingState::identity(&small_params(), 11).unwrap_err();
        assert!(matches!(err, MapError::CircuitTooWide { .. }));
    }

    #[test]
    fn zoned_lattice_state_places_on_trap_rows_only() {
        // 6x6 bounding box, bands of 2 rows + 1 lane: 24 traps.
        let p = HardwareParams::mixed()
            .to_builder()
            .lattice(6, 3.0)
            .num_atoms(10)
            .build()
            .expect("valid");
        let lattice = Lattice::zoned(6, 2, 1).expect("valid");
        let s = MappingState::on_lattice(&p, lattice, 6, InitialLayout::Identity).expect("fits");
        for a in 0..10 {
            let site = s.site_of_atom(AtomId(a));
            assert!(lattice.contains(site));
            assert!(lattice.is_trap_row(site.y));
        }
        s.check_invariants().unwrap();
        // Identity layout skips the lane row: atom 12 would sit on row 3,
        // and atoms 6..10 sit on row 1 (row 2 is a lane).
        assert_eq!(s.site_of_atom(AtomId(6)), Site::new(0, 1));
    }

    #[test]
    fn zoned_lattice_rejects_overfull_atom_count() {
        // 4x4 box zoned 1+1 → 8 traps < 10 atoms.
        let p = small_params();
        let lattice = Lattice::zoned(4, 1, 1).expect("valid");
        let err = MappingState::on_lattice(&p, lattice, 6, InitialLayout::Identity).unwrap_err();
        assert!(matches!(
            err,
            MapError::Arch(na_arch::ArchError::TooManyAtoms { sites: 8, .. })
        ));
    }

    #[test]
    fn exactly_full_lattice_rejected_before_capacity_math() {
        // 4x4 box zoned 1+1 → exactly 8 traps for 8 atoms. The `>=`
        // guard must reject this as TooManyAtoms *before* the
        // free-capacity subtraction `num_sites - num_atoms` runs (it
        // would be 0, not an underflow — but an exactly-full register
        // leaves shuttling nowhere to go, so it is a typed error, not a
        // degenerate success).
        let p = HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(8)
            .build()
            .expect("valid");
        let lattice = Lattice::zoned(4, 1, 1).expect("valid");
        let err = MappingState::on_lattice(&p, lattice, 4, InitialLayout::Identity).unwrap_err();
        assert!(matches!(
            err,
            MapError::Arch(na_arch::ArchError::TooManyAtoms { atoms: 8, sites: 8 })
        ));
    }

    #[test]
    fn oversubscribed_lattice_rejected_with_typed_error() {
        // 16 atoms on 8 traps: the same guard catches the `>` case, so
        // `Vec::with_capacity(num_sites - num_atoms)` can never see
        // `num_atoms > num_sites` (which would panic on underflow).
        let p = HardwareParams::mixed()
            .to_builder()
            .lattice(4, 3.0)
            .num_atoms(15)
            .build()
            .expect("valid");
        let lattice = Lattice::zoned(4, 1, 1).expect("valid");
        let err = MappingState::on_lattice(&p, lattice, 4, InitialLayout::Identity).unwrap_err();
        assert!(matches!(
            err,
            MapError::Arch(na_arch::ArchError::TooManyAtoms {
                atoms: 15,
                sites: 8
            })
        ));
    }

    #[test]
    fn swap_exchanges_qubits_not_sites() {
        let mut s = state();
        let (a, b) = (AtomId(0), AtomId(1));
        let (sa, sb) = (s.site_of_atom(a), s.site_of_atom(b));
        s.apply_swap(a, b);
        assert_eq!(s.site_of_atom(a), sa);
        assert_eq!(s.site_of_atom(b), sb);
        assert_eq!(s.qubit_of_atom(a), Some(Qubit(1)));
        assert_eq!(s.qubit_of_atom(b), Some(Qubit(0)));
        assert_eq!(s.atom_of_qubit(Qubit(0)), b);
        s.check_invariants().unwrap();
    }

    #[test]
    fn swap_with_unassigned_atom() {
        let mut s = state();
        s.apply_swap(AtomId(0), AtomId(9));
        assert_eq!(s.qubit_of_atom(AtomId(0)), None);
        assert_eq!(s.qubit_of_atom(AtomId(9)), Some(Qubit(0)));
        s.check_invariants().unwrap();
    }

    #[test]
    fn move_changes_site_not_qubit() {
        let mut s = state();
        let target = Site::new(3, 3); // free in the 4x4 lattice with 10 atoms
        assert!(s.is_free(target));
        s.apply_move(AtomId(2), target);
        assert_eq!(s.site_of_atom(AtomId(2)), target);
        assert_eq!(s.qubit_of_atom(AtomId(2)), Some(Qubit(2)));
        assert_eq!(s.atom_at_site(target), Some(AtomId(2)));
        s.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn move_to_occupied_site_panics() {
        let mut s = state();
        s.apply_move(AtomId(0), s.site_of_atom(AtomId(1)));
    }

    /// Example 4 of the paper: shuttling modifies connectivity without
    /// touching the qubit assignment.
    #[test]
    fn example4_shuttle_changes_connectivity() {
        let mut s = state();
        let q2 = Qubit(2);
        let q5 = Qubit(5);
        // q2 at (2,0), q5 at (1,1): distance √2 > r_int for r_int = 1.
        assert!(!s.qubits_mutually_connected(&[q2, q5], 1.0));
        s.apply_move(s.atom_of_qubit(q2), Site::new(2, 2));
        s.apply_move(s.atom_of_qubit(q5), Site::new(2, 3));
        assert!(s.qubits_mutually_connected(&[q2, q5], 1.0));
    }

    #[test]
    fn nearest_free_site_respects_exclusions() {
        let s = state();
        // Free sites: indices 10..16 => (2,2),(3,2),(0,3),(1,3),(2,3),(3,3)
        let from = Site::new(2, 1);
        let nearest = s.nearest_free_site(from, &[]).unwrap();
        assert_eq!(nearest, Site::new(2, 2));
        let second = s.nearest_free_site(from, &[nearest]).unwrap();
        assert_eq!(second, Site::new(3, 2));
    }

    #[test]
    fn ring_walk_nearest_free_matches_exhaustive_scan_on_mega_lattice() {
        // 40x40 lattice (5x5 regions at side 8), sparsely occupied: the
        // ring walk must return exactly what a full free-list scan
        // under the same (distance², site) key would.
        let p = HardwareParams::mixed()
            .to_builder()
            .lattice(40, 3.0)
            .num_atoms(700)
            .build()
            .expect("valid");
        let mut s = MappingState::identity(&p, 64).expect("fits");
        // Scatter some atoms so free sites are non-contiguous.
        for (a, target) in [
            (0u32, Site::new(39, 39)),
            (1, Site::new(20, 25)),
            (2, Site::new(0, 39)),
            (3, Site::new(33, 30)),
        ] {
            s.apply_move(AtomId(a), target);
        }
        s.check_invariants().unwrap();
        let excluded = [Site::new(0, 18), Site::new(1, 18)];
        for from in [
            Site::new(0, 0),
            Site::new(5, 17),
            Site::new(39, 0),
            Site::new(20, 20),
            Site::new(39, 39),
        ] {
            let reference = s
                .free_site_indices()
                .iter()
                .map(|&idx| s.lattice().site(idx as usize))
                .filter(|site| !excluded.contains(site))
                .min_by(|a, b| {
                    from.distance_sq(*a)
                        .cmp(&from.distance_sq(*b))
                        .then(a.cmp(b))
                });
            assert_eq!(s.nearest_free_site(from, &excluded), reference);
        }
    }

    #[test]
    fn region_buckets_track_moves_and_undo() {
        let p = HardwareParams::mixed()
            .to_builder()
            .lattice(20, 3.0)
            .num_atoms(30)
            .build()
            .expect("valid");
        let mut s = MappingState::identity(&p, 10).expect("fits");
        let reference = s.clone();
        assert_eq!(s.region_side(), na_arch::RegionGrid::DEFAULT_SIDE);
        assert_eq!(s.region_dims(), (3, 3));
        // All 30 atoms start in rows 0-1 => region 0 (x<8) and 1 (x in 8..16)
        // and 2 (x >= 16).
        assert_eq!(
            s.atoms_in_region(0).len() + s.atoms_in_region(1).len() + s.atoms_in_region(2).len(),
            30
        );
        let mut j = StateJournal::new();
        let mark = j.mark();
        // Cross-region move: (row 0) -> (18, 18) = region 8.
        s.apply_move_journaled(AtomId(0), Site::new(18, 18), &mut j);
        assert!(s.atoms_in_region(8).contains(&0));
        assert!(s
            .free_in_region(8)
            .iter()
            .all(|&idx| { s.lattice().site(idx as usize) != Site::new(18, 18) }));
        s.check_invariants().unwrap();
        s.undo_to(&mut j, mark);
        assert_eq!(s, reference);
        s.check_invariants().unwrap();
    }

    #[test]
    fn occupied_and_free_partition_vicinity() {
        let s = state();
        let hood = Neighborhood::new(2.0);
        let center = Site::new(1, 1);
        let occ = s.occupied_within(center, &hood);
        let free = s.free_within(center, &hood);
        let total = hood
            .around(center)
            .filter(|x| s.lattice().contains(*x))
            .count();
        assert_eq!(occ.len() + free.len(), total);
    }

    #[test]
    fn journaled_move_and_undo_restore_stamp_exactly() {
        let mut s = state();
        let stamp0 = s.occupancy_stamp();
        let mut j = StateJournal::new();
        let mark = j.mark();
        s.apply_move_journaled(AtomId(2), Site::new(3, 3), &mut j);
        assert_ne!(s.occupancy_stamp(), stamp0, "speculation must re-stamp");
        assert_eq!(j.len(), 1);
        s.undo_to(&mut j, mark);
        assert!(j.is_empty());
        assert_eq!(s.occupancy_stamp(), stamp0, "undo must restore the stamp");
        assert_eq!(s, state());
        s.check_invariants().unwrap();
    }

    #[test]
    fn journaled_swap_and_undo_are_involutive() {
        let mut s = state();
        let reference = state();
        let mut j = StateJournal::new();
        let mark = j.mark();
        s.apply_swap_journaled(AtomId(0), AtomId(5), &mut j);
        s.apply_swap_journaled(AtomId(5), AtomId(9), &mut j);
        assert_ne!(s, reference);
        s.undo_to(&mut j, mark);
        assert_eq!(s, reference);
        s.check_invariants().unwrap();
    }

    #[test]
    fn nested_marks_undo_partially() {
        let mut s = state();
        let mut j = StateJournal::new();
        let outer = j.mark();
        s.apply_move_journaled(AtomId(0), Site::new(3, 3), &mut j);
        let after_first = s.clone();
        let inner_stamp = s.occupancy_stamp();
        let inner = j.mark();
        s.apply_swap_journaled(AtomId(1), AtomId(2), &mut j);
        s.apply_move_journaled(AtomId(3), Site::new(2, 3), &mut j);
        s.undo_to(&mut j, inner);
        assert_eq!(s, after_first);
        assert_eq!(s.occupancy_stamp(), inner_stamp);
        s.undo_to(&mut j, outer);
        assert_eq!(s, state());
    }

    #[test]
    #[should_panic(expected = "beyond length")]
    fn stale_mark_panics() {
        let mut s = state();
        let mut j = StateJournal::new();
        s.apply_swap_journaled(AtomId(0), AtomId(1), &mut j);
        let late = j.mark();
        s.undo_to(&mut j, JournalMark(0));
        s.undo_to(&mut j, late);
    }

    proptest! {
        /// Apply → undo restores the state exactly — positions, qubit
        /// map, occupancy stamp, invariants — for arbitrary interleaved
        /// journaled swap/move sequences.
        #[test]
        fn journal_apply_undo_roundtrip(ops in proptest::collection::vec(
            (0u32..10, 0u32..10, 0i32..4, 0i32..4, proptest::bool::ANY), 0..60)
        ) {
            let mut s = state();
            let reference = s.clone();
            let stamp0 = s.occupancy_stamp();
            let mut j = StateJournal::new();
            let mark = j.mark();
            for (a, b, x, y, is_swap) in ops {
                if is_swap {
                    if a != b {
                        s.apply_swap_journaled(AtomId(a), AtomId(b), &mut j);
                    }
                } else {
                    let target = Site::new(x, y);
                    if s.is_free(target) {
                        s.apply_move_journaled(AtomId(a), target, &mut j);
                    }
                }
            }
            s.undo_to(&mut j, mark);
            prop_assert!(j.is_empty());
            prop_assert_eq!(&s, &reference);
            prop_assert_eq!(s.occupancy_stamp(), stamp0);
            prop_assert!(s.check_invariants().is_ok());
        }

        /// Random swap/move sequences preserve all invariants.
        #[test]
        fn invariants_under_random_ops(ops in proptest::collection::vec(
            (0u32..10, 0u32..10, 0i32..4, 0i32..4, proptest::bool::ANY), 0..60)
        ) {
            let mut s = state();
            for (a, b, x, y, is_swap) in ops {
                if is_swap {
                    if a != b {
                        s.apply_swap(AtomId(a), AtomId(b));
                    }
                } else {
                    let target = Site::new(x, y);
                    if s.is_free(target) {
                        s.apply_move(AtomId(a), target);
                    }
                }
                prop_assert!(s.check_invariants().is_ok());
            }
        }
    }
}
