//! Capability decision: estimating, per gate, whether SWAP insertion or
//! shuttling preserves more success probability (paper §3.2 (2)).
//!
//! For every frontier gate the decider estimates the routing overhead of
//! both capabilities and converts it into the approximate success
//! probability of Eq. (1):
//!
//! * **gate-based**: `n_swap` SWAPs, each costing the decomposed SWAP
//!   fidelity `F_CZ³·F_1q⁶` and `t_swap` of idle time for every spectator
//!   atom,
//! * **shuttling-based**: `n_move` shuttles, each costing `F_shuttle` and
//!   its transaction time (`t_act + s/v + t_deact`) of spectator idle
//!   time.
//!
//! The spectator-idle coupling is what makes slow shuttles expensive on
//! large circuits even when `F_shuttle ≈ 1`, producing the crossovers of
//! the paper's mixed hardware row. Working in log-space keeps the
//! comparison `α_g·P_g ≥ α_s·P_s` exact for long circuits.

use na_arch::{HardwareParams, Site};
use na_circuit::Qubit;

use crate::config::MapperConfig;
use crate::route::distance::swap_count_estimate;
use crate::route::CostModel;
use crate::state::MappingState;

/// Which capability routes a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capability {
    /// Route by SWAP insertion.
    GateBased,
    /// Route by atom shuttling.
    Shuttling,
}

/// Estimates of the two routing options for one gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionEstimate {
    /// Estimated number of SWAPs.
    pub n_swaps: usize,
    /// Estimated number of shuttle moves.
    pub n_moves: usize,
    /// Log success probability of the gate-based route.
    pub log_p_gate: f64,
    /// Log success probability of the shuttling route.
    pub log_p_shuttle: f64,
}

/// The capability decider (step (2) of the mapping process). All
/// fidelity/timing terms come from the shared [`CostModel`].
#[derive(Debug, Clone)]
pub struct Decider {
    cost: CostModel,
    alpha_gate: f64,
    alpha_shuttle: f64,
}

impl Decider {
    /// Creates a decider for the given hardware and configuration.
    pub fn new(params: &HardwareParams, config: &MapperConfig) -> Self {
        Decider {
            cost: CostModel::new(params, config),
            alpha_gate: config.alpha_gate,
            alpha_shuttle: config.alpha_shuttle,
        }
    }

    /// Estimates both routing options for a gate on `qubits`.
    pub fn estimate(&self, state: &MappingState, qubits: &[Qubit]) -> DecisionEstimate {
        // Lookahead gates re-decide every routing round, so this runs
        // hot: resolve operand sites into a stack buffer (gates beyond
        // 8 operands fall back to the heap).
        let mut site_buf = [Site::new(0, 0); 8];
        let site_vec: Vec<Site>;
        let sites: &[Site] = if qubits.len() <= site_buf.len() {
            for (slot, &q) in site_buf.iter_mut().zip(qubits) {
                *slot = state.site_of_qubit(q);
            }
            &site_buf[..qubits.len()]
        } else {
            site_vec = qubits.iter().map(|&q| state.site_of_qubit(q)).collect();
            &site_vec
        };
        let spectators = (state.num_qubits().saturating_sub(qubits.len())) as f64;

        // Gate-based: sum of pairwise SWAP-count estimates towards the
        // gate centroid pair structure. For 2-qubit gates this is the
        // plain pair estimate; for CᵐZ we gather everyone at the qubit
        // minimizing the total.
        let r_int = self.cost.r_int;
        let n_swaps = if sites.len() == 2 {
            swap_count_estimate(sites[0], sites[1], r_int)
        } else {
            sites
                .iter()
                .map(|&center| {
                    sites
                        .iter()
                        .map(|&s| swap_count_estimate(s, center, r_int))
                        .sum::<usize>()
                })
                .min()
                .unwrap_or(0)
        };

        // Shuttling: every qubit outside the best center's vicinity moves
        // once; in a crowded region a fraction of moves needs a move-away
        // partner. We estimate distances to the chosen center.
        let r_sq = Site::within_threshold_sq(r_int);
        let (n_moves, move_dist_units) = sites
            .iter()
            .map(|&center| {
                let mut count = 0usize;
                let mut dist = 0.0f64;
                for &s in sites {
                    if s != center && s.distance_sq(center) > r_sq {
                        count += 1;
                        dist += s.rectilinear_distance(center);
                    }
                }
                (count, dist)
            })
            .min_by(|a, b| {
                (a.0, a.1)
                    .partial_cmp(&(b.0, b.1))
                    .expect("finite distances")
            })
            .unwrap_or((0, 0.0));

        let log_p_gate = self.cost.swap_log_success(n_swaps, spectators);
        let log_p_shuttle = self
            .cost
            .shuttle_log_success(n_moves, move_dist_units, spectators);

        DecisionEstimate {
            n_swaps,
            n_moves,
            log_p_gate,
            log_p_shuttle,
        }
    }

    /// Decides the capability for a gate: compares `α_g·P_g` with
    /// `α_s·P_s` in log-space. Single-capability modes short-circuit.
    pub fn decide(&self, state: &MappingState, qubits: &[Qubit]) -> Capability {
        if self.alpha_shuttle == 0.0 {
            return Capability::GateBased;
        }
        if self.alpha_gate == 0.0 {
            return Capability::Shuttling;
        }
        let est = self.estimate(state, qubits);
        let gate_score = self.alpha_gate.ln() + est.log_p_gate;
        let shuttle_score = self.alpha_shuttle.ln() + est.log_p_shuttle;
        if gate_score >= shuttle_score {
            Capability::GateBased
        } else {
            Capability::Shuttling
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(params: &HardwareParams, qubits: u32) -> MappingState {
        MappingState::identity(params, qubits).expect("fits")
    }

    fn scaled(preset: HardwareParams) -> HardwareParams {
        preset
            .to_builder()
            .lattice(8, 3.0)
            .num_atoms(60)
            .build()
            .expect("valid")
    }

    #[test]
    fn executable_gate_costs_nothing() {
        let p = scaled(HardwareParams::mixed());
        let s = state_with(&p, 60);
        let d = Decider::new(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        let est = d.estimate(&s, &[Qubit(0), Qubit(1)]);
        assert_eq!(est.n_swaps, 0);
        assert_eq!(est.n_moves, 0);
        assert_eq!(est.log_p_gate, 0.0);
        assert_eq!(est.log_p_shuttle, 0.0);
    }

    #[test]
    fn gate_hardware_prefers_swaps() {
        let p = scaled(HardwareParams::gate_based());
        let s = state_with(&p, 60);
        let d = Decider::new(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        // A distant pair on the gate-optimized preset.
        assert_eq!(d.decide(&s, &[Qubit(0), Qubit(59)]), Capability::GateBased);
    }

    #[test]
    fn shuttling_hardware_prefers_moves() {
        let p = scaled(HardwareParams::shuttling());
        let s = state_with(&p, 60);
        let d = Decider::new(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        assert_eq!(d.decide(&s, &[Qubit(0), Qubit(59)]), Capability::Shuttling);
    }

    #[test]
    fn forced_modes_short_circuit() {
        let p = scaled(HardwareParams::mixed());
        let s = state_with(&p, 60);
        let gate_only = Decider::new(&p, &MapperConfig::gate_only());
        assert_eq!(
            gate_only.decide(&s, &[Qubit(0), Qubit(59)]),
            Capability::GateBased
        );
        let shuttle_only = Decider::new(&p, &MapperConfig::shuttle_only());
        assert_eq!(
            shuttle_only.decide(&s, &[Qubit(0), Qubit(59)]),
            Capability::Shuttling
        );
    }

    #[test]
    fn alpha_ratio_biases_the_decision() {
        let p = scaled(HardwareParams::mixed());
        let s = state_with(&p, 60);
        let d = Decider::new(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        let pair = [Qubit(0), Qubit(59)];
        let est = d.estimate(&s, &pair);
        // Pick an alpha ratio that flips whichever side is losing.
        let gap = est.log_p_shuttle - est.log_p_gate;
        assert!(gap.abs() > 0.0, "estimates should differ for a far pair");
        let flip = (gap.abs() * 2.0).exp();
        let biased = if gap > 0.0 {
            // Shuttling wins at alpha = 1; bias towards gates.
            MapperConfig::try_hybrid(flip).expect("valid alpha")
        } else {
            MapperConfig::try_hybrid(1.0 / flip).expect("valid alpha")
        };
        let d2 = Decider::new(&p, &biased);
        let base = d.decide(&s, &pair);
        let flipped = d2.decide(&s, &pair);
        assert_ne!(base, flipped);
    }

    #[test]
    fn estimates_scale_with_distance() {
        let p = scaled(HardwareParams::mixed());
        let s = state_with(&p, 60);
        let d = Decider::new(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        let near = d.estimate(&s, &[Qubit(0), Qubit(8)]);
        let far = d.estimate(&s, &[Qubit(0), Qubit(59)]);
        assert!(far.n_swaps >= near.n_swaps);
        assert!(far.log_p_gate <= near.log_p_gate);
    }

    #[test]
    fn multiqubit_estimate_counts_outlying_qubits() {
        let p = scaled(HardwareParams::mixed());
        let s = state_with(&p, 60);
        let d = Decider::new(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        // q0 (0,0), q1 (1,0) adjacent; q59 far away: one move expected.
        let est = d.estimate(&s, &[Qubit(0), Qubit(1), Qubit(59)]);
        assert_eq!(est.n_moves, 1);
        assert!(est.n_swaps >= 1);
    }
}
