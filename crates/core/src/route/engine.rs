//! The routing engine: registered routers, the shared comparator, and
//! candidate application.
//!
//! One routing round ([`RoutingEngine::step`]) is: build a
//! [`RoutingContext`] over the caller's [`RouteScratch`] arena, let each
//! registered [`Router`] propose candidates for its frontier slice, rank
//! everything through the [`Candidate::improves_on`] comparator, apply
//! the winner's operations, and notify the proposing router.
//!
//! Router priority (registration order) maps to the candidate `tier`.
//! Because the comparator is tier-dominant, lower tiers cannot win while
//! a higher tier produced any candidate — so the engine skips evaluating
//! them entirely (the paper's §3.2 (4): shuttling only acts once the
//! gate-based frontier is exhausted). A tier that *has* gates but yields
//! no candidate passes its gates down to the next tier for this round
//! (starvation fallback), and gates a router permanently refuses
//! ([`super::Proposal::handoff`]) are reported back so the mapper can
//! persist the reassignment.

use na_arch::{HardwareParams, Lattice, NeighborTable, Neighborhood};

use crate::config::MapperConfig;
use crate::decision::Capability;
use crate::ops::MappedOp;
use crate::route::{
    Candidate, FrontierGate, GateRouter, RouteScratch, Router, RoutingContext, RoutingOp,
    ShuttleRouter,
};
use crate::sink::OpSink;
use crate::state::MappingState;

/// What one routing round did: operation counts plus capability
/// reassignments to persist.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// SWAPs applied this round.
    pub swaps: usize,
    /// Shuttle moves applied this round.
    pub moves: usize,
    /// `(op_index, new_capability)` pairs for gates permanently handed
    /// to another router (e.g. multi-qubit gates without a geometric
    /// position, paper §3.2 (3)).
    pub reassigned: Vec<(usize, Capability)>,
    /// Candidates committed this round: always `1` for
    /// [`RoutingEngine::step`], `>= 1` for a successful
    /// [`RoutingEngine::step_speculative`] round.
    pub commits: usize,
}

/// The unified routing engine owning the registered routers.
///
/// The distance cache and every reusable buffer live in the
/// [`RouteScratch`] arena the *caller* owns and threads through
/// [`RoutingEngine::step`] — so a caller that keeps one arena alive
/// across circuits (per-worker scratch in batch compilation) reuses
/// warm buffers, while the engine itself stays cheap to construct per
/// circuit (routers carry per-run recency state).
#[derive(Debug)]
pub struct RoutingEngine {
    routers: Vec<Box<dyn Router>>,
    hood_int: Neighborhood,
    /// CSR adjacency of the lattice the engine routes on at `r_int`,
    /// rebuilt lazily when a step arrives for a different lattice
    /// (engines built via [`RoutingEngine::for_lattice`] resolve it
    /// eagerly).
    table_int: NeighborTable,
    r_int: f64,
}

impl RoutingEngine {
    /// Registers the paper's two routers according to the configured
    /// capability weights: gate-based (tier 0) when `α_g > 0`, shuttling
    /// (tier 1) when `α_s > 0`. A config with both weights zero (only
    /// constructible by hand — the named constructors forbid it) gets
    /// the gate-based router, matching the decider's `GateBased`
    /// short-circuit for that degenerate case.
    ///
    /// Assumes the full square lattice of `params`; use
    /// [`RoutingEngine::for_lattice`] for other topologies.
    pub fn from_config(params: &HardwareParams, config: &MapperConfig) -> Self {
        RoutingEngine::for_lattice(params, config, &Lattice::new(params.lattice_side))
    }

    /// [`RoutingEngine::from_config`] on an explicit trap topology —
    /// the CSR interaction adjacency is resolved once here, so routing
    /// rounds never pay geometry math per neighbor visit.
    pub fn for_lattice(params: &HardwareParams, config: &MapperConfig, lattice: &Lattice) -> Self {
        let hood = Neighborhood::new(params.r_int);
        let table = NeighborTable::build(lattice, &hood);
        RoutingEngine::with_table(params, config, table)
    }

    /// [`RoutingEngine::for_lattice`] consuming an already-resolved CSR
    /// table (e.g. the one a [`na_arch::TargetSpec`] carries), so
    /// callers that hold one never pay the rebuild.
    pub fn with_table(
        params: &HardwareParams,
        config: &MapperConfig,
        table: NeighborTable,
    ) -> Self {
        let mut routers: Vec<Box<dyn Router>> = Vec::new();
        if config.alpha_gate > 0.0 || config.alpha_shuttle <= 0.0 {
            routers.push(Box::new(GateRouter::new(params, config)));
        }
        if config.alpha_shuttle > 0.0 {
            routers.push(Box::new(ShuttleRouter::new(params, config)));
        }
        RoutingEngine {
            routers,
            hood_int: Neighborhood::new(params.r_int),
            table_int: table,
            r_int: params.r_int,
        }
    }

    /// Builds an engine over an explicit router list (priority order =
    /// tier order). This is the extension point for additional
    /// strategies: implement [`Router`] and register it here. Assumes
    /// the full square lattice of `params`.
    pub fn with_routers(params: &HardwareParams, routers: Vec<Box<dyn Router>>) -> Self {
        RoutingEngine::with_routers_on(params, routers, &Lattice::new(params.lattice_side))
    }

    /// [`RoutingEngine::with_routers`] on an explicit trap topology.
    pub fn with_routers_on(
        params: &HardwareParams,
        routers: Vec<Box<dyn Router>>,
        lattice: &Lattice,
    ) -> Self {
        let hood_int = Neighborhood::new(params.r_int);
        let table_int = NeighborTable::build(lattice, &hood_int);
        RoutingEngine {
            routers,
            hood_int,
            table_int,
            r_int: params.r_int,
        }
    }

    /// The registered routers, in tier order.
    pub fn routers(&self) -> &[Box<dyn Router>] {
        &self.routers
    }

    /// Rebuilds the CSR table when `state` routes on a different
    /// lattice than the engine was constructed for.
    fn ensure_table(&mut self, state: &MappingState) {
        if !self.table_int.matches(state.lattice(), self.r_int) {
            self.table_int = NeighborTable::build(state.lattice(), &self.hood_int);
        }
    }

    /// A routing context over `state` using the engine's geometry and
    /// the caller's scratch arena.
    pub fn context<'a>(
        &'a mut self,
        state: &'a mut MappingState,
        scratch: &'a mut RouteScratch,
    ) -> RoutingContext<'a> {
        self.ensure_table(state);
        RoutingContext::new(state, &self.hood_int, &self.table_int, self.r_int, scratch)
    }

    /// The capability gates fall back to when their assigned router
    /// cannot serve them: the lowest-priority router's capability, if
    /// the engine has more than one router.
    pub fn fallback_capability(&self) -> Option<Capability> {
        if self.routers.len() > 1 {
            self.routers.last().map(|r| r.capability())
        } else {
            None
        }
    }

    /// Runs one routing round: propose, rank, apply the winning
    /// candidate's operations to `state` and stream them into `out`.
    ///
    /// `out` is any [`OpSink`] — a collecting [`MappedCircuit`] for the
    /// classic two-pass flow, or a fused consumer such as an incremental
    /// scheduler. `scratch` is the caller-owned arena the routers borrow
    /// for journaled candidate simulation and their dense per-round
    /// tables.
    ///
    /// Returns `Err(op_index)` of the first unroutable gate when no
    /// router produced a candidate.
    ///
    /// [`MappedCircuit`]: crate::ops::MappedCircuit
    pub fn step(
        &mut self,
        state: &mut MappingState,
        frontier: &[FrontierGate],
        lookahead: &[FrontierGate],
        scratch: &mut RouteScratch,
        out: &mut dyn OpSink,
    ) -> Result<StepReport, usize> {
        let mut report = StepReport::default();
        self.ensure_table(state);
        let (winner, tier) = {
            let mut ctx =
                RoutingContext::new(state, &self.hood_int, &self.table_int, self.r_int, scratch);
            Self::best_candidate(&self.routers, &mut ctx, frontier, lookahead, &mut report)?
        };
        self.apply(&winner, tier, state, out, &mut report);
        report.commits = 1;
        Ok(report)
    }

    /// Runs one speculative multi-commit round: batch-evaluate one best
    /// candidate per serviceable *commit-eligible* gate of the winning
    /// tier, mint each candidate's conflict set by journaled
    /// apply/undo, then greedily commit a maximal non-conflicting
    /// subset in deterministic `(cost, proposal order)` order.
    ///
    /// `eligible` is the sorted `op_index` list of commit-eligible gates
    /// (the first qubit-disjoint group of the frontier,
    /// [`na_circuit::dag::LayerTracker::front_disjoint_groups`]). The
    /// evaluation sweep is restricted to those gates — the rest of a
    /// wide front could never commit this round, so scoring it is
    /// wasted work — and falls back to the full frontier whenever the
    /// restricted sweep starves, so a speculative round is never weaker
    /// than [`RoutingEngine::step`] at making progress or reporting a
    /// stuck gate. The best evaluated candidate always commits
    /// regardless of eligibility (progress guarantee).
    /// `eval_threads > 1` mints conflict sets on scoped worker threads
    /// over cloned states; results are identical for any thread count.
    ///
    /// Committed candidates have pairwise-disjoint conflict sets
    /// (touched atoms + claimed/freed sites), so an earlier commit can
    /// neither move a later winner's atoms nor occupy its target sites:
    /// every committed candidate is exactly as valid as when it was
    /// simulated against the pre-round state.
    ///
    /// Returns `Err(op_index)` of the first unroutable gate when no
    /// router produced a candidate.
    #[allow(clippy::too_many_arguments)]
    pub fn step_speculative(
        &mut self,
        state: &mut MappingState,
        frontier: &[FrontierGate],
        lookahead: &[FrontierGate],
        eligible: &[usize],
        eval_threads: usize,
        scratch: &mut RouteScratch,
        out: &mut dyn OpSink,
    ) -> Result<StepReport, usize> {
        let mut report = StepReport::default();
        self.ensure_table(state);

        // Phase 1 — batched proposal over the commit-eligible frontier:
        // one best candidate per serviceable gate of the winning tier.
        // Gates outside `eligible` could never commit this round, and on
        // wide circuits the front dwarfs its first qubit-disjoint group
        // — evaluating them would be almost entirely wasted work — so
        // the sweep sees only eligible gates. If that restricted sweep
        // starves (or `eligible` names no frontier gate), re-sweep the
        // full frontier: a speculative round is never weaker than
        // [`RoutingEngine::step`] at making progress or detecting a
        // stuck gate.
        let mut cands = std::mem::take(&mut scratch.spec.candidates);
        cands.clear();
        let restricted: Vec<&FrontierGate> = frontier
            .iter()
            .filter(|g| eligible.binary_search(&g.op_index).is_ok())
            .collect();
        let mut tier = None;
        if !restricted.is_empty() {
            let mut ctx =
                RoutingContext::new(state, &self.hood_int, &self.table_int, self.r_int, scratch);
            match Self::collect_tier_candidates(
                &self.routers,
                &mut ctx,
                &restricted,
                lookahead,
                &mut report,
                &mut cands,
            ) {
                Ok(t) => tier = Some(t),
                Err(stuck) => {
                    if restricted.len() == frontier.len() {
                        scratch.spec.candidates = cands;
                        return Err(stuck);
                    }
                }
            }
        }
        let tier = match tier {
            Some(t) => t,
            None => {
                cands.clear();
                let full: Vec<&FrontierGate> = frontier.iter().collect();
                let mut ctx = RoutingContext::new(
                    state,
                    &self.hood_int,
                    &self.table_int,
                    self.r_int,
                    scratch,
                );
                match Self::collect_tier_candidates(
                    &self.routers,
                    &mut ctx,
                    &full,
                    lookahead,
                    &mut report,
                    &mut cands,
                ) {
                    Ok(t) => t,
                    Err(stuck) => {
                        scratch.spec.candidates = cands;
                        return Err(stuck);
                    }
                }
            }
        };

        // Phase 2 — conflict-set minting: journal-apply each candidate
        // against the pre-round state (validating it) and record the
        // atoms and dense site indices it touches, then roll back.
        let mut atoms = std::mem::take(&mut scratch.spec.conflict_atoms);
        let mut sites = std::mem::take(&mut scratch.spec.conflict_sites);
        let mut ranges = std::mem::take(&mut scratch.spec.ranges);
        atoms.clear();
        sites.clear();
        ranges.clear();
        let threads = eval_threads.max(1).min(cands.len().max(1));
        if threads > 1 {
            // Scoped workers over deterministic contiguous chunks, each
            // owning a cloned state (fresh stamp — workers never touch
            // the distance cache) and its own journal; merging in
            // candidate order makes results thread-count independent
            // because minting is a pure function of (pre-round state,
            // candidate).
            let chunk = cands.len().div_ceil(threads);
            let state_ref: &MappingState = state;
            // (touched atoms, touched sites, per-candidate [a0,a1,s0,s1])
            type MintedChunk = (Vec<u32>, Vec<u32>, Vec<[u32; 4]>);
            let parts: Vec<MintedChunk> = std::thread::scope(|scope| {
                let handles: Vec<_> = cands
                    .chunks(chunk)
                    .map(|chunk_cands| {
                        scope.spawn(move || {
                            let mut local = state_ref.clone();
                            let mut journal = crate::state::StateJournal::new();
                            let (mut a, mut s, mut r) = (Vec::new(), Vec::new(), Vec::new());
                            for cand in chunk_cands {
                                let (a0, s0) = (a.len() as u32, s.len() as u32);
                                mint_conflict_set(&mut local, &mut journal, cand, &mut a, &mut s);
                                r.push([a0, a.len() as u32, s0, s.len() as u32]);
                            }
                            (a, s, r)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("minting worker panicked"))
                    .collect()
            });
            for (a, s, r) in parts {
                let (ab, sb) = (atoms.len() as u32, sites.len() as u32);
                for [a0, a1, s0, s1] in r {
                    ranges.push([a0 + ab, a1 + ab, s0 + sb, s1 + sb]);
                }
                atoms.extend_from_slice(&a);
                sites.extend_from_slice(&s);
            }
        } else {
            for cand in &cands {
                let (a0, s0) = (atoms.len() as u32, sites.len() as u32);
                mint_conflict_set(state, &mut scratch.journal, cand, &mut atoms, &mut sites);
                ranges.push([a0, atoms.len() as u32, s0, sites.len() as u32]);
            }
            debug_assert!(
                scratch.journal.is_empty(),
                "conflict minting must roll back"
            );
        }

        // Phase 3 — deterministic greedy commit: rank by (cost, proposal
        // order), commit every candidate whose conflict set is disjoint
        // from all earlier commits. The best candidate commits
        // unconditionally; later ones must also be commit-eligible
        // (qubit-disjoint front group) so one round never services two
        // gates that share a qubit.
        let mut order = std::mem::take(&mut scratch.spec.order);
        order.clear();
        order.extend(0..cands.len() as u32);
        order.sort_unstable_by(|&i, &j| {
            let (a, b) = (&cands[i as usize], &cands[j as usize]);
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(i.cmp(&j))
        });
        scratch
            .spec
            .ensure(state.num_atoms(), state.lattice().num_sites());
        scratch.spec.round_gen += 1;
        let round_gen = scratch.spec.round_gen;
        for &i in &order {
            let cand = &cands[i as usize];
            if report.commits > 0 && eligible.binary_search(&cand.op_index).is_err() {
                continue;
            }
            let [a0, a1, s0, s1] = ranges[i as usize];
            let cand_atoms = &atoms[a0 as usize..a1 as usize];
            let cand_sites = &sites[s0 as usize..s1 as usize];
            let disjoint = report.commits == 0
                || (cand_atoms
                    .iter()
                    .all(|&a| scratch.spec.atom_mark[a as usize] != round_gen)
                    && cand_sites
                        .iter()
                        .all(|&s| scratch.spec.site_mark[s as usize] != round_gen));
            if !disjoint {
                continue;
            }
            for &a in cand_atoms {
                scratch.spec.atom_mark[a as usize] = round_gen;
            }
            for &s in cand_sites {
                scratch.spec.site_mark[s as usize] = round_gen;
            }
            self.apply(&cands[i as usize], tier, state, out, &mut report);
            report.commits += 1;
        }

        scratch.spec.candidates = cands;
        scratch.spec.order = order;
        scratch.spec.conflict_atoms = atoms;
        scratch.spec.conflict_sites = sites;
        scratch.spec.ranges = ranges;
        Ok(report)
    }

    /// [`RoutingEngine::best_candidate`]'s batched sibling: walks tiers
    /// with the same starvation/handoff flow, but collects the *entire*
    /// candidate list of the first tier that yields any (via
    /// [`Router::propose_batch`]) instead of reducing to one winner.
    /// Returns the winning tier; `Err(op_index)` when every tier
    /// starves.
    fn collect_tier_candidates(
        routers: &[Box<dyn Router>],
        ctx: &mut RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[FrontierGate],
        report: &mut StepReport,
        out_cands: &mut Vec<Candidate>,
    ) -> Result<usize, usize> {
        let mut carried: Vec<&FrontierGate> = Vec::new();
        let mut first_pending: Option<usize> = None;

        for (tier, router) in routers.iter().enumerate() {
            let cap = router.capability();
            let mut gates: Vec<&FrontierGate> = frontier
                .iter()
                .copied()
                .filter(|g| g.capability == cap)
                .collect();
            gates.append(&mut carried);
            if gates.is_empty() {
                continue;
            }
            first_pending.get_or_insert(gates[0].op_index);

            let la: Vec<&FrontierGate> = lookahead.iter().filter(|g| g.capability == cap).collect();
            let has_next = tier + 1 < routers.len();
            let proposal = router.propose_batch(ctx, &gates, &la, has_next);
            debug_assert!(
                !ctx.speculation_in_flight(),
                "router returned with un-rolled-back speculation"
            );

            if has_next && !proposal.handoff.is_empty() {
                let next_cap = routers[tier + 1].capability();
                for &op_index in &proposal.handoff {
                    report.reassigned.push((op_index, next_cap));
                    if let Some(pos) = gates.iter().position(|g| g.op_index == op_index) {
                        carried.push(gates.remove(pos));
                    }
                }
            }

            if !proposal.candidates.is_empty() {
                out_cands.extend(proposal.candidates.into_iter().map(|mut cand| {
                    cand.tier = tier as u8;
                    cand
                }));
                return Ok(tier);
            }
            carried.append(&mut gates);
        }

        Err(carried
            .first()
            .map(|g| g.op_index)
            .or(first_pending)
            .unwrap_or(0))
    }

    /// Propose-and-rank without applying. Fills `report.reassigned`.
    fn best_candidate(
        routers: &[Box<dyn Router>],
        ctx: &mut RoutingContext<'_>,
        frontier: &[FrontierGate],
        lookahead: &[FrontierGate],
        report: &mut StepReport,
    ) -> Result<(Candidate, usize), usize> {
        // Gates flowing down from starved or refusing higher tiers
        // (borrows only — the hot loop copies no gate data; a carried
        // gate's stale `capability` field is irrelevant because routers
        // serve whatever the engine hands them).
        let mut carried: Vec<&FrontierGate> = Vec::new();
        let mut first_pending: Option<usize> = None;

        for (tier, router) in routers.iter().enumerate() {
            let cap = router.capability();
            let mut gates: Vec<&FrontierGate> =
                frontier.iter().filter(|g| g.capability == cap).collect();
            gates.append(&mut carried);
            if gates.is_empty() {
                continue;
            }
            first_pending.get_or_insert(gates[0].op_index);

            let la: Vec<&FrontierGate> = lookahead.iter().filter(|g| g.capability == cap).collect();
            let has_next = tier + 1 < routers.len();
            let proposal = router.propose(ctx, &gates, &la, has_next);
            debug_assert!(
                !ctx.speculation_in_flight(),
                "router returned with un-rolled-back speculation"
            );

            if has_next && !proposal.handoff.is_empty() {
                let next_cap = routers[tier + 1].capability();
                for &op_index in &proposal.handoff {
                    report.reassigned.push((op_index, next_cap));
                    if let Some(pos) = gates.iter().position(|g| g.op_index == op_index) {
                        carried.push(gates.remove(pos));
                    }
                }
            }

            // Rank this tier's candidates through the shared comparator
            // (earlier-proposed candidates win ties). Tier dominance
            // makes evaluating lower tiers unnecessary once any
            // candidate exists here.
            let mut best: Option<Candidate> = None;
            for mut cand in proposal.candidates {
                cand.tier = tier as u8;
                if best.as_ref().is_none_or(|b| cand.improves_on(b)) {
                    best = Some(cand);
                }
            }
            if let Some(best) = best {
                return Ok((best, tier));
            }
            // Starved: every remaining gate of this tier flows down.
            carried.append(&mut gates);
        }

        Err(carried
            .first()
            .map(|g| g.op_index)
            .or(first_pending)
            .unwrap_or(0))
    }

    /// Applies a winning candidate: emits [`MappedOp`]s, mutates the
    /// state, and notifies the proposing router.
    fn apply(
        &mut self,
        candidate: &Candidate,
        tier: usize,
        state: &mut MappingState,
        out: &mut dyn OpSink,
        report: &mut StepReport,
    ) {
        for op in &candidate.ops {
            match *op {
                RoutingOp::Swap {
                    a,
                    b,
                    site_a,
                    site_b,
                } => {
                    out.accept(MappedOp::Swap {
                        a,
                        b,
                        site_a,
                        site_b,
                    });
                    state.apply_swap(a, b);
                    report.swaps += 1;
                }
                RoutingOp::Move { atom, from, to } => {
                    out.accept(MappedOp::Shuttle { atom, from, to });
                    state.apply_move(atom, to);
                    report.moves += 1;
                }
            }
        }
        self.routers[tier].note_applied(state, candidate);
    }
}

/// Journal-applies `cand`'s operations on `state` — validating the
/// candidate's sequential consistency against that state — while
/// recording its conflict set (every touched atom id and every dense
/// site index it frees or claims), then rolls everything back.
fn mint_conflict_set(
    state: &mut MappingState,
    journal: &mut crate::state::StateJournal,
    cand: &Candidate,
    atoms: &mut Vec<u32>,
    sites: &mut Vec<u32>,
) {
    let lattice = *state.lattice();
    let mark = journal.mark();
    for op in &cand.ops {
        match *op {
            RoutingOp::Swap {
                a,
                b,
                site_a,
                site_b,
            } => {
                debug_assert_eq!(state.site_of_atom(a), site_a);
                debug_assert_eq!(state.site_of_atom(b), site_b);
                state.apply_swap_journaled(a, b, journal);
                atoms.push(a.0);
                atoms.push(b.0);
                sites.push(lattice.index(site_a) as u32);
                sites.push(lattice.index(site_b) as u32);
            }
            RoutingOp::Move { atom, from, to } => {
                debug_assert_eq!(state.site_of_atom(atom), from);
                state.apply_move_journaled(atom, to, journal);
                atoms.push(atom.0);
                sites.push(lattice.index(from) as u32);
                sites.push(lattice.index(to) as u32);
            }
        }
    }
    state.undo_to(journal, mark);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MappedCircuit;
    use na_circuit::Qubit;

    fn params(side: u32, atoms: u32, r: f64) -> HardwareParams {
        HardwareParams::mixed()
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .radius(r)
            .build()
            .expect("valid")
    }

    fn gate(op_index: usize, qubits: &[u32], capability: Capability) -> FrontierGate {
        FrontierGate {
            op_index,
            qubits: qubits.iter().map(|&q| Qubit(q)).collect(),
            capability,
        }
    }

    #[test]
    fn from_config_registers_by_alphas() {
        let p = params(5, 20, 1.0);
        assert_eq!(
            RoutingEngine::from_config(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"))
                .routers()
                .len(),
            2
        );
        let gate_only = RoutingEngine::from_config(&p, &MapperConfig::gate_only());
        assert_eq!(gate_only.routers().len(), 1);
        assert_eq!(gate_only.fallback_capability(), None);
        let hybrid =
            RoutingEngine::from_config(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        assert_eq!(hybrid.fallback_capability(), Some(Capability::Shuttling));
    }

    #[test]
    fn degenerate_zero_alpha_config_still_routes() {
        // Both weights zero is only constructible by hand; the decider
        // short-circuits to GateBased, so the engine must register the
        // gate router rather than end up empty.
        let p = params(5, 24, 1.0);
        let config = MapperConfig {
            alpha_gate: 0.0,
            alpha_shuttle: 0.0,
            ..MapperConfig::default()
        };
        let mut engine = RoutingEngine::from_config(&p, &config);
        assert_eq!(engine.routers().len(), 1);
        let mut state = MappingState::identity(&p, 24).expect("fits");
        let frontier = [gate(0, &[0, 12], Capability::GateBased)];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(24, 24);
        let report = engine
            .step(&mut state, &frontier, &[], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(report.swaps, 1);
    }

    #[test]
    fn gate_tier_wins_while_it_has_candidates() {
        let p = params(5, 24, 1.0);
        let mut state = MappingState::identity(&p, 24).expect("fits");
        let mut engine =
            RoutingEngine::from_config(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        let frontier = [
            gate(0, &[0, 12], Capability::GateBased),
            gate(1, &[3, 20], Capability::Shuttling),
        ];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(24, 24);
        let report = engine
            .step(&mut state, &frontier, &[], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(report.swaps, 1, "tier 0 must act first");
        assert_eq!(report.moves, 0);
    }

    #[test]
    fn shuttle_tier_acts_when_gate_frontier_empty() {
        let p = params(5, 20, 1.0);
        let mut state = MappingState::identity(&p, 20).expect("fits");
        let mut engine =
            RoutingEngine::from_config(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        let frontier = [gate(0, &[0, 19], Capability::Shuttling)];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(20, 20);
        let report = engine
            .step(&mut state, &frontier, &[], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(report.swaps, 0);
        assert!(report.moves >= 1);
        assert_eq!(out.shuttle_count(), report.moves);
    }

    /// Isolates the first two atoms (no occupied interaction neighbour),
    /// so the gate-based router has no SWAP candidate at all.
    fn isolated_pair_state(p: &HardwareParams) -> MappingState {
        let mut state = MappingState::identity(p, 4).expect("fits");
        state.apply_move(crate::ops::AtomId(0), na_arch::Site::new(6, 6));
        state.apply_move(crate::ops::AtomId(1), na_arch::Site::new(4, 3));
        state
    }

    #[test]
    fn starved_gate_tier_falls_through_to_shuttling() {
        // Both gate atoms are isolated: no SWAP partner exists, so the
        // gate-based tier starves and shuttling takes over.
        let p = params(7, 4, 1.0);
        let mut state = isolated_pair_state(&p);
        let mut engine =
            RoutingEngine::from_config(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        let frontier = [gate(0, &[0, 1], Capability::GateBased)];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(4, 4);
        let report = engine
            .step(&mut state, &frontier, &[], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(report.swaps, 0);
        assert!(report.moves >= 1, "shuttle fallback must route the gate");
    }

    #[test]
    fn single_router_engine_reports_stuck_gate() {
        let p = params(7, 4, 1.0);
        let mut state = isolated_pair_state(&p);
        let mut engine = RoutingEngine::from_config(&p, &MapperConfig::gate_only());
        let frontier = [gate(9, &[0, 1], Capability::GateBased)];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(4, 4);
        let err = engine
            .step(&mut state, &frontier, &[], &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, 9);
    }

    #[test]
    fn speculative_round_multi_commits_disjoint_gates() {
        // Two far-apart gates touching disjoint atoms: one speculative
        // round must service both (conflict sets cannot overlap).
        let p = params(8, 40, 1.0);
        let mut state = MappingState::identity(&p, 40).expect("fits");
        let mut engine = RoutingEngine::from_config(&p, &MapperConfig::gate_only());
        let frontier = [
            gate(0, &[0, 18], Capability::GateBased),
            gate(1, &[5, 30], Capability::GateBased),
        ];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(40, 40);
        let report = engine
            .step_speculative(
                &mut state,
                &frontier,
                &[],
                &[0, 1],
                1,
                &mut scratch,
                &mut out,
            )
            .unwrap();
        assert_eq!(report.commits, 2, "both disjoint gates must commit");
        assert_eq!(report.swaps, out.swap_count());
    }

    #[test]
    fn speculative_round_commits_best_even_without_eligible_set() {
        // Progress guarantee: the globally best candidate commits even
        // when the eligible set is empty, so a speculative round is
        // never weaker than a single round.
        let p = params(5, 24, 1.0);
        let mut state = MappingState::identity(&p, 24).expect("fits");
        let mut engine = RoutingEngine::from_config(&p, &MapperConfig::gate_only());
        let frontier = [gate(0, &[0, 12], Capability::GateBased)];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(24, 24);
        let report = engine
            .step_speculative(&mut state, &frontier, &[], &[], 1, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(report.commits, 1);
        assert_eq!(report.swaps, 1);
    }

    #[test]
    fn speculative_round_is_thread_count_independent() {
        let p = params(8, 40, 1.0);
        let frontier = [
            gate(0, &[0, 18], Capability::GateBased),
            gate(1, &[5, 30], Capability::GateBased),
            gate(2, &[9, 33], Capability::GateBased),
        ];
        let run = |threads: usize| {
            let mut state = MappingState::identity(&p, 40).expect("fits");
            let mut engine = RoutingEngine::from_config(&p, &MapperConfig::gate_only());
            let mut scratch = RouteScratch::new();
            let mut out = MappedCircuit::new(40, 40);
            let report = engine
                .step_speculative(
                    &mut state,
                    &frontier,
                    &[],
                    &[0, 1, 2],
                    threads,
                    &mut scratch,
                    &mut out,
                )
                .unwrap();
            (
                format!("{:?}", out.iter().collect::<Vec<_>>()),
                report.commits,
                state,
            )
        };
        let (ops1, commits1, state1) = run(1);
        for threads in [2, 4] {
            let (ops, commits, state) = run(threads);
            assert_eq!(ops, ops1, "{threads} threads diverged");
            assert_eq!(commits, commits1);
            assert_eq!(state, state1);
        }
    }

    #[test]
    fn speculative_round_reports_stuck_gate() {
        let p = params(7, 4, 1.0);
        let mut state = isolated_pair_state(&p);
        let mut engine = RoutingEngine::from_config(&p, &MapperConfig::gate_only());
        let frontier = [gate(9, &[0, 1], Capability::GateBased)];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(4, 4);
        let err = engine
            .step_speculative(&mut state, &frontier, &[], &[9], 1, &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, 9);
    }

    #[test]
    fn step_notifies_router_and_survives_repeats() {
        let p = params(5, 24, 1.0);
        let mut state = MappingState::identity(&p, 24).expect("fits");
        let mut engine =
            RoutingEngine::from_config(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        let frontier = [gate(0, &[0, 23], Capability::GateBased)];
        let mut scratch = RouteScratch::new();
        let mut out = MappedCircuit::new(24, 24);
        let mut swaps = 0;
        while !state.qubits_mutually_connected(&[Qubit(0), Qubit(23)], p.r_int) {
            let report = engine
                .step(&mut state, &frontier, &[], &mut scratch, &mut out)
                .unwrap();
            swaps += report.swaps + report.moves;
            assert!(swaps < 60, "engine must converge");
        }
        assert!(swaps >= 1);
    }
}
