//! The unified routing engine.
//!
//! This subsystem factors gate-based and shuttling-based mapping onto one
//! abstraction (the hybrid decision of the paper becomes a property of
//! the *engine*, not an if/else in the mapper):
//!
//! ```text
//!                 ┌─────────────────────────────────┐
//!                 │          RoutingEngine          │
//!                 │  tier 0        tier 1     ...   │
//!  frontier ───▶  │ GateRouter  ShuttleRouter (+N)  │ ──▶ best Candidate
//!  lookahead ──▶  │     └── propose(ctx) ──┘        │      (one comparator)
//!                 └───────────────┬─────────────────┘
//!                                 │ RoutingContext
//!                 ┌───────────────▼─────────────────┐
//!                 │ shared layer: CostModel (Eq.1–5)│
//!                 │ DistanceCache (BFS, occupancy-  │
//!                 │ epoch invalidation), distance   │
//!                 └─────────────────────────────────┘
//! ```
//!
//! * [`Router`] — one routing strategy: proposes [`Candidate`]s for the
//!   frontier gates assigned to its [`Capability`] and is notified when
//!   one of its candidates is applied.
//! * [`Candidate`] — a scored sequence of primitive routing operations
//!   ([`RoutingOp`]); candidates from *all* registered routers are ranked
//!   by one lexicographic comparator (`tier`, then `cost`).
//! * [`CostModel`] — the paper's Eq. (1)–(5) fidelity/timing terms,
//!   shared by the capability decider and every router.
//! * [`RoutingContext`] / [`DistanceCache`] — cached per-layer BFS
//!   distance fields (invalidated only when trap occupancy changes).
//! * [`RouteScratch`] — the per-thread arena holding the move journal,
//!   the distance cache and every dense per-round table; routers borrow
//!   it instead of allocating, and candidate simulation runs **in
//!   place** on the live state via
//!   [`StateJournal`](crate::state::StateJournal) apply/undo.
//! * [`RoutingEngine`] — registers routers in priority order, runs the
//!   propose → rank → apply round, and reports capability handoffs.
//!
//! Adding a third strategy (e.g. the combined SWAP+shuttle chains of the
//! paper's §V outlook) is one new file implementing [`Router`] plus a
//! registration call — the mapper is strategy-agnostic.

pub mod context;
pub mod cost;
pub mod distance;
pub mod engine;
pub mod gate;
pub mod scratch;
pub mod shuttle;

pub use context::{CacheStats, DistanceCache, RoutingContext};
pub use cost::CostModel;
pub use engine::{RoutingEngine, StepReport};
pub use gate::{GatePosition, GateRouter};
pub use scratch::RouteScratch;
pub use shuttle::{ChainMove, MoveChain, ShuttleRouter};

use na_arch::Site;
use na_circuit::Qubit;

use crate::decision::Capability;
use crate::ops::AtomId;
use crate::state::MappingState;

/// A frontier or lookahead gate annotated with its assigned capability —
/// the unit of work handed to the engine each routing round.
#[derive(Debug, Clone)]
pub struct FrontierGate {
    /// Index of the operation in the (native-decomposed) input circuit.
    pub op_index: usize,
    /// The gate's circuit qubits.
    pub qubits: Vec<Qubit>,
    /// The capability this gate is currently assigned to.
    pub capability: Capability,
}

/// One primitive routing operation inside a [`Candidate`]. Mirrors the
/// routing variants of [`crate::ops::MappedOp`], with sites captured at
/// proposal time (sequentially consistent within the candidate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingOp {
    /// Exchange the circuit qubits of two atoms.
    Swap {
        /// First atom.
        a: AtomId,
        /// Second atom.
        b: AtomId,
        /// Site of `a` when the swap executes.
        site_a: Site,
        /// Site of `b` when the swap executes.
        site_b: Site,
    },
    /// Shuttle an atom to a free site.
    Move {
        /// The moved atom.
        atom: AtomId,
        /// Source site when the move executes.
        from: Site,
        /// Target site (free when the move executes).
        to: Site,
    },
}

/// A scored routing proposal: the primitive operations to apply this
/// round, plus the comparator keys.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Priority tier of the proposing router (assigned by the engine;
    /// lower is ranked first). Tier dominance encodes the paper's
    /// §3.2 (4): shuttling candidates are only considered once the
    /// gate-based frontier produced none, so SWAPs and shuttles do not
    /// interfere.
    pub tier: u8,
    /// Router-native cost (Eq. 2–3 for SWAPs, Eq. 4–5 for chains).
    /// Compared only within a tier.
    pub cost: f64,
    /// `op_index` of the frontier gate this candidate primarily serves.
    pub op_index: usize,
    /// Operations in execution order (move-aways precede dependent
    /// moves).
    pub ops: Vec<RoutingOp>,
}

impl Candidate {
    /// The unified comparator: lexicographic `(tier, cost)` with the same
    /// strict-improvement tolerance both routers historically used.
    /// Earlier-proposed candidates win ties, keeping routing
    /// deterministic.
    pub fn improves_on(&self, other: &Candidate) -> bool {
        self.tier < other.tier || (self.tier == other.tier && self.cost < other.cost - 1e-12)
    }

    /// Number of SWAP operations in this candidate.
    pub fn swap_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, RoutingOp::Swap { .. }))
            .count()
    }

    /// Number of shuttle moves in this candidate.
    pub fn move_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, RoutingOp::Move { .. }))
            .count()
    }
}

/// A router's answer to one propose call.
#[derive(Debug, Clone, Default)]
pub struct Proposal {
    /// Scored candidates (the engine assigns their tier).
    pub candidates: Vec<Candidate>,
    /// `op_index`es of gates this router cannot serve and hands off to
    /// the next tier *permanently* (e.g. a multi-qubit gate without a
    /// geometric position, paper §3.2 (3)). Only honored when a
    /// lower-priority router exists.
    pub handoff: Vec<usize>,
}

/// One routing strategy: proposes candidates for the gates assigned to
/// its capability.
///
/// Implementations may keep internal recency/tabu bookkeeping; the
/// engine calls [`Router::note_applied`] exactly once per applied
/// candidate, after the state mutation.
pub trait Router: std::fmt::Debug {
    /// The capability whose gates this router serves.
    fn capability(&self) -> Capability;

    /// Proposes candidates for `frontier` (the engine passes only gates
    /// assigned to this router, as borrows — the per-round hot loop
    /// copies no gate data). `lookahead` carries the lookahead gates of
    /// the same capability; `fallback` is `true` when a lower-priority
    /// router exists to take over gates listed in [`Proposal::handoff`].
    ///
    /// The context is mutable so routers can simulate candidates **in
    /// place** on the live state through the journal and borrow scratch
    /// buffers; every speculative mutation must be rolled back before
    /// returning (the engine debug-asserts this).
    fn propose(
        &self,
        ctx: &mut RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        fallback: bool,
    ) -> Proposal;

    /// Batched variant of [`Router::propose`] for speculative
    /// multi-commit rounds: returns (up to) one best candidate *per
    /// serviceable frontier gate* in one sweep, instead of the single
    /// globally best candidate. Costs must be mutually comparable (the
    /// engine ranks all returned candidates through the shared
    /// comparator) and evaluated against the same pre-round state.
    ///
    /// The default delegates to [`Router::propose`] — correct for
    /// routers that already score per gate (the shuttle router), and a
    /// safe single-candidate fallback for any other strategy.
    fn propose_batch(
        &self,
        ctx: &mut RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        fallback: bool,
    ) -> Proposal {
        self.propose(ctx, frontier, lookahead, fallback)
    }

    /// Notifies the router that `candidate` (one of its own proposals)
    /// was applied; `state` reflects the post-application mapping.
    fn note_applied(&mut self, state: &MappingState, candidate: &Candidate);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(tier: u8, cost: f64) -> Candidate {
        Candidate {
            tier,
            cost,
            op_index: 0,
            ops: Vec::new(),
        }
    }

    #[test]
    fn comparator_is_tier_dominant() {
        assert!(cand(0, 100.0).improves_on(&cand(1, -100.0)));
        assert!(!cand(1, -100.0).improves_on(&cand(0, 100.0)));
    }

    #[test]
    fn comparator_breaks_ties_towards_earlier_candidates() {
        // Equal cost within tolerance: the incumbent (earlier) wins.
        assert!(!cand(0, 1.0).improves_on(&cand(0, 1.0)));
        assert!(!cand(0, 1.0 - 5e-13).improves_on(&cand(0, 1.0)));
        assert!(cand(0, 0.5).improves_on(&cand(0, 1.0)));
    }

    #[test]
    fn op_counts_by_kind() {
        let c = Candidate {
            tier: 0,
            cost: 0.0,
            op_index: 3,
            ops: vec![
                RoutingOp::Move {
                    atom: AtomId(0),
                    from: Site::new(0, 0),
                    to: Site::new(1, 1),
                },
                RoutingOp::Swap {
                    a: AtomId(1),
                    b: AtomId(2),
                    site_a: Site::new(1, 0),
                    site_b: Site::new(2, 0),
                },
            ],
        };
        assert_eq!(c.swap_count(), 1);
        assert_eq!(c.move_count(), 1);
    }
}
