//! Gate-based routing: SWAP candidate generation, the cost function of
//! the paper's Eq. (2)–(3), and multi-qubit *position finding*.
//!
//! Two-qubit gates are swapped towards each other; gates on `m ≥ 3`
//! qubits first need a geometric *position* — a set of `m` occupied sites
//! pairwise within `r_int` — found by breadth-first search starting from
//! all gate qubits simultaneously (paper §3.1.3 and Example 7). The BFS
//! distance fields come from the shared [`RoutingContext`] cache, so
//! consecutive SWAP rounds (which never change occupancy) reuse them for
//! free. If no position exists the gate is handed off to the next tier
//! (shuttling-based mapping) via [`Proposal::handoff`].
//!
//! The per-round candidate bookkeeping (atom → gate incidence, pair
//! dedup, per-candidate handled sets) lives in dense generation-stamped
//! tables borrowed from the [`RouteScratch`](crate::route::RouteScratch)
//! arena — the hot loop allocates nothing.
//!
//! # Cost function
//!
//! For a SWAP candidate `S` the router evaluates
//!
//! ```text
//! C_g(S) = [ C_f(S) + w_l·C_l(S) ] + λ_t·(t_max − t(S))
//! ```
//!
//! where `C_f`/`C_l` sum the *post-SWAP* routing distances of the frontier
//! and lookahead gates (for the argmin this is equivalent to the paper's
//! difference form `Δd_SWAP`, since the pre-SWAP sum is a constant).
//! `t(S)` counts routing steps since either atom of `S` was last involved
//! in a SWAP, where "involved" includes atoms within the restriction
//! radius `r_restr` of the swapped pair (the NA-specific extension noted
//! in §3.3.1). The recency term is the shared
//! [`CostModel::swap_recency_penalty`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use na_arch::{HardwareParams, NeighborTable, Neighborhood, Site};
use na_circuit::Qubit;

use crate::config::MapperConfig;
use crate::decision::Capability;
use crate::ops::AtomId;
use crate::route::distance::{swap_distance_bounded, UNREACHABLE};
use crate::route::scratch::GateBufs;
use crate::route::{
    Candidate, CostModel, FrontierGate, Proposal, Router, RoutingContext, RoutingOp,
};
use crate::state::MappingState;

/// A geometric realization target for a multi-qubit gate: slot `i` is the
/// site where gate qubit `i` should end up; all slots are pairwise within
/// `r_int`.
#[derive(Debug, Clone, PartialEq)]
pub struct GatePosition {
    /// Target site per gate qubit (operand order).
    pub slots: Vec<Site>,
    /// Total BFS hop cost of gathering the qubits at the slots.
    pub cost: u32,
}

/// A gate prepared for gate-based routing: qubits plus the resolved
/// position for `m ≥ 3` gates.
#[derive(Debug, Clone, Default)]
pub struct RoutedGate {
    /// Index of the operation in the input circuit.
    pub op_index: usize,
    /// The gate's circuit qubits.
    pub qubits: Vec<Qubit>,
    /// Target position for `m ≥ 3` gates (`None` for two-qubit gates).
    pub position: Option<GatePosition>,
}

impl RoutedGate {
    /// Post-SWAP routing distance of this gate, with `site_of` resolving
    /// qubit locations (allowing hypothetical SWAP overrides).
    /// `zero_sq` is the cost model's precomputed
    /// [`crate::route::distance::swap_zero_threshold_sq`] — in-range
    /// pairs short-circuit to exactly `0.0` on an integer compare, the
    /// sqrt only runs when a real positive distance is consumed.
    fn distance_with(&self, site_of: &dyn Fn(Qubit) -> Site, r_int: f64, zero_sq: i64) -> f64 {
        match &self.position {
            Some(pos) => self
                .qubits
                .iter()
                .zip(&pos.slots)
                .map(|(&q, &slot)| {
                    let s = site_of(q);
                    // Count slot distance in SWAP steps.
                    if s == slot {
                        0.0
                    } else {
                        (s.distance(slot) / r_int).max(1.0)
                    }
                })
                .sum(),
            None => {
                let a = site_of(self.qubits[0]);
                let b = site_of(self.qubits[1]);
                swap_distance_bounded(a, b, r_int, zero_sq)
            }
        }
    }
}

/// Writes a resolved gate into slot `live` of the reusable buffer,
/// recycling the slot's qubit vector instead of allocating.
fn fill_routed(
    buf: &mut Vec<RoutedGate>,
    live: usize,
    op_index: usize,
    qubits: &[Qubit],
    position: Option<GatePosition>,
) {
    if live < buf.len() {
        let slot = &mut buf[live];
        slot.op_index = op_index;
        slot.qubits.clear();
        slot.qubits.extend_from_slice(qubits);
        slot.position = position;
    } else {
        buf.push(RoutedGate {
            op_index,
            qubits: qubits.to_vec(),
            position,
        });
    }
}

/// The gate-based router. Owns the recency bookkeeping for `t(S)` and the
/// tabu window preventing immediate SWAP reversal; distance and cost
/// terms come from the shared routing layer, and per-round indices are
/// borrowed from the scratch arena.
#[derive(Debug)]
pub struct GateRouter {
    cost: CostModel,
    hood_restr: Neighborhood,
    /// CSR adjacency at `r_restr`, built lazily for the lattice the
    /// router actually routes on (the restricted-volume scan of
    /// [`GateRouter::note_swap_applied`] runs once per applied SWAP).
    restr_table: Option<NeighborTable>,
    /// Routing step at which each atom was last "used" by a SWAP.
    last_used: Vec<u64>,
    /// Monotone step counter.
    step: u64,
    /// Recently applied swaps (tabu against immediate reversal).
    recent_swaps: std::collections::VecDeque<(AtomId, AtomId)>,
}

impl GateRouter {
    /// Creates a router for the given hardware and configuration.
    pub fn new(params: &HardwareParams, config: &MapperConfig) -> Self {
        GateRouter {
            cost: CostModel::new(params, config),
            hood_restr: Neighborhood::new(params.r_restr),
            restr_table: None,
            last_used: vec![0; params.num_atoms as usize],
            step: 0,
            recent_swaps: std::collections::VecDeque::new(),
        }
    }

    /// Finds a geometric position for a multi-qubit gate: a set of
    /// occupied sites, pairwise within `r_int`, reachable by SWAPs from
    /// the gate qubits, minimizing the total BFS hop cost.
    ///
    /// Returns `None` when no feasible position exists (the engine then
    /// hands the gate to the next routing tier, paper §3.2 (3)).
    pub fn find_position(
        &self,
        ctx: &mut RoutingContext<'_>,
        qubits: &[Qubit],
    ) -> Option<GatePosition> {
        let m = qubits.len();
        debug_assert!(m >= 3, "positions are for multi-qubit gates");

        // Per-qubit BFS distance fields through the occupied graph,
        // served from the shared cache into the reusable field list.
        let mut fields = {
            let p = ctx.parts();
            std::mem::take(&mut p.gate.fields)
        };
        fields.clear();
        for &q in qubits {
            fields.push(ctx.distances_from_qubit(q));
        }

        let best = {
            let p = ctx.parts();
            let state = &*p.state;
            let lattice = state.lattice();

            // Anchor candidates: occupied sites reachable by every qubit,
            // keyed by total gathering cost, fed into a min-heap *ring by
            // ring* around the gate centroid instead of enumerating every
            // atom. Each anchor's cost lower-bounds as
            // `m · euclid(site, centroid) / r_int` (each BFS hop spans at
            // most `r_int`, and the site-to-qubit distances sum to at
            // least `m` times the centroid distance), and every site in a
            // Chebyshev ring-`k` region lies strictly more than
            // `(k−1)·side` from the centroid — so once the heap top costs
            // strictly less than the next ring's bound, no unfed atom can
            // precede it. Integer costs never tie the real-valued bound,
            // so pops arrive in exactly the (cost, site) order the full
            // enumeration produced: same winner, same early exit, while a
            // mega-lattice query feeds only the few rings near the gate.
            let anchors = &mut p.gate.anchors;
            anchors.clear();
            let mut heap = BinaryHeap::from(std::mem::take(anchors));

            let side = state.region_side();
            let (regions_x, regions_y) = state.region_dims();
            let centroid = crate::route::context::centroid_of(state, qubits);
            let cx = ((centroid.0.max(0.0) as u32) / side).min(regions_x - 1);
            let cy = ((centroid.1.max(0.0) as u32) / side).min(regions_y - 1);
            let max_k = (cx.max(regions_x - 1 - cx)).max(cy.max(regions_y - 1 - cy));
            let r_int = self.cost.r_int;
            let lb_cost = |k: u32| -> f64 {
                if k == 0 {
                    0.0
                } else {
                    (m as f64) * f64::from((k - 1) * side) / r_int
                }
            };
            let push_ring = |k: u32, heap: &mut BinaryHeap<Reverse<(u64, Site)>>| {
                na_arch::RegionGrid::for_each_ring_region(
                    regions_x,
                    regions_y,
                    cx,
                    cy,
                    k,
                    &mut |rx, ry| {
                        let region = (ry * regions_x + rx) as usize;
                        for &a in state.atoms_in_region(region) {
                            let site = state.site_of_atom(AtomId(a));
                            let idx = lattice.index(site);
                            let mut total = 0u64;
                            let mut reachable = true;
                            for d in &fields {
                                if d[idx] == UNREACHABLE {
                                    reachable = false;
                                    break;
                                }
                                total += u64::from(d[idx]);
                            }
                            if reachable {
                                heap.push(Reverse((total, site)));
                            }
                        }
                    },
                );
            };
            let mut next_k = 0u32;

            const ANCHOR_MARGIN: usize = 24;
            let mut best: Option<GatePosition> = None;
            let mut examined_since_best = 0usize;
            loop {
                while next_k <= max_k {
                    match heap.peek() {
                        Some(&Reverse((c, _))) if (c as f64) < lb_cost(next_k) => break,
                        _ => {
                            push_ring(next_k, &mut heap);
                            next_k += 1;
                        }
                    }
                }
                let Some(Reverse((anchor_cost, anchor))) = heap.pop() else {
                    break;
                };
                if let Some(b) = &best {
                    if anchor_cost >= u64::from(b.cost) || examined_since_best >= ANCHOR_MARGIN {
                        break;
                    }
                    examined_since_best += 1;
                }
                if let Some(pos) = self.position_at_anchor(
                    state,
                    p.table_int,
                    &mut p.gate.pos_candidates,
                    anchor,
                    &fields,
                    m,
                ) {
                    if best.as_ref().is_none_or(|b| pos.cost < b.cost) {
                        best = Some(pos);
                        examined_since_best = 0;
                    }
                }
            }
            // Return the heap's storage to the arena.
            *anchors = heap.into_vec();
            best
        };

        // Drop the Arc handles before returning the buffer: a retained
        // clone would make the cache's `Arc::try_unwrap` fail on the
        // next occupancy invalidation and defeat the buffer pool.
        fields.clear();
        ctx.parts().gate.fields = fields;
        best
    }

    /// Greedily grows a mutually-compatible slot set around `anchor` and
    /// assigns gate qubits to slots with minimal total BFS cost.
    #[allow(clippy::too_many_arguments)]
    fn position_at_anchor(
        &self,
        state: &MappingState,
        table_int: &NeighborTable,
        candidates: &mut Vec<(u64, Site)>,
        anchor: Site,
        dists: &[Arc<Vec<u32>>],
        m: usize,
    ) -> Option<GatePosition> {
        let lattice = state.lattice();
        // Occupied sites around (and including) the anchor, cheapest
        // first. The CSR slice lists the hood's in-bounds sites in the
        // identical nearest-first order.
        candidates.clear();
        let anchor_idx = lattice.index(anchor);
        candidates.extend(
            std::iter::once(anchor_idx)
                .chain(
                    table_int
                        .neighbors(anchor_idx)
                        .iter()
                        .map(|&n| n as usize)
                        .filter(|&n| !state.is_free_index(n)),
                )
                .filter_map(|idx| {
                    let mut total = 0u64;
                    for d in dists {
                        if d[idx] == UNREACHABLE {
                            return None;
                        }
                        total += u64::from(d[idx]);
                    }
                    Some((total, lattice.site(idx)))
                }),
        );
        candidates.sort_unstable_by_key(|&(c, s)| (c, s));

        let r_sq = self.cost.r_int_within_sq;
        let mut slots: Vec<Site> = Vec::with_capacity(m);
        for &(_, s) in candidates.iter() {
            if slots.iter().all(|&t| t.distance_sq(s) <= r_sq) {
                slots.push(s);
                if slots.len() == m {
                    break;
                }
            }
        }
        if slots.len() < m {
            return None;
        }
        let (assignment, cost) = best_assignment(dists, &slots, lattice)?;
        let ordered: Vec<Site> = assignment.iter().map(|&j| slots[j]).collect();
        Some(GatePosition {
            slots: ordered,
            cost,
        })
    }

    /// Chooses the cheapest SWAP according to Eq. (2)–(3). Returns the
    /// winning pair and its cost, or `None` when no candidate exists
    /// (e.g. every frontier atom is isolated).
    pub fn best_swap(
        &self,
        ctx: &mut RoutingContext<'_>,
        front: &[RoutedGate],
        lookahead: &[RoutedGate],
    ) -> Option<((AtomId, AtomId), f64)> {
        let mut best: Option<((AtomId, AtomId), f64)> = None;
        self.sweep_swaps(ctx, front, lookahead, &mut |_, pair, cost| {
            let better = match &best {
                None => true,
                Some((bp, bc)) => cost < *bc - 1e-12 || ((cost - *bc).abs() <= 1e-12 && pair < *bp),
            };
            if better {
                best = Some((pair, cost));
            }
        });
        best
    }

    /// One pass over every deduplicated SWAP candidate of the round,
    /// reporting `(front gate index, pair, cost)` to `visit` in the
    /// exact enumeration order [`GateRouter::best_swap`] historically
    /// scanned — the single-commit winner and the per-gate bests of
    /// [`Router::propose_batch`] are both reductions over this stream.
    /// A pair is attributed to the first frontier gate that generates
    /// it (the dedup tables are shared across gates), and every cost
    /// contains the same round-constant `baseline`, so costs are
    /// mutually comparable across gates. Returns that baseline: a
    /// candidate with `cost < baseline` strictly reduces the weighted
    /// distance potential (its delta out-weighs its recency penalty).
    fn sweep_swaps(
        &self,
        ctx: &mut RoutingContext<'_>,
        front: &[RoutedGate],
        lookahead: &[RoutedGate],
        visit: &mut dyn FnMut(usize, (AtomId, AtomId), f64),
    ) -> f64 {
        let p = ctx.parts();
        let state = &*p.state;
        let lattice = state.lattice();
        let r_int = self.cost.r_int;
        let bufs = p.gate;
        let num_atoms = state.num_atoms();
        bufs.ensure_atoms(num_atoms);
        bufs.ensure_gates(front.len(), lookahead.len());
        bufs.round_gen += 1;
        let gen = bufs.round_gen;

        // Atom → gates index over both layers (front weight 1, lookahead
        // w_l) — dense, generation-stamped.
        let touch = |bufs: &mut GateBufs, atom: AtomId, entry: (u32, bool)| {
            let a = atom.index();
            if bufs.touch_epoch[a] != gen {
                bufs.touch_epoch[a] = gen;
                bufs.touch_lists[a].clear();
            }
            bufs.touch_lists[a].push(entry);
        };
        for (gi, g) in front.iter().enumerate() {
            for &q in &g.qubits {
                touch(bufs, state.atom_of_qubit(q), (gi as u32, true));
            }
        }
        for (gi, g) in lookahead.iter().enumerate() {
            for &q in &g.qubits {
                touch(bufs, state.atom_of_qubit(q), (gi as u32, false));
            }
        }

        // Pre-SWAP distances (constant part of the cost).
        let zero_sq = self.cost.r_int_zero_sq;
        let site_now = |q: Qubit| state.site_of_qubit(q);
        bufs.d_before_front.clear();
        bufs.d_before_front.extend(
            front
                .iter()
                .map(|g| g.distance_with(&site_now, r_int, zero_sq)),
        );
        bufs.d_before_la.clear();
        bufs.d_before_la.extend(
            lookahead
                .iter()
                .map(|g| g.distance_with(&site_now, r_int, zero_sq)),
        );
        let baseline: f64 = bufs.d_before_front.iter().sum::<f64>()
            + self.cost.lookahead_weight * bufs.d_before_la.iter().sum::<f64>();

        // Candidate SWAPs: frontier gate atoms × occupied interaction
        // neighbours, deduplicated through the dense pair table (sparse
        // fallback beyond the quadratic-size cutoff).
        let dense_pairs = num_atoms <= GateBufs::PAIR_DENSE_MAX_ATOMS;
        if !dense_pairs {
            bufs.pair_sparse.clear();
        }
        for (gi, g) in front.iter().enumerate() {
            for &q in &g.qubits {
                let a = state.atom_of_qubit(q);
                let sa = state.site_of_atom(a);
                // CSR slice: the hood's in-bounds sites in identical
                // order, as dense indices — no geometry per neighbor.
                for &nb in p.table_int.neighbors(lattice.index(sa)) {
                    let Some(b) = state.atom_at_site_index(nb as usize) else {
                        continue;
                    };
                    let pair = if a.0 < b.0 { (a, b) } else { (b, a) };
                    let fresh = if dense_pairs {
                        let key = pair.0.index() * num_atoms + pair.1.index();
                        let fresh = bufs.pair_epoch[key] != gen;
                        bufs.pair_epoch[key] = gen;
                        fresh
                    } else {
                        bufs.pair_sparse.insert((pair.0 .0, pair.1 .0))
                    };
                    if !fresh {
                        continue;
                    }
                    let delta = self.swap_delta(state, pair, front, lookahead, bufs);
                    // Tabu: never undo a recent SWAP unless it improves.
                    if self.recent_swaps.contains(&pair) && delta >= 0.0 {
                        continue;
                    }
                    let cost =
                        (baseline + delta) + self.cost.swap_recency_penalty(self.staleness(pair));
                    visit(gi, pair, cost);
                }
            }
        }
        baseline
    }

    /// Cost delta of swapping `pair`, restricted to gates touching either
    /// atom (all other terms cancel). Uses the dense touch/handled
    /// tables of the scratch arena.
    fn swap_delta(
        &self,
        state: &MappingState,
        pair: (AtomId, AtomId),
        front: &[RoutedGate],
        lookahead: &[RoutedGate],
        bufs: &mut GateBufs,
    ) -> f64 {
        let (a, b) = pair;
        let (site_a, site_b) = (state.site_of_atom(a), state.site_of_atom(b));
        let site_after = |q: Qubit| -> Site {
            let atom = state.atom_of_qubit(q);
            if atom == a {
                site_b
            } else if atom == b {
                site_a
            } else {
                state.site_of_atom(atom)
            }
        };
        let round = bufs.round_gen;
        bufs.handled_gen += 1;
        let handled_gen = bufs.handled_gen;
        let mut delta = 0.0;
        for atom in [a, b] {
            if bufs.touch_epoch[atom.index()] != round {
                continue;
            }
            for &(gi, is_front) in &bufs.touch_lists[atom.index()] {
                let slot = 2 * gi as usize + usize::from(is_front);
                if bufs.handled_epoch[slot] == handled_gen {
                    continue;
                }
                bufs.handled_epoch[slot] = handled_gen;
                let (gate, before, weight) = if is_front {
                    (&front[gi as usize], bufs.d_before_front[gi as usize], 1.0)
                } else {
                    (
                        &lookahead[gi as usize],
                        bufs.d_before_la[gi as usize],
                        self.cost.lookahead_weight,
                    )
                };
                let after =
                    gate.distance_with(&site_after, self.cost.r_int, self.cost.r_int_zero_sq);
                delta += weight * (after - before);
            }
        }
        delta
    }

    /// Steps since either atom of `pair` was last used, capped at the
    /// recency window.
    pub fn staleness(&self, pair: (AtomId, AtomId)) -> f64 {
        let last = self.last_used[pair.0.index()].max(self.last_used[pair.1.index()]);
        let t = self.step.saturating_sub(last);
        (t.min(self.cost.recency_window as u64)) as f64
    }

    /// Records an applied SWAP: advances the step counter, marks the
    /// swapped atoms (and those within `r_restr` of them — the restricted
    /// volume) as recently used, and updates the tabu window.
    fn note_swap_applied(&mut self, state: &MappingState, a: AtomId, b: AtomId) {
        self.step += 1;
        let lattice = *state.lattice();
        let r_restr = self.hood_restr.radius();
        let stale = !matches!(&self.restr_table, Some(t) if t.matches(&lattice, r_restr));
        if stale {
            self.restr_table = Some(NeighborTable::build(&lattice, &self.hood_restr));
        }
        let table = self.restr_table.as_ref().expect("built above");
        for atom in [a, b] {
            self.last_used[atom.index()] = self.step;
            let site = state.site_of_atom(atom);
            for &s in table.neighbors(lattice.index(site)) {
                if let Some(other) = state.atom_at_site_index(s as usize) {
                    self.last_used[other.index()] = self.step;
                }
            }
        }
        let pair = if a.0 < b.0 { (a, b) } else { (b, a) };
        self.recent_swaps.push_back(pair);
        while self.recent_swaps.len() > self.cost.recency_window {
            self.recent_swaps.pop_front();
        }
    }
}

impl GateRouter {
    /// Shared body of [`Router::propose`] / [`Router::propose_batch`]:
    /// resolves positions for `m ≥ 3` gates (handing off position-less
    /// ones when a fallback tier exists), then proposes either the
    /// single best SWAP over the remaining frontier or — batched — the
    /// best SWAP *per frontier gate*, all from one
    /// [`GateRouter::sweep_swaps`] pass. The resolved-gate lists live in
    /// reusable scratch buffers — no per-round allocation in steady
    /// state.
    fn propose_impl(
        &self,
        ctx: &mut RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        fallback: bool,
        batched: bool,
    ) -> Proposal {
        // Take the buffers out of the arena so they can be filled while
        // the context is still queried (disjoint from the other scratch
        // tables `best_swap` borrows).
        let (mut routed, mut la) = {
            let p = ctx.parts();
            (
                std::mem::take(&mut p.gate.routed_front),
                std::mem::take(&mut p.gate.routed_la),
            )
        };
        let mut handoff = Vec::new();
        let mut live = 0usize;
        for g in frontier {
            let position = if g.qubits.len() >= 3 {
                let pos = self.find_position(ctx, &g.qubits);
                if pos.is_none() && fallback {
                    // Paper §3.2 (3): no position found -> use shuttling.
                    handoff.push(g.op_index);
                    continue;
                }
                pos
            } else {
                None
            };
            fill_routed(&mut routed, live, g.op_index, &g.qubits, position);
            live += 1;
        }
        let mut la_live = 0usize;
        for g in lookahead {
            fill_routed(&mut la, la_live, g.op_index, &g.qubits, None);
            la_live += 1;
        }

        let mut candidates = Vec::new();
        if live > 0 && batched {
            // Per-gate reduction over the shared sweep: each slot runs
            // the identical comparator `best_swap` uses globally, so a
            // gate's candidate is exactly what a single-gate round would
            // have chosen for it (given the same shared dedup).
            let mut per_gate = std::mem::take(&mut ctx.parts().gate.per_gate_best);
            per_gate.clear();
            per_gate.resize(live, None);
            let baseline = self.sweep_swaps(
                ctx,
                &routed[..live],
                &la[..la_live],
                &mut |gi, pair, cost| {
                    let slot = &mut per_gate[gi];
                    let better = match slot {
                        None => true,
                        Some((bp, bc)) => {
                            cost < *bc - 1e-12 || ((cost - *bc).abs() <= 1e-12 && pair < *bp)
                        }
                    };
                    if better {
                        *slot = Some((pair, cost));
                    }
                },
            );
            // Global winner by the identical comparator `best_swap`
            // runs: earliest gate wins cost ties (slot order is sweep
            // order).
            let winner = per_gate
                .iter()
                .enumerate()
                .filter_map(|(gi, s)| s.map(|(pair, cost)| (gi, pair, cost)))
                .min_by(|a, b| {
                    a.2.partial_cmp(&b.2)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                        .then(a.0.cmp(&b.0))
                })
                .map(|(gi, ..)| gi);
            let state = ctx.state();
            for (gi, slot) in per_gate.iter().enumerate() {
                if let Some(((a, b), cost)) = *slot {
                    // A non-winner best commits speculatively only if it
                    // strictly improves the round's distance potential
                    // (`cost < baseline`): committing a worsening swap
                    // is only ever justified to escape a local minimum,
                    // and that is the winner's job — batching worsening
                    // side-swaps churns the tabu window and livelocks
                    // congested workloads.
                    if Some(gi) != winner && cost >= baseline - 1e-12 {
                        continue;
                    }
                    candidates.push(Candidate {
                        tier: 0, // reassigned by the engine
                        cost,
                        op_index: routed[gi].op_index,
                        ops: vec![RoutingOp::Swap {
                            a,
                            b,
                            site_a: state.site_of_atom(a),
                            site_b: state.site_of_atom(b),
                        }],
                    });
                }
            }
            ctx.parts().gate.per_gate_best = per_gate;
        } else if live > 0 {
            if let Some(((a, b), cost)) = self.best_swap(ctx, &routed[..live], &la[..la_live]) {
                let state = ctx.state();
                candidates.push(Candidate {
                    tier: 0, // reassigned by the engine
                    cost,
                    op_index: routed[0].op_index,
                    ops: vec![RoutingOp::Swap {
                        a,
                        b,
                        site_a: state.site_of_atom(a),
                        site_b: state.site_of_atom(b),
                    }],
                });
            }
        }
        let p = ctx.parts();
        p.gate.routed_front = routed;
        p.gate.routed_la = la;
        Proposal {
            candidates,
            handoff,
        }
    }
}

impl Router for GateRouter {
    fn capability(&self) -> Capability {
        Capability::GateBased
    }

    fn propose(
        &self,
        ctx: &mut RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        fallback: bool,
    ) -> Proposal {
        self.propose_impl(ctx, frontier, lookahead, fallback, false)
    }

    /// One best SWAP per serviceable frontier gate, mutually comparable
    /// (every cost contains the same round-constant baseline), for the
    /// engine's speculative multi-commit round.
    fn propose_batch(
        &self,
        ctx: &mut RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        fallback: bool,
    ) -> Proposal {
        self.propose_impl(ctx, frontier, lookahead, fallback, true)
    }

    fn note_applied(&mut self, state: &MappingState, candidate: &Candidate) {
        for op in &candidate.ops {
            if let RoutingOp::Swap { a, b, .. } = op {
                self.note_swap_applied(state, *a, *b);
            }
        }
    }
}

/// Minimal-cost assignment of gate qubits to slots. Exact for up to four
/// qubits (permutation search), greedy beyond. Returns `(assignment,
/// cost)` with `assignment[i]` the slot index for qubit `i`.
fn best_assignment(
    dists: &[Arc<Vec<u32>>],
    slots: &[Site],
    lattice: &na_arch::Lattice,
) -> Option<(Vec<usize>, u32)> {
    let m = dists.len();
    debug_assert_eq!(m, slots.len());
    let cost = |qi: usize, sj: usize| -> Option<u32> {
        let d = dists[qi][lattice.index(slots[sj])];
        (d != UNREACHABLE).then_some(d)
    };
    if m <= 4 {
        let mut perm: Vec<usize> = (0..m).collect();
        let mut best: Option<(Vec<usize>, u32)> = None;
        permute(&mut perm, 0, &mut |p| {
            let mut total = 0u32;
            for (qi, &sj) in p.iter().enumerate() {
                match cost(qi, sj) {
                    Some(c) => total += c,
                    None => return,
                }
            }
            if best.as_ref().is_none_or(|(_, bc)| total < *bc) {
                best = Some((p.to_vec(), total));
            }
        });
        best
    } else {
        // Greedy: repeatedly match the globally cheapest (qubit, slot) pair.
        let mut assignment = vec![usize::MAX; m];
        let mut used = vec![false; m];
        let mut total = 0u32;
        for _ in 0..m {
            let mut pick: Option<(u32, usize, usize)> = None;
            #[allow(clippy::needless_range_loop)] // indices feed `cost(qi, sj)`
            for qi in 0..m {
                if assignment[qi] != usize::MAX {
                    continue;
                }
                for sj in 0..m {
                    if used[sj] {
                        continue;
                    }
                    if let Some(c) = cost(qi, sj) {
                        if pick.is_none_or(|(pc, ..)| c < pc) {
                            pick = Some((c, qi, sj));
                        }
                    }
                }
            }
            let (c, qi, sj) = pick?;
            assignment[qi] = sj;
            used[sj] = true;
            total += c;
        }
        Some((assignment, total))
    }
}

fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        visit(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, visit);
        perm.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::distance::bfs_occupied;
    use crate::route::RouteScratch;
    use na_arch::HardwareParams;

    fn params(side: u32, atoms: u32, r: f64) -> HardwareParams {
        HardwareParams::mixed()
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .radius(r)
            .build()
            .expect("valid")
    }

    fn routed(qubits: &[u32]) -> RoutedGate {
        RoutedGate {
            op_index: 0,
            qubits: qubits.iter().map(|&q| Qubit(q)).collect(),
            position: None,
        }
    }

    struct Fixture {
        state: MappingState,
        hood: Neighborhood,
        table: na_arch::NeighborTable,
        r_int: f64,
        scratch: RouteScratch,
    }

    impl Fixture {
        fn new(p: &HardwareParams, qubits: u32) -> Self {
            let state = MappingState::identity(p, qubits).expect("fits");
            let hood = Neighborhood::new(p.r_int);
            let table = na_arch::NeighborTable::build(state.lattice(), &hood);
            Fixture {
                state,
                hood,
                table,
                r_int: p.r_int,
                scratch: RouteScratch::new(),
            }
        }

        fn ctx(&mut self) -> RoutingContext<'_> {
            RoutingContext::new(
                &mut self.state,
                &self.hood,
                &self.table,
                self.r_int,
                &mut self.scratch,
            )
        }
    }

    #[test]
    fn best_swap_moves_qubits_closer() {
        // 5x5 dense row-major layout, r_int = 1: qubit 0 at (0,0), qubit 12
        // at (2,2). Any useful SWAP reduces their separation.
        let p = params(5, 24, 1.0);
        let mut fx = Fixture::new(&p, 24);
        let cfg = MapperConfig::gate_only();
        let router = GateRouter::new(&p, &cfg);
        let front = [routed(&[0, 12])];
        let before = fx
            .state
            .site_of_qubit(Qubit(0))
            .distance(fx.state.site_of_qubit(Qubit(12)));
        let ((a, b), _) = router
            .best_swap(&mut fx.ctx(), &front, &[])
            .expect("candidates");
        fx.state.apply_swap(a, b);
        let after = fx
            .state
            .site_of_qubit(Qubit(0))
            .distance(fx.state.site_of_qubit(Qubit(12)));
        assert!(
            after < before,
            "swap must reduce distance: {before} -> {after}"
        );
    }

    #[test]
    fn routing_converges_to_executable() {
        let p = params(5, 24, 1.0);
        let mut fx = Fixture::new(&p, 24);
        let cfg = MapperConfig::gate_only();
        let mut router = GateRouter::new(&p, &cfg);
        let front = [routed(&[0, 23])];
        let qubits = [Qubit(0), Qubit(23)];
        let mut swaps = 0;
        while !fx.state.qubits_mutually_connected(&qubits, p.r_int) {
            let ((a, b), _) = router
                .best_swap(&mut fx.ctx(), &front, &[])
                .expect("progress");
            fx.state.apply_swap(a, b);
            router.note_swap_applied(&fx.state, a, b);
            swaps += 1;
            assert!(swaps < 50, "routing must converge");
        }
        // Manhattan-ish corner-to-corner on a 5x5 with r_int = 1 needs at
        // least 7 swaps; heuristic should stay close.
        assert!((6..=16).contains(&swaps), "swaps = {swaps}");
    }

    #[test]
    fn lookahead_breaks_ties_towards_future_gates() {
        let p = params(5, 24, 1.0);
        let mut fx = Fixture::new(&p, 24);
        let cfg = MapperConfig::gate_only();
        let router = GateRouter::new(&p, &cfg);
        // Frontier gate between q0 (0,0) and q2 (2,0); lookahead wants q0
        // near q10 at (0,2). Moving q0 right helps the front; the
        // lookahead prefers candidates that do not hurt q10's gate.
        let front = [routed(&[0, 2])];
        let la = [routed(&[0, 10])];
        let ((a, b), _) = router
            .best_swap(&mut fx.ctx(), &front, &la)
            .expect("candidates");
        // Either way the front distance shrinks.
        let mut s2 = fx.state.clone();
        s2.apply_swap(a, b);
        let d_front_before = fx
            .state
            .site_of_qubit(Qubit(0))
            .distance(fx.state.site_of_qubit(Qubit(2)));
        let d_front_after = s2
            .site_of_qubit(Qubit(0))
            .distance(s2.site_of_qubit(Qubit(2)));
        assert!(d_front_after < d_front_before);
    }

    #[test]
    fn find_position_rectangle_at_sqrt2() {
        // Example 7: r_int = √2 requires an L-shaped/rectangular cluster.
        let p = params(5, 24, std::f64::consts::SQRT_2);
        let mut fx = Fixture::new(&p, 24);
        let cfg = MapperConfig::gate_only();
        let router = GateRouter::new(&p, &cfg);
        let qubits = [Qubit(0), Qubit(1), Qubit(5)]; // already L-shaped
        let pos = router
            .find_position(&mut fx.ctx(), &qubits)
            .expect("position exists");
        assert_eq!(pos.cost, 0, "qubits already form a valid position");
        // All slots pairwise within r_int.
        for (i, &a) in pos.slots.iter().enumerate() {
            for &b in &pos.slots[i + 1..] {
                assert!(a.within(b, p.r_int));
            }
        }
    }

    #[test]
    fn find_position_gathers_distant_qubits() {
        let p = params(6, 35, std::f64::consts::SQRT_2);
        let mut fx = Fixture::new(&p, 35);
        let cfg = MapperConfig::gate_only();
        let router = GateRouter::new(&p, &cfg);
        // Qubits at three corners of the lattice.
        let qubits = [Qubit(0), Qubit(5), Qubit(30)];
        let pos = router
            .find_position(&mut fx.ctx(), &qubits)
            .expect("position exists");
        assert!(pos.cost > 0);
        for (i, &a) in pos.slots.iter().enumerate() {
            for &b in &pos.slots[i + 1..] {
                assert!(a.within(b, p.r_int));
            }
        }
    }

    #[test]
    fn position_none_when_graph_disconnected() {
        // 2 atoms in opposite corners of a 9x9 lattice with r_int = 1:
        // no third atom exists, and they cannot even reach each other.
        let p = params(9, 3, 1.0);
        let mut fx = Fixture::new(&p, 3);
        fx.state.apply_move(AtomId(0), Site::new(8, 8));
        fx.state.apply_move(AtomId(1), Site::new(0, 8));
        // Atom 2 stays at (2,0); all three are isolated.
        let cfg = MapperConfig::gate_only();
        let router = GateRouter::new(&p, &cfg);
        let pos = router.find_position(&mut fx.ctx(), &[Qubit(0), Qubit(1), Qubit(2)]);
        assert!(pos.is_none());
    }

    #[test]
    fn note_swap_marks_restricted_atoms() {
        let p = params(5, 24, 1.0);
        let state = MappingState::identity(&p, 24).expect("fits");
        let cfg = MapperConfig::gate_only().with_decay_rate(0.5);
        let mut router = GateRouter::new(&p, &cfg);
        router.note_swap_applied(&state, AtomId(12), AtomId(13));
        // Direct participants and neighbours within r_restr are fresh.
        assert_eq!(router.staleness((AtomId(12), AtomId(13))), 0.0);
        assert_eq!(router.staleness((AtomId(11), AtomId(7))), 0.0);
        // A far-away pair is stale.
        assert!(router.staleness((AtomId(0), AtomId(23))) > 0.0);
    }

    /// The heapified anchor selection must examine anchors in exactly
    /// the order the old full sort produced, including cost ties
    /// (broken by `Site` order) — so the first feasible/cheapest anchor
    /// (the winner) is identical.
    #[test]
    fn anchor_heap_pops_in_sorted_order_with_ties() {
        let entries: Vec<(u64, Site)> = vec![
            (5, Site::new(3, 1)),
            (2, Site::new(4, 0)),
            (5, Site::new(1, 2)),
            (2, Site::new(0, 3)),
            (7, Site::new(2, 2)),
            (2, Site::new(4, 1)),
            (0, Site::new(2, 0)),
            (2, Site::new(0, 0)),
        ];
        let mut sorted = entries.clone();
        sorted.sort_unstable_by_key(|&(c, s)| (c, s));
        let mut heap: BinaryHeap<Reverse<(u64, Site)>> = entries.into_iter().map(Reverse).collect();
        let mut popped: Vec<(u64, Site)> = Vec::new();
        while let Some(Reverse(e)) = heap.pop() {
            popped.push(e);
        }
        assert_eq!(popped, sorted);
        assert_eq!(popped.first(), sorted.first(), "same winner under ties");
    }

    #[test]
    fn assignment_exact_for_small_gates() {
        let p = params(4, 15, 2.0);
        let state = MappingState::identity(&p, 15).expect("fits");
        let hood = Neighborhood::new(2.0);
        let sites = [Site::new(0, 0), Site::new(1, 0), Site::new(2, 0)];
        let dists: Vec<Arc<Vec<u32>>> = sites
            .iter()
            .map(|&s| Arc::new(bfs_occupied(&state, &[s], &hood)))
            .collect();
        // Slots identical to sources: zero-cost identity assignment.
        let (assignment, cost) =
            best_assignment(&dists, &sites, state.lattice()).expect("feasible");
        assert_eq!(cost, 0);
        assert_eq!(assignment, vec![0, 1, 2]);
    }

    #[test]
    fn propose_hands_off_positionless_gates_only_with_fallback() {
        let p = params(9, 3, 1.0);
        let mut fx = Fixture::new(&p, 3);
        fx.state.apply_move(AtomId(0), Site::new(8, 8));
        fx.state.apply_move(AtomId(1), Site::new(0, 8));
        let router = GateRouter::new(&p, &MapperConfig::try_hybrid(1.0).expect("valid alpha"));
        let gate = FrontierGate {
            op_index: 7,
            qubits: vec![Qubit(0), Qubit(1), Qubit(2)],
            capability: Capability::GateBased,
        };
        let with_fb = router.propose(&mut fx.ctx(), &[&gate], &[], true);
        assert_eq!(with_fb.handoff, vec![7]);
        assert!(with_fb.candidates.is_empty());
        // Without a fallback tier the gate stays (and, with every atom
        // isolated, yields no SWAP candidate either).
        let without_fb = router.propose(&mut fx.ctx(), &[&gate], &[], false);
        assert!(without_fb.handoff.is_empty());
        assert!(without_fb.candidates.is_empty());
    }
}
