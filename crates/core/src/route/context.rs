//! Per-round routing context with cached distance infrastructure.
//!
//! Both routers repeatedly need BFS distance fields through the occupied
//! interaction graph (multi-qubit position finding queries one field per
//! gate qubit, every routing round). Recomputing them ad hoc was the
//! hottest redundant work in the mapper: a SWAP permutes the qubit
//! mapping `f_q` but *never changes trap occupancy*, so every distance
//! field stays valid across arbitrarily many consecutive SWAP rounds.
//!
//! [`DistanceCache`] exploits exactly that invariant: fields are keyed by
//! start site and invalidated wholesale when
//! [`MappingState::occupancy_stamp`] changes (i.e. after *committed*
//! shuttle moves — stamps are process-unique per state, so querying with
//! a *different* state can never alias another state's fields). The
//! vectors of invalidated fields recycle through an internal pool, so
//! steady-state routing performs BFS into warm buffers instead of
//! allocating.
//!
//! Fields are **resumable**: a target-bounded query
//! ([`DistanceCache::distances_at`]) settles only the frontier needed to
//! answer it and parks the partial field (distances + live BFS queue) in
//! the cache; a later full-field request — or a bounded request about
//! farther targets — resumes the same search instead of starting over.
//! BFS expansion runs through the CSR [`NeighborTable`] rather than
//! per-visit `hood.around` geometry (see [`crate::route::distance`]).
//!
//! Speculative candidate simulation (see
//! [`crate::state::StateJournal`]) deliberately never queries the cache:
//! speculative moves re-stamp the state (so a query *would* be correct,
//! but would trash the committed-occupancy fields), and undo restores
//! the exact committed stamp — leaving every cached field valid. The
//! contract is enforced by a debug assertion in
//! [`RoutingContext::distances_from`].
//!
//! [`RoutingContext`] bundles the mutable mapping state, the interaction
//! geometry and the scratch arena ([`RouteScratch`]) and is handed to
//! every [`crate::route::Router::propose`] call.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use na_arch::{NeighborTable, Neighborhood, Site};
use na_circuit::Qubit;

use crate::route::distance::{
    bfs_drain_resume, bfs_occupied_table_into, gate_remaining_distance, swap_distance, UNREACHABLE,
};
use crate::route::scratch::{GateBufs, RouteScratch, ShuttleBufs};
use crate::state::{MappingState, StateJournal};

/// Cache of single-source BFS distance fields over the occupied
/// interaction graph, invalidated by occupancy stamp, with buffer
/// pooling across invalidations and resumable partially-settled fields.
///
/// In the routing hot path the cache lives inside a thread-exclusive
/// [`RouteScratch`], so the `Mutex` is always uncontended (its cost is
/// a few nanoseconds per lookup); it is kept so the type stays
/// `Send + Sync` for standalone callers that do share one cache across
/// threads. The lock is held only for map lookups/inserts and pool
/// exchange, never during a BFS.
#[derive(Debug, Default)]
pub struct DistanceCache {
    /// Fields plus the occupancy stamp they were computed at.
    fields: Mutex<StampedFields>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Total sites settled by BFS work through this cache — the
    /// bench-visible measure of how much lattice each query touched.
    settled: AtomicU64,
}

/// A cached BFS field in one of two lifecycles: fully drained (shared
/// immutably), or partially settled with its live frontier queue parked
/// for resumption.
#[derive(Debug)]
enum FieldEntry {
    /// Completed field — every reachable site settled, `UNREACHABLE`
    /// entries are final.
    Full(Arc<Vec<u32>>),
    /// Partially settled field: `UNREACHABLE` entries are merely *not
    /// yet* settled while `queue` is non-empty.
    Partial {
        dist: Vec<u32>,
        queue: VecDeque<u32>,
    },
}

/// Start-site index → distance field, tagged with the occupancy stamp
/// the fields were computed at (0 = nothing cached yet; real stamps are
/// never zero). Retired field vectors and frontier queues are pooled
/// for reuse.
#[derive(Debug, Default)]
struct StampedFields {
    stamp: u64,
    by_start: HashMap<usize, FieldEntry>,
    pool: Vec<Vec<u32>>,
    queue_pool: Vec<VecDeque<u32>>,
}

impl StampedFields {
    /// Retires every field of a stale stamp generation into the pools.
    fn retire_stale(&mut self, stamp: u64) {
        if self.stamp == stamp {
            return;
        }
        let (pool, queue_pool) = (&mut self.pool, &mut self.queue_pool);
        for (_, entry) in self.by_start.drain() {
            match entry {
                FieldEntry::Full(field) => {
                    if let Ok(v) = Arc::try_unwrap(field) {
                        pool.push(v);
                    }
                }
                FieldEntry::Partial { dist, mut queue } => {
                    pool.push(dist);
                    queue.clear();
                    queue_pool.push(queue);
                }
            }
        }
        self.stamp = stamp;
    }
}

impl DistanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        DistanceCache::default()
    }

    /// The complete BFS distance field from `start` through occupied
    /// sites of `state`, computing — or *resuming* a partially settled
    /// field — on first use per occupancy stamp. Computation reuses
    /// pooled buffers from previously invalidated generations.
    pub fn field(&self, state: &MappingState, table: &NeighborTable, start: Site) -> Arc<Vec<u32>> {
        let key = state.lattice().index(start);
        let (mut buf, mut queue, resume);
        {
            let mut guard = self.fields.lock().expect("cache lock");
            let inner = &mut *guard;
            inner.retire_stale(state.occupancy_stamp());
            match inner.by_start.remove(&key) {
                Some(FieldEntry::Full(field)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let out = Arc::clone(&field);
                    inner.by_start.insert(key, FieldEntry::Full(field));
                    return out;
                }
                Some(FieldEntry::Partial { dist, queue: q }) => {
                    buf = dist;
                    queue = q;
                    resume = true;
                }
                None => {
                    buf = inner.pool.pop().unwrap_or_default();
                    queue = inner.queue_pool.pop().unwrap_or_default();
                    resume = false;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let settled = if resume {
            bfs_drain_resume(state, table, &mut buf, &mut queue, &[])
        } else {
            bfs_occupied_table_into(state, &[start], table, &mut buf, &mut queue)
        };
        self.settled.fetch_add(settled as u64, Ordering::Relaxed);
        let field = Arc::new(buf);
        let mut guard = self.fields.lock().expect("cache lock");
        let inner = &mut *guard;
        // Another thread may have advanced the stamp while we computed;
        // only publish a field for the stamp it belongs to.
        if inner.stamp == state.occupancy_stamp() {
            inner
                .by_start
                .insert(key, FieldEntry::Full(Arc::clone(&field)));
        }
        inner.queue_pool.push(queue);
        field
    }

    /// Target-bounded distance query: writes the hop distance from
    /// `start` to each site of `targets` into `out` (parallel to
    /// `targets`, `UNREACHABLE` for disconnected ones), running — or
    /// resuming — only as much BFS as the targets require. The partially
    /// settled field stays cached for later queries of the same
    /// occupancy generation.
    pub fn distances_at(
        &self,
        state: &MappingState,
        table: &NeighborTable,
        start: Site,
        targets: &[Site],
        out: &mut Vec<u32>,
    ) {
        let lattice = state.lattice();
        let key = lattice.index(start);
        out.clear();
        let (mut buf, mut queue, fresh);
        {
            let mut guard = self.fields.lock().expect("cache lock");
            let inner = &mut *guard;
            inner.retire_stale(state.occupancy_stamp());
            match inner.by_start.remove(&key) {
                Some(FieldEntry::Full(field)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    out.extend(targets.iter().map(|&t| field[lattice.index(t)]));
                    inner.by_start.insert(key, FieldEntry::Full(field));
                    return;
                }
                Some(FieldEntry::Partial { dist, queue: q }) => {
                    // Already settled everywhere we need? Serve without
                    // resuming (settled entries of a partial field are
                    // final).
                    if targets
                        .iter()
                        .all(|&t| dist[lattice.index(t)] != UNREACHABLE)
                    {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        out.extend(targets.iter().map(|&t| dist[lattice.index(t)]));
                        inner
                            .by_start
                            .insert(key, FieldEntry::Partial { dist, queue: q });
                        return;
                    }
                    buf = dist;
                    queue = q;
                    fresh = false;
                }
                None => {
                    buf = inner.pool.pop().unwrap_or_default();
                    queue = inner.queue_pool.pop().unwrap_or_default();
                    fresh = true;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if fresh {
            buf.clear();
            buf.resize(lattice.num_sites(), UNREACHABLE);
            queue.clear();
            let idx = lattice.index(start);
            buf[idx] = 0;
            queue.push_back(idx as u32);
            self.settled.fetch_add(1, Ordering::Relaxed);
        }
        let settled = bfs_drain_resume(state, table, &mut buf, &mut queue, targets);
        self.settled.fetch_add(settled as u64, Ordering::Relaxed);
        out.extend(targets.iter().map(|&t| buf[lattice.index(t)]));
        let complete = queue.is_empty();
        let mut guard = self.fields.lock().expect("cache lock");
        let inner = &mut *guard;
        if inner.stamp != state.occupancy_stamp() {
            // The stamp advanced while we computed: the field belongs
            // to a dead generation — recycle the buffers.
            inner.pool.push(buf);
            queue.clear();
            inner.queue_pool.push(queue);
        } else if complete {
            inner.by_start.insert(key, FieldEntry::Full(Arc::new(buf)));
            inner.queue_pool.push(queue);
        } else {
            inner
                .by_start
                .insert(key, FieldEntry::Partial { dist: buf, queue });
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Total sites settled by BFS work through this cache since
    /// construction — bounded queries settle a frontier, full fields
    /// settle every reachable site.
    pub fn sites_settled(&self) -> u64 {
        self.settled.load(Ordering::Relaxed)
    }

    /// Number of fields currently cached (full or partial).
    pub fn len(&self) -> usize {
        self.fields.lock().expect("cache lock").by_start.len()
    }

    /// Returns `true` when no field is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything a [`crate::route::Router`] may consult while proposing
/// candidates: the (mutable, journal-simulatable) mapping state, the
/// interaction geometry (disc + CSR table), and the scratch arena with
/// its distance cache.
///
/// Candidate simulation happens **in place** on the borrowed state via
/// the [`StateJournal`]; the engine asserts the journal is fully rolled
/// back when `propose` returns, so the state routers observe between
/// rounds is always the committed one.
#[derive(Debug)]
pub struct RoutingContext<'a> {
    state: &'a mut MappingState,
    hood_int: &'a Neighborhood,
    table_int: &'a NeighborTable,
    r_int: f64,
    scratch: &'a mut RouteScratch,
}

/// A split borrow of a [`RoutingContext`]: the state and journal for
/// in-place speculation next to the per-router scratch tables, all
/// simultaneously borrowable because they are disjoint fields. Cache
/// queries stay on [`RoutingContext`] itself (they are only legal
/// outside speculation, which the context asserts).
pub(crate) struct RouteParts<'b> {
    pub state: &'b mut MappingState,
    pub journal: &'b mut StateJournal,
    pub gate: &'b mut GateBufs,
    pub shuttle: &'b mut ShuttleBufs,
    pub table_int: &'b NeighborTable,
}

impl<'a> RoutingContext<'a> {
    /// Bundles `state` with the engine's geometry and the scratch
    /// arena. `table` must be the CSR adjacency of `state`'s lattice at
    /// radius `r_int` (debug-asserted).
    pub fn new(
        state: &'a mut MappingState,
        hood_int: &'a Neighborhood,
        table_int: &'a NeighborTable,
        r_int: f64,
        scratch: &'a mut RouteScratch,
    ) -> Self {
        debug_assert!(
            table_int.matches(state.lattice(), r_int),
            "CSR table does not describe this lattice/radius"
        );
        RoutingContext {
            state,
            hood_int,
            table_int,
            r_int,
            scratch,
        }
    }

    /// The current mapping state.
    #[inline]
    pub fn state(&self) -> &MappingState {
        self.state
    }

    /// The interaction neighborhood (offsets within `r_int`).
    #[inline]
    pub fn interaction_neighborhood(&self) -> &Neighborhood {
        self.hood_int
    }

    /// The CSR adjacency of the lattice at `r_int`.
    #[inline]
    pub fn interaction_table(&self) -> &NeighborTable {
        self.table_int
    }

    /// The interaction radius.
    #[inline]
    pub fn r_int(&self) -> f64 {
        self.r_int
    }

    /// `true` while a speculative candidate simulation is in flight.
    #[inline]
    pub fn speculation_in_flight(&self) -> bool {
        self.scratch.speculation_in_flight()
    }

    /// Splits the context into simultaneously borrowable parts.
    pub(crate) fn parts(&mut self) -> RouteParts<'_> {
        RouteParts {
            state: self.state,
            journal: &mut self.scratch.journal,
            gate: &mut self.scratch.gate,
            shuttle: &mut self.scratch.shuttle,
            table_int: self.table_int,
        }
    }

    /// Cached BFS distance field from `start` (must be occupied) through
    /// the occupied interaction graph. Must not be called while a
    /// speculative simulation is in flight (debug-asserted) — see the
    /// [module docs](self).
    pub fn distances_from(&self, start: Site) -> Arc<Vec<u32>> {
        debug_assert!(
            !self.speculation_in_flight(),
            "distance cache queried during speculative simulation"
        );
        self.scratch.cache.field(self.state, self.table_int, start)
    }

    /// Cached BFS distance field from the atom carrying `q`.
    pub fn distances_from_qubit(&self, q: Qubit) -> Arc<Vec<u32>> {
        self.distances_from(self.state.site_of_qubit(q))
    }

    /// Target-bounded hop distances from `start` to each of `targets`,
    /// written into `out` — settles only the BFS frontier the targets
    /// require (resumable; see [`DistanceCache::distances_at`]). Same
    /// speculation contract as [`RoutingContext::distances_from`].
    pub fn distances_to(&self, start: Site, targets: &[Site], out: &mut Vec<u32>) {
        debug_assert!(
            !self.speculation_in_flight(),
            "distance cache queried during speculative simulation"
        );
        self.scratch
            .cache
            .distances_at(self.state, self.table_int, start, targets, out);
    }

    /// Fractional SWAP distance between the sites of two qubits.
    pub fn qubit_swap_distance(&self, a: Qubit, b: Qubit) -> f64 {
        swap_distance(
            self.state.site_of_qubit(a),
            self.state.site_of_qubit(b),
            self.r_int,
        )
    }

    /// Remaining routing distance of a gate on `qubits` (zero iff
    /// executable).
    pub fn gate_remaining_distance(&self, qubits: &[Qubit]) -> f64 {
        gate_remaining_distance(self.state, qubits, self.r_int)
    }

    /// Euclidean centroid of the sites carrying `qubits` (fractional
    /// lattice coordinates).
    pub fn centroid_of(&self, qubits: &[Qubit]) -> (f64, f64) {
        centroid_of(self.state, qubits)
    }

    /// Squared Euclidean distance from a fractional point to a site.
    pub fn dist_sq_to(point: (f64, f64), s: Site) -> f64 {
        let dx = f64::from(s.x) - point.0;
        let dy = f64::from(s.y) - point.1;
        dx * dx + dy * dy
    }
}

/// Euclidean centroid of the sites carrying `qubits` — the single
/// definition behind [`RoutingContext::centroid_of`] and the shuttle
/// router's fallback anchor ordering.
pub(crate) fn centroid_of(state: &MappingState, qubits: &[Qubit]) -> (f64, f64) {
    let mut x = 0.0;
    let mut y = 0.0;
    for &q in qubits {
        let s = state.site_of_qubit(q);
        x += f64::from(s.x);
        y += f64::from(s.y);
    }
    let n = qubits.len() as f64;
    (x / n, y / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AtomId;
    use crate::route::distance::bfs_occupied;
    use na_arch::HardwareParams;

    fn setup() -> (MappingState, Neighborhood, NeighborTable) {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(5, 3.0)
            .num_atoms(20)
            .build()
            .expect("valid");
        let state = MappingState::identity(&params, 20).expect("fits");
        let hood = Neighborhood::new(params.r_int);
        let table = NeighborTable::build(state.lattice(), &hood);
        (state, hood, table)
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (state, _, table) = setup();
        let cache = DistanceCache::new();
        let a = cache.field(&state, &table, Site::new(0, 0));
        let b = cache.field(&state, &table, Site::new(0, 0));
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn swaps_do_not_invalidate() {
        let (mut state, _, table) = setup();
        let cache = DistanceCache::new();
        cache.field(&state, &table, Site::new(0, 0));
        state.apply_swap(AtomId(0), AtomId(5));
        cache.field(&state, &table, Site::new(0, 0));
        assert_eq!(cache.stats(), (1, 1), "swap must not clear the cache");
    }

    #[test]
    fn moves_invalidate() {
        let (mut state, _, table) = setup();
        let cache = DistanceCache::new();
        let before = cache.field(&state, &table, Site::new(0, 0));
        // Break the occupied path along row 0: move (1,0) far away.
        let target = Site::new(4, 4);
        assert!(state.is_free(target));
        state.apply_move(AtomId(1), target);
        let after = cache.field(&state, &table, Site::new(0, 0));
        assert_eq!(cache.stats(), (0, 2), "move must recompute");
        assert_ne!(before, after);
    }

    #[test]
    fn journaled_undo_preserves_cached_fields() {
        // The cache-preserving invariant of the refactor: speculate,
        // undo, query again — the original field must still be served
        // from cache (no recompute, no clear).
        let (mut state, _, table) = setup();
        let cache = DistanceCache::new();
        let before = cache.field(&state, &table, Site::new(0, 0));
        let mut journal = StateJournal::new();
        let mark = journal.mark();
        state.apply_move_journaled(AtomId(1), Site::new(4, 4), &mut journal);
        state.apply_swap_journaled(AtomId(2), AtomId(3), &mut journal);
        state.undo_to(&mut journal, mark);
        let after = cache.field(&state, &table, Site::new(0, 0));
        assert_eq!(before, after);
        assert_eq!(cache.stats(), (1, 1), "undo must leave the field warm");
    }

    #[test]
    fn distinct_states_never_alias() {
        // Two states that happen to have seen the same number of moves
        // must not share cached fields (stamps are process-unique).
        let (state_a, _, table) = setup();
        let mut state_b = setup().0;
        state_b.apply_move(AtomId(1), Site::new(4, 4));
        let cache = DistanceCache::new();
        let from_a = cache.field(&state_a, &table, Site::new(0, 0));
        let from_b = cache.field(&state_b, &table, Site::new(0, 0));
        assert_eq!(cache.stats(), (0, 2), "state switch must recompute");
        assert_ne!(from_a, from_b);
        // Clones diverge independently, so they get fresh stamps too.
        let clone = state_a.clone();
        assert_ne!(state_a.occupancy_stamp(), clone.occupancy_stamp());
    }

    #[test]
    fn cached_field_matches_direct_bfs() {
        let (mut state, hood, table) = setup();
        let mut scratch = RouteScratch::new();
        let reference = state.clone();
        let ctx = RoutingContext::new(&mut state, &hood, &table, hood.radius(), &mut scratch);
        for start in [Site::new(0, 0), Site::new(2, 1), Site::new(3, 3)] {
            let cached = ctx.distances_from(start);
            let direct = bfs_occupied(&reference, &[start], &hood);
            assert_eq!(*cached, direct);
        }
    }

    #[test]
    fn bounded_query_settles_frontier_then_resumes_to_full() {
        let (state, hood, table) = setup();
        let cache = DistanceCache::new();
        // Nearby target: only a frontier around the start settles.
        let mut out = Vec::new();
        cache.distances_at(
            &state,
            &table,
            Site::new(0, 0),
            &[Site::new(1, 0)],
            &mut out,
        );
        assert_eq!(out, vec![1]);
        let after_bounded = cache.sites_settled();
        assert!(
            (after_bounded as usize) < state.num_atoms(),
            "bounded query must not settle the whole occupied graph \
             ({after_bounded} settled)"
        );
        // Upgrading to the full field resumes the same search ...
        let full = cache.field(&state, &table, Site::new(0, 0));
        let reference = bfs_occupied(&state, &[Site::new(0, 0)], &hood);
        assert_eq!(*full, reference);
        // ... and total settle work equals one full BFS (every occupied
        // site settled exactly once across both calls).
        assert_eq!(cache.sites_settled() as usize, state.num_atoms());
    }

    #[test]
    fn bounded_query_served_from_partial_field_is_a_hit() {
        let (state, _, table) = setup();
        let cache = DistanceCache::new();
        let mut out = Vec::new();
        let far = Site::new(4, 3); // occupied (20 atoms on 5x5)
        cache.distances_at(&state, &table, Site::new(0, 0), &[far], &mut out);
        let (h0, m0) = cache.stats();
        assert_eq!((h0, m0), (0, 1));
        // A nearer target is already settled: no BFS, a hit.
        cache.distances_at(
            &state,
            &table,
            Site::new(0, 0),
            &[Site::new(1, 0)],
            &mut out,
        );
        assert_eq!(out, vec![1]);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn centroid_is_mean_of_sites() {
        let (mut state, hood, table) = setup();
        let mut scratch = RouteScratch::new();
        let ctx = RoutingContext::new(&mut state, &hood, &table, hood.radius(), &mut scratch);
        // Qubits 0 (0,0) and 2 (2,0).
        let (cx, cy) = ctx.centroid_of(&[Qubit(0), Qubit(2)]);
        assert_eq!((cx, cy), (1.0, 0.0));
    }
}
