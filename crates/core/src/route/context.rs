//! Per-round routing context with cached distance infrastructure.
//!
//! Both routers repeatedly need BFS distance fields through the occupied
//! interaction graph (multi-qubit position finding queries one field per
//! gate qubit, every routing round). Recomputing them ad hoc was the
//! hottest redundant work in the mapper: a SWAP permutes the qubit
//! mapping `f_q` but *never changes trap occupancy*, so every distance
//! field stays valid across arbitrarily many consecutive SWAP rounds.
//!
//! [`DistanceCache`] exploits exactly that invariant: fields are keyed by
//! start site and invalidated wholesale when
//! [`MappingState::occupancy_stamp`] changes (i.e. after *committed*
//! shuttle moves — stamps are process-unique per state, so querying with
//! a *different* state can never alias another state's fields). The
//! vectors of invalidated fields recycle through an internal pool, so
//! steady-state routing performs BFS into warm buffers instead of
//! allocating.
//!
//! Fields are **resumable**: a target-bounded query
//! ([`DistanceCache::distances_at`]) settles only the frontier needed to
//! answer it and parks the partial field (distances + live BFS queue) in
//! the cache; a later full-field request — or a bounded request about
//! farther targets — resumes the same search instead of starting over.
//! BFS expansion runs through the CSR [`NeighborTable`] rather than
//! per-visit `hood.around` geometry (see [`crate::route::distance`]).
//!
//! Speculative candidate simulation (see
//! [`crate::state::StateJournal`]) deliberately never queries the cache:
//! speculative moves re-stamp the state (so a query *would* be correct,
//! but would trash the committed-occupancy fields), and undo restores
//! the exact committed stamp — leaving every cached field valid. The
//! contract is enforced by a debug assertion in
//! [`RoutingContext::distances_from`].
//!
//! [`RoutingContext`] bundles the mutable mapping state, the interaction
//! geometry and the scratch arena ([`RouteScratch`]) and is handed to
//! every [`crate::route::Router::propose`] call.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use na_arch::{NeighborTable, Neighborhood, Site};
use na_circuit::Qubit;

use crate::route::distance::{
    bfs_drain_resume, bfs_drain_resume_sparse, bfs_occupied_table_into, gate_remaining_distance,
    region_bfs_into, swap_distance, CorridorMask, SparseDrain, UNREACHABLE,
};
use crate::route::scratch::{GateBufs, RouteScratch, ShuttleBufs};
use crate::state::{MappingState, StateJournal};

/// Cache of single-source BFS distance fields over the occupied
/// interaction graph, invalidated by occupancy stamp, with buffer
/// pooling across invalidations and resumable partially-settled fields.
///
/// In the routing hot path the cache lives inside a thread-exclusive
/// [`RouteScratch`], so the `Mutex` is always uncontended (its cost is
/// a few nanoseconds per lookup); it is kept so the type stays
/// `Send + Sync` for standalone callers that do share one cache across
/// threads. The lock is held only for map lookups/inserts and pool
/// exchange, never during a BFS.
#[derive(Debug, Default)]
pub struct DistanceCache {
    /// Fields plus the occupancy stamp they were computed at.
    fields: Mutex<StampedFields>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Total sites settled by BFS work through this cache — the
    /// bench-visible measure of how much lattice each query touched.
    settled: AtomicU64,
}

/// A cached BFS field in one of two lifecycles: fully drained (shared
/// immutably), or partially settled with its live frontier queue parked
/// for resumption. Partial fields store a **sparse settled-map** keyed
/// by dense site index — a bounded query that settles a dozen frontier
/// sites on a 100×100 lattice costs a dozen map entries, not a
/// 10,000-slot dense vector plus an `O(num_sites)` memset.
#[derive(Debug)]
enum FieldKind {
    /// Completed field — every reachable site settled, `UNREACHABLE`
    /// entries are final. Dense: full fields are indexed site-by-site
    /// in the routers' hot loops.
    Full(Arc<Vec<u32>>),
    /// Partially settled field: absent sites are merely *not yet*
    /// settled while `queue` is non-empty.
    Partial {
        dist: HashMap<u32, u32>,
        queue: VecDeque<u32>,
    },
}

/// A cached field plus its LRU clock reading (see
/// [`DistanceCache::MAX_RESIDENT_FIELDS`]).
#[derive(Debug)]
struct FieldEntry {
    kind: FieldKind,
    last_used: u64,
}

/// Start-site index → distance field, tagged with the occupancy stamp
/// the fields were computed at (0 = nothing cached yet; real stamps are
/// never zero). Retired field vectors, settled-maps and frontier queues
/// are pooled for reuse; the region-BFS scratch of corridor computation
/// lives here too so bounded queries stay allocation-free.
#[derive(Debug, Default)]
struct StampedFields {
    stamp: u64,
    by_start: HashMap<usize, FieldEntry>,
    pool: Vec<Vec<u32>>,
    sparse_pool: Vec<HashMap<u32, u32>>,
    queue_pool: Vec<VecDeque<u32>>,
    /// Monotone LRU clock; bumped on every publish or cache hit.
    use_clock: u64,
    /// Peak `by_start.len()` ever observed — the memory-bound metric
    /// guarded by the bench tier.
    peak_entries: u64,
    /// Entries evicted by the LRU cap.
    evictions: u64,
    /// Bounded queries that ran with a corridor mask.
    corridor_queries: u64,
    /// Bounded queries whose corridor actually pruned sites (or
    /// short-circuited to `UNREACHABLE` without any fine BFS).
    corridor_pruned: u64,
    /// Total regions entered by corridor-masked drains (the
    /// `regions_touched_per_query` numerator).
    regions_touched: u64,
    /// Region-BFS distance scratch of the current corridor.
    region_dist: Vec<u32>,
    region_queue: VecDeque<u32>,
    /// Seed buffer: regions of the pending targets.
    region_seeds: Vec<u32>,
    /// Per-region "seen in query N" stamps for region-touch counting.
    region_seen: Vec<u64>,
    /// Current query stamp for `region_seen`.
    qstamp: u64,
}

impl StampedFields {
    /// Retires every field of a stale stamp generation into the pools.
    fn retire_stale(&mut self, stamp: u64) {
        if self.stamp == stamp {
            return;
        }
        for (_, entry) in self.by_start.drain() {
            Self::recycle(
                entry.kind,
                &mut self.pool,
                &mut self.sparse_pool,
                &mut self.queue_pool,
            );
        }
        self.stamp = stamp;
    }

    /// Returns a retired field's buffers to the pools (a full field
    /// only when no outstanding `Arc` still shares it).
    fn recycle(
        kind: FieldKind,
        pool: &mut Vec<Vec<u32>>,
        sparse_pool: &mut Vec<HashMap<u32, u32>>,
        queue_pool: &mut Vec<VecDeque<u32>>,
    ) {
        match kind {
            FieldKind::Full(field) => {
                if let Ok(v) = Arc::try_unwrap(field) {
                    pool.push(v);
                }
            }
            FieldKind::Partial {
                mut dist,
                mut queue,
            } => {
                dist.clear();
                sparse_pool.push(dist);
                queue.clear();
                queue_pool.push(queue);
            }
        }
    }

    /// Publishes an entry under the LRU clock and enforces
    /// [`DistanceCache::MAX_RESIDENT_FIELDS`] by evicting the
    /// least-recently-used entry while over the cap.
    fn publish(&mut self, key: usize, kind: FieldKind) {
        self.use_clock += 1;
        self.by_start.insert(
            key,
            FieldEntry {
                kind,
                last_used: self.use_clock,
            },
        );
        while self.by_start.len() > DistanceCache::MAX_RESIDENT_FIELDS {
            let oldest = self
                .by_start
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty over cap");
            if let Some(entry) = self.by_start.remove(&oldest) {
                Self::recycle(
                    entry.kind,
                    &mut self.pool,
                    &mut self.sparse_pool,
                    &mut self.queue_pool,
                );
            }
            self.evictions += 1;
        }
        self.peak_entries = self.peak_entries.max(self.by_start.len() as u64);
    }
}

/// Point-in-time snapshot of every [`DistanceCache`] counter — the
/// single struct the bench tier and the job layer serialize (see
/// `na-schedule`'s export module), so new counters only have to be
/// added in one place.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a cached (full or sufficiently settled
    /// partial) field.
    pub hits: u64,
    /// Queries that ran (or resumed) BFS work.
    pub misses: u64,
    /// Total sites settled by BFS work through the cache.
    pub sites_settled: u64,
    /// Entries evicted by the
    /// [`DistanceCache::MAX_RESIDENT_FIELDS`] LRU cap.
    pub evictions: u64,
    /// Peak number of simultaneously resident field entries.
    pub peak_entries: u64,
    /// Bounded queries that armed a region corridor (had at least one
    /// unsettled target).
    pub corridor_queries: u64,
    /// Corridor-armed queries whose corridor actually pruned — skipped
    /// region-unreachable sites, or answered `UNREACHABLE` outright
    /// from the region graph without any fine BFS.
    pub corridor_pruned: u64,
    /// Total distinct regions entered across all corridor-armed drains.
    pub regions_touched: u64,
}

impl CacheStats {
    /// Mean number of coarse regions a corridor-armed bounded query
    /// entered (`0.0` before any corridor query ran). On paper-sized
    /// lattices this stays near 1–2 while the region grid covers
    /// hundreds of regions — the coarse-to-fine locality win.
    pub fn regions_touched_per_query(&self) -> f64 {
        if self.corridor_queries == 0 {
            0.0
        } else {
            self.regions_touched as f64 / self.corridor_queries as f64
        }
    }
}

impl DistanceCache {
    /// The configured cap on resident field entries: publishing past
    /// the cap evicts the least-recently-used entry (its buffers return
    /// to the pools). Bounds cache memory at
    /// `MAX_RESIDENT_FIELDS × num_sites × 4 B` worst case regardless of
    /// how many distinct sources a mega-scale circuit queries —
    /// ~10 MiB on a 100×100 lattice instead of one dense field per
    /// atom. Peak residency is observable via
    /// [`DistanceCache::snapshot`] and guarded by the bench tier.
    pub const MAX_RESIDENT_FIELDS: usize = 256;

    /// An empty cache.
    pub fn new() -> Self {
        DistanceCache::default()
    }

    /// The complete BFS distance field from `start` through occupied
    /// sites of `state`, computing — or *resuming* a partially settled
    /// field — on first use per occupancy stamp. Computation reuses
    /// pooled buffers from previously invalidated generations.
    pub fn field(&self, state: &MappingState, table: &NeighborTable, start: Site) -> Arc<Vec<u32>> {
        let key = state.lattice().index(start);
        let (mut buf, mut queue, sparse);
        {
            let mut guard = self.fields.lock().expect("cache lock");
            let inner = &mut *guard;
            inner.retire_stale(state.occupancy_stamp());
            match inner.by_start.remove(&key) {
                Some(FieldEntry {
                    kind: FieldKind::Full(field),
                    ..
                }) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let out = Arc::clone(&field);
                    inner.use_clock += 1;
                    let last_used = inner.use_clock;
                    inner.by_start.insert(
                        key,
                        FieldEntry {
                            kind: FieldKind::Full(field),
                            last_used,
                        },
                    );
                    return out;
                }
                Some(FieldEntry {
                    kind: FieldKind::Partial { dist, queue: q },
                    ..
                }) => {
                    buf = inner.pool.pop().unwrap_or_default();
                    queue = q;
                    sparse = Some(dist);
                }
                None => {
                    buf = inner.pool.pop().unwrap_or_default();
                    queue = inner.queue_pool.pop().unwrap_or_default();
                    sparse = None;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let settled = if let Some(map) = &sparse {
            // Promote the sparse partial field to a dense one and
            // resume its parked frontier to completion.
            buf.clear();
            buf.resize(state.lattice().num_sites(), UNREACHABLE);
            for (&site, &d) in map {
                buf[site as usize] = d;
            }
            bfs_drain_resume(state, table, &mut buf, &mut queue, &[])
        } else {
            bfs_occupied_table_into(state, &[start], table, &mut buf, &mut queue)
        };
        self.settled.fetch_add(settled as u64, Ordering::Relaxed);
        let field = Arc::new(buf);
        let mut guard = self.fields.lock().expect("cache lock");
        let inner = &mut *guard;
        // Another thread may have advanced the stamp while we computed;
        // only publish a field for the stamp it belongs to.
        if inner.stamp == state.occupancy_stamp() {
            inner.publish(key, FieldKind::Full(Arc::clone(&field)));
        }
        inner.queue_pool.push(queue);
        if let Some(mut map) = sparse {
            map.clear();
            inner.sparse_pool.push(map);
        }
        field
    }

    /// Target-bounded distance query: writes the hop distance from
    /// `start` to each site of `targets` into `out` (parallel to
    /// `targets`, `UNREACHABLE` for disconnected ones), running — or
    /// resuming — only as much BFS as the targets require. The partially
    /// settled field stays cached for later queries of the same
    /// occupancy generation.
    ///
    /// Queries are **coarse-to-fine**: a region-level BFS over the
    /// lattice's [`na_arch::RegionGrid`] runs first (hundreds of
    /// regions, not thousands of sites), and the fine BFS is restricted
    /// to the corridor of regions that can lie on a path to a pending
    /// target. Because region distance lower-bounds fine distance (see
    /// [`region_bfs_into`]), the pruning is *admissible*: every
    /// returned distance — including `UNREACHABLE` — is exactly what
    /// the unpruned [`bfs_occupied_bounded_into`] would report. On a
    /// connected lattice the corridor never prunes (every region
    /// reaches every other), so results, settle counts and hit/miss
    /// accounting are identical to the unpruned path; on disconnected
    /// topologies (zoned lattices whose gap exceeds the interaction
    /// radius) an unreachable-target query short-circuits at the region
    /// level instead of flooding the start's whole component.
    ///
    /// [`bfs_occupied_bounded_into`]: crate::route::distance::bfs_occupied_bounded_into
    pub fn distances_at(
        &self,
        state: &MappingState,
        table: &NeighborTable,
        start: Site,
        targets: &[Site],
        out: &mut Vec<u32>,
    ) {
        let lattice = state.lattice();
        let key = lattice.index(start);
        out.clear();
        let (mut dist, mut queue, fresh);
        let (mut region_dist, mut region_queue, mut region_seeds, mut region_seen, qstamp);
        {
            let mut guard = self.fields.lock().expect("cache lock");
            let inner = &mut *guard;
            inner.retire_stale(state.occupancy_stamp());
            match inner.by_start.remove(&key) {
                Some(FieldEntry {
                    kind: FieldKind::Full(field),
                    ..
                }) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    out.extend(targets.iter().map(|&t| field[lattice.index(t)]));
                    inner.use_clock += 1;
                    let last_used = inner.use_clock;
                    inner.by_start.insert(
                        key,
                        FieldEntry {
                            kind: FieldKind::Full(field),
                            last_used,
                        },
                    );
                    return;
                }
                Some(FieldEntry {
                    kind: FieldKind::Partial { dist: d, queue: q },
                    ..
                }) => {
                    // Already settled everywhere we need? Serve without
                    // resuming (settled entries of a partial field are
                    // final).
                    if targets
                        .iter()
                        .all(|&t| d.contains_key(&(lattice.index(t) as u32)))
                    {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        out.extend(targets.iter().map(|&t| d[&(lattice.index(t) as u32)]));
                        inner.use_clock += 1;
                        let last_used = inner.use_clock;
                        inner.by_start.insert(
                            key,
                            FieldEntry {
                                kind: FieldKind::Partial { dist: d, queue: q },
                                last_used,
                            },
                        );
                        return;
                    }
                    dist = d;
                    queue = q;
                    fresh = false;
                }
                None => {
                    dist = inner.sparse_pool.pop().unwrap_or_default();
                    queue = inner.queue_pool.pop().unwrap_or_default();
                    fresh = true;
                }
            }
            // Borrow the corridor scratch out of the lock for the
            // drain; returned (and counters folded in) at publish time.
            region_dist = std::mem::take(&mut inner.region_dist);
            region_queue = std::mem::take(&mut inner.region_queue);
            region_seeds = std::mem::take(&mut inner.region_seeds);
            region_seen = std::mem::take(&mut inner.region_seen);
            inner.qstamp += 1;
            qstamp = inner.qstamp;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if fresh {
            dist.clear();
            queue.clear();
            dist.insert(key as u32, 0);
            queue.push_back(key as u32);
            self.settled.fetch_add(1, Ordering::Relaxed);
        }
        // Coarse pass: region-BFS from the pending targets' regions.
        let grid = table.regions();
        region_seeds.clear();
        for &t in targets {
            let idx = lattice.index(t);
            if !dist.contains_key(&(idx as u32)) {
                region_seeds.push(grid.region_of(idx));
            }
        }
        let armed = !region_seeds.is_empty();
        let mut drain = SparseDrain::default();
        let mut region_shortcut = false;
        if armed {
            region_bfs_into(grid, &region_seeds, &mut region_dist, &mut region_queue);
            if region_seen.len() < grid.num_regions() {
                region_seen.resize(grid.num_regions(), 0);
            }
            if region_dist[grid.region_of(key) as usize] == UNREACHABLE {
                // The start's region cannot reach any pending target's
                // region, so no fine path exists either (admissible
                // lower bound): answer UNREACHABLE without touching the
                // fine lattice, leaving the parked field untouched.
                region_shortcut = true;
            } else {
                let corridor = CorridorMask {
                    grid,
                    to_targets: &region_dist,
                };
                drain = bfs_drain_resume_sparse(
                    state,
                    table,
                    &mut dist,
                    &mut queue,
                    targets,
                    &corridor,
                    &mut region_seen,
                    qstamp,
                );
            }
        }
        self.settled
            .fetch_add(drain.settled as u64, Ordering::Relaxed);
        out.extend(targets.iter().map(|&t| {
            dist.get(&(lattice.index(t) as u32))
                .copied()
                .unwrap_or(UNREACHABLE)
        }));
        let complete = queue.is_empty();
        let mut guard = self.fields.lock().expect("cache lock");
        let inner = &mut *guard;
        inner.region_dist = region_dist;
        inner.region_queue = region_queue;
        inner.region_seeds = region_seeds;
        inner.region_seen = region_seen;
        if armed {
            inner.corridor_queries += 1;
            inner.regions_touched += u64::from(drain.regions_touched);
            if drain.pruned || region_shortcut {
                inner.corridor_pruned += 1;
            }
        }
        if inner.stamp != state.occupancy_stamp() || drain.pruned {
            // Recycle rather than park: either the stamp advanced while
            // we computed (dead generation), or the corridor pruned —
            // a pruned frontier is only exact for *this* query's
            // targets and must not be resumed under different ones.
            dist.clear();
            inner.sparse_pool.push(dist);
            queue.clear();
            inner.queue_pool.push(queue);
        } else if complete {
            // The frontier is exhausted without pruning: every
            // reachable site is settled — promote to a dense full
            // field so later full-field requests hit outright.
            let mut buf = inner.pool.pop().unwrap_or_default();
            buf.clear();
            buf.resize(lattice.num_sites(), UNREACHABLE);
            for (&site, &d) in &dist {
                buf[site as usize] = d;
            }
            inner.publish(key, FieldKind::Full(Arc::new(buf)));
            dist.clear();
            inner.sparse_pool.push(dist);
            queue.clear();
            inner.queue_pool.push(queue);
        } else {
            inner.publish(key, FieldKind::Partial { dist, queue });
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of every cache counter — hit/miss/settle totals plus
    /// the memory-bound (evictions, peak residency) and coarse-to-fine
    /// (corridor) statistics.
    pub fn snapshot(&self) -> CacheStats {
        let inner = self.fields.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sites_settled: self.settled.load(Ordering::Relaxed),
            evictions: inner.evictions,
            peak_entries: inner.peak_entries,
            corridor_queries: inner.corridor_queries,
            corridor_pruned: inner.corridor_pruned,
            regions_touched: inner.regions_touched,
        }
    }

    /// Total sites settled by BFS work through this cache since
    /// construction — bounded queries settle a frontier, full fields
    /// settle every reachable site.
    pub fn sites_settled(&self) -> u64 {
        self.settled.load(Ordering::Relaxed)
    }

    /// Number of fields currently cached (full or partial).
    pub fn len(&self) -> usize {
        self.fields.lock().expect("cache lock").by_start.len()
    }

    /// Returns `true` when no field is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything a [`crate::route::Router`] may consult while proposing
/// candidates: the (mutable, journal-simulatable) mapping state, the
/// interaction geometry (disc + CSR table), and the scratch arena with
/// its distance cache.
///
/// Candidate simulation happens **in place** on the borrowed state via
/// the [`StateJournal`]; the engine asserts the journal is fully rolled
/// back when `propose` returns, so the state routers observe between
/// rounds is always the committed one.
#[derive(Debug)]
pub struct RoutingContext<'a> {
    state: &'a mut MappingState,
    hood_int: &'a Neighborhood,
    table_int: &'a NeighborTable,
    r_int: f64,
    scratch: &'a mut RouteScratch,
}

/// A split borrow of a [`RoutingContext`]: the state and journal for
/// in-place speculation next to the per-router scratch tables, all
/// simultaneously borrowable because they are disjoint fields. Cache
/// queries stay on [`RoutingContext`] itself (they are only legal
/// outside speculation, which the context asserts).
pub(crate) struct RouteParts<'b> {
    pub state: &'b mut MappingState,
    pub journal: &'b mut StateJournal,
    pub gate: &'b mut GateBufs,
    pub shuttle: &'b mut ShuttleBufs,
    pub table_int: &'b NeighborTable,
}

impl<'a> RoutingContext<'a> {
    /// Bundles `state` with the engine's geometry and the scratch
    /// arena. `table` must be the CSR adjacency of `state`'s lattice at
    /// radius `r_int` (debug-asserted).
    pub fn new(
        state: &'a mut MappingState,
        hood_int: &'a Neighborhood,
        table_int: &'a NeighborTable,
        r_int: f64,
        scratch: &'a mut RouteScratch,
    ) -> Self {
        debug_assert!(
            table_int.matches(state.lattice(), r_int),
            "CSR table does not describe this lattice/radius"
        );
        RoutingContext {
            state,
            hood_int,
            table_int,
            r_int,
            scratch,
        }
    }

    /// The current mapping state.
    #[inline]
    pub fn state(&self) -> &MappingState {
        self.state
    }

    /// The interaction neighborhood (offsets within `r_int`).
    #[inline]
    pub fn interaction_neighborhood(&self) -> &Neighborhood {
        self.hood_int
    }

    /// The CSR adjacency of the lattice at `r_int`.
    #[inline]
    pub fn interaction_table(&self) -> &NeighborTable {
        self.table_int
    }

    /// The interaction radius.
    #[inline]
    pub fn r_int(&self) -> f64 {
        self.r_int
    }

    /// `true` while a speculative candidate simulation is in flight.
    #[inline]
    pub fn speculation_in_flight(&self) -> bool {
        self.scratch.speculation_in_flight()
    }

    /// Splits the context into simultaneously borrowable parts.
    pub(crate) fn parts(&mut self) -> RouteParts<'_> {
        RouteParts {
            state: self.state,
            journal: &mut self.scratch.journal,
            gate: &mut self.scratch.gate,
            shuttle: &mut self.scratch.shuttle,
            table_int: self.table_int,
        }
    }

    /// Cached BFS distance field from `start` (must be occupied) through
    /// the occupied interaction graph. Must not be called while a
    /// speculative simulation is in flight (debug-asserted) — see the
    /// [module docs](self).
    pub fn distances_from(&self, start: Site) -> Arc<Vec<u32>> {
        debug_assert!(
            !self.speculation_in_flight(),
            "distance cache queried during speculative simulation"
        );
        self.scratch.cache.field(self.state, self.table_int, start)
    }

    /// Cached BFS distance field from the atom carrying `q`.
    pub fn distances_from_qubit(&self, q: Qubit) -> Arc<Vec<u32>> {
        self.distances_from(self.state.site_of_qubit(q))
    }

    /// Target-bounded hop distances from `start` to each of `targets`,
    /// written into `out` — settles only the BFS frontier the targets
    /// require (resumable; see [`DistanceCache::distances_at`]). Same
    /// speculation contract as [`RoutingContext::distances_from`].
    pub fn distances_to(&self, start: Site, targets: &[Site], out: &mut Vec<u32>) {
        debug_assert!(
            !self.speculation_in_flight(),
            "distance cache queried during speculative simulation"
        );
        self.scratch
            .cache
            .distances_at(self.state, self.table_int, start, targets, out);
    }

    /// Fractional SWAP distance between the sites of two qubits.
    pub fn qubit_swap_distance(&self, a: Qubit, b: Qubit) -> f64 {
        swap_distance(
            self.state.site_of_qubit(a),
            self.state.site_of_qubit(b),
            self.r_int,
        )
    }

    /// Remaining routing distance of a gate on `qubits` (zero iff
    /// executable).
    pub fn gate_remaining_distance(&self, qubits: &[Qubit]) -> f64 {
        gate_remaining_distance(self.state, qubits, self.r_int)
    }

    /// Euclidean centroid of the sites carrying `qubits` (fractional
    /// lattice coordinates).
    pub fn centroid_of(&self, qubits: &[Qubit]) -> (f64, f64) {
        centroid_of(self.state, qubits)
    }

    /// Squared Euclidean distance from a fractional point to a site.
    pub fn dist_sq_to(point: (f64, f64), s: Site) -> f64 {
        let dx = f64::from(s.x) - point.0;
        let dy = f64::from(s.y) - point.1;
        dx * dx + dy * dy
    }
}

/// Euclidean centroid of the sites carrying `qubits` — the single
/// definition behind [`RoutingContext::centroid_of`] and the shuttle
/// router's fallback anchor ordering.
pub(crate) fn centroid_of(state: &MappingState, qubits: &[Qubit]) -> (f64, f64) {
    let mut x = 0.0;
    let mut y = 0.0;
    for &q in qubits {
        let s = state.site_of_qubit(q);
        x += f64::from(s.x);
        y += f64::from(s.y);
    }
    let n = qubits.len() as f64;
    (x / n, y / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AtomId;
    use crate::route::distance::bfs_occupied;
    use na_arch::HardwareParams;

    fn setup() -> (MappingState, Neighborhood, NeighborTable) {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(5, 3.0)
            .num_atoms(20)
            .build()
            .expect("valid");
        let state = MappingState::identity(&params, 20).expect("fits");
        let hood = Neighborhood::new(params.r_int);
        let table = NeighborTable::build(state.lattice(), &hood);
        (state, hood, table)
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (state, _, table) = setup();
        let cache = DistanceCache::new();
        let a = cache.field(&state, &table, Site::new(0, 0));
        let b = cache.field(&state, &table, Site::new(0, 0));
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn swaps_do_not_invalidate() {
        let (mut state, _, table) = setup();
        let cache = DistanceCache::new();
        cache.field(&state, &table, Site::new(0, 0));
        state.apply_swap(AtomId(0), AtomId(5));
        cache.field(&state, &table, Site::new(0, 0));
        assert_eq!(cache.stats(), (1, 1), "swap must not clear the cache");
    }

    #[test]
    fn moves_invalidate() {
        let (mut state, _, table) = setup();
        let cache = DistanceCache::new();
        let before = cache.field(&state, &table, Site::new(0, 0));
        // Break the occupied path along row 0: move (1,0) far away.
        let target = Site::new(4, 4);
        assert!(state.is_free(target));
        state.apply_move(AtomId(1), target);
        let after = cache.field(&state, &table, Site::new(0, 0));
        assert_eq!(cache.stats(), (0, 2), "move must recompute");
        assert_ne!(before, after);
    }

    #[test]
    fn journaled_undo_preserves_cached_fields() {
        // The cache-preserving invariant of the refactor: speculate,
        // undo, query again — the original field must still be served
        // from cache (no recompute, no clear).
        let (mut state, _, table) = setup();
        let cache = DistanceCache::new();
        let before = cache.field(&state, &table, Site::new(0, 0));
        let mut journal = StateJournal::new();
        let mark = journal.mark();
        state.apply_move_journaled(AtomId(1), Site::new(4, 4), &mut journal);
        state.apply_swap_journaled(AtomId(2), AtomId(3), &mut journal);
        state.undo_to(&mut journal, mark);
        let after = cache.field(&state, &table, Site::new(0, 0));
        assert_eq!(before, after);
        assert_eq!(cache.stats(), (1, 1), "undo must leave the field warm");
    }

    #[test]
    fn distinct_states_never_alias() {
        // Two states that happen to have seen the same number of moves
        // must not share cached fields (stamps are process-unique).
        let (state_a, _, table) = setup();
        let mut state_b = setup().0;
        state_b.apply_move(AtomId(1), Site::new(4, 4));
        let cache = DistanceCache::new();
        let from_a = cache.field(&state_a, &table, Site::new(0, 0));
        let from_b = cache.field(&state_b, &table, Site::new(0, 0));
        assert_eq!(cache.stats(), (0, 2), "state switch must recompute");
        assert_ne!(from_a, from_b);
        // Clones diverge independently, so they get fresh stamps too.
        let clone = state_a.clone();
        assert_ne!(state_a.occupancy_stamp(), clone.occupancy_stamp());
    }

    #[test]
    fn cached_field_matches_direct_bfs() {
        let (mut state, hood, table) = setup();
        let mut scratch = RouteScratch::new();
        let reference = state.clone();
        let ctx = RoutingContext::new(&mut state, &hood, &table, hood.radius(), &mut scratch);
        for start in [Site::new(0, 0), Site::new(2, 1), Site::new(3, 3)] {
            let cached = ctx.distances_from(start);
            let direct = bfs_occupied(&reference, &[start], &hood);
            assert_eq!(*cached, direct);
        }
    }

    #[test]
    fn bounded_query_settles_frontier_then_resumes_to_full() {
        let (state, hood, table) = setup();
        let cache = DistanceCache::new();
        // Nearby target: only a frontier around the start settles.
        let mut out = Vec::new();
        cache.distances_at(
            &state,
            &table,
            Site::new(0, 0),
            &[Site::new(1, 0)],
            &mut out,
        );
        assert_eq!(out, vec![1]);
        let after_bounded = cache.sites_settled();
        assert!(
            (after_bounded as usize) < state.num_atoms(),
            "bounded query must not settle the whole occupied graph \
             ({after_bounded} settled)"
        );
        // Upgrading to the full field resumes the same search ...
        let full = cache.field(&state, &table, Site::new(0, 0));
        let reference = bfs_occupied(&state, &[Site::new(0, 0)], &hood);
        assert_eq!(*full, reference);
        // ... and total settle work equals one full BFS (every occupied
        // site settled exactly once across both calls).
        assert_eq!(cache.sites_settled() as usize, state.num_atoms());
    }

    #[test]
    fn bounded_query_served_from_partial_field_is_a_hit() {
        let (state, _, table) = setup();
        let cache = DistanceCache::new();
        let mut out = Vec::new();
        let far = Site::new(4, 3); // occupied (20 atoms on 5x5)
        cache.distances_at(&state, &table, Site::new(0, 0), &[far], &mut out);
        let (h0, m0) = cache.stats();
        assert_eq!((h0, m0), (0, 1));
        // A nearer target is already settled: no BFS, a hit.
        cache.distances_at(
            &state,
            &table,
            Site::new(0, 0),
            &[Site::new(1, 0)],
            &mut out,
        );
        assert_eq!(out, vec![1]);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn centroid_is_mean_of_sites() {
        let (mut state, hood, table) = setup();
        let mut scratch = RouteScratch::new();
        let ctx = RoutingContext::new(&mut state, &hood, &table, hood.radius(), &mut scratch);
        // Qubits 0 (0,0) and 2 (2,0).
        let (cx, cy) = ctx.centroid_of(&[Qubit(0), Qubit(2)]);
        assert_eq!((cx, cy), (1.0, 0.0));
    }
}
