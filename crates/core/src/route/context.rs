//! Per-round routing context with cached distance infrastructure.
//!
//! Both routers repeatedly need BFS distance fields through the occupied
//! interaction graph (multi-qubit position finding queries one field per
//! gate qubit, every routing round). Recomputing them ad hoc was the
//! hottest redundant work in the mapper: a SWAP permutes the qubit
//! mapping `f_q` but *never changes trap occupancy*, so every distance
//! field stays valid across arbitrarily many consecutive SWAP rounds.
//!
//! [`DistanceCache`] exploits exactly that invariant: fields are keyed by
//! start site and invalidated wholesale when
//! [`MappingState::occupancy_stamp`] changes (i.e. after *committed*
//! shuttle moves — stamps are process-unique per state, so querying with
//! a *different* state can never alias another state's fields). The
//! vectors of invalidated fields recycle through an internal pool, so
//! steady-state routing performs BFS into warm buffers instead of
//! allocating.
//!
//! Speculative candidate simulation (see
//! [`crate::state::StateJournal`]) deliberately never queries the cache:
//! speculative moves re-stamp the state (so a query *would* be correct,
//! but would trash the committed-occupancy fields), and undo restores
//! the exact committed stamp — leaving every cached field valid. The
//! contract is enforced by a debug assertion in
//! [`RoutingContext::distances_from`].
//!
//! [`RoutingContext`] bundles the mutable mapping state, the interaction
//! geometry and the scratch arena ([`RouteScratch`]) and is handed to
//! every [`crate::route::Router::propose`] call.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use na_arch::{Neighborhood, Site};
use na_circuit::Qubit;

use crate::route::distance::{bfs_occupied_into, gate_remaining_distance, swap_distance};
use crate::route::scratch::{GateBufs, RouteScratch, ShuttleBufs};
use crate::state::{MappingState, StateJournal};

/// Cache of single-source BFS distance fields over the occupied
/// interaction graph, invalidated by occupancy stamp, with buffer
/// pooling across invalidations.
///
/// In the routing hot path the cache lives inside a thread-exclusive
/// [`RouteScratch`], so the `Mutex` is always uncontended (its cost is
/// a few nanoseconds per lookup); it is kept so the type stays
/// `Send + Sync` for standalone callers that do share one cache across
/// threads. The lock is held only for map lookups/inserts and pool
/// exchange, never during a BFS.
#[derive(Debug, Default)]
pub struct DistanceCache {
    /// Fields plus the occupancy stamp they were computed at.
    fields: Mutex<StampedFields>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Start-site index → distance field, tagged with the occupancy stamp
/// the fields were computed at (0 = nothing cached yet; real stamps are
/// never zero). Retired field vectors and the BFS frontier queue are
/// pooled for reuse.
#[derive(Debug, Default)]
struct StampedFields {
    stamp: u64,
    by_start: HashMap<usize, Arc<Vec<u32>>>,
    pool: Vec<Vec<u32>>,
    queue: std::collections::VecDeque<Site>,
}

impl DistanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        DistanceCache::default()
    }

    /// The BFS distance field from `start` through occupied sites of
    /// `state`, computing and caching it on first use per occupancy
    /// stamp. Computation reuses pooled buffers from previously
    /// invalidated generations.
    pub fn field(&self, state: &MappingState, hood: &Neighborhood, start: Site) -> Arc<Vec<u32>> {
        let key = state.lattice().index(start);
        let (mut buf, mut queue);
        {
            let mut guard = self.fields.lock().expect("cache lock");
            let inner = &mut *guard;
            if inner.stamp != state.occupancy_stamp() {
                // Retire the stale generation into the buffer pool.
                for (_, field) in inner.by_start.drain() {
                    if let Ok(v) = Arc::try_unwrap(field) {
                        inner.pool.push(v);
                    }
                }
                inner.stamp = state.occupancy_stamp();
            } else if let Some(field) = inner.by_start.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(field);
            }
            buf = inner.pool.pop().unwrap_or_default();
            queue = std::mem::take(&mut inner.queue);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        bfs_occupied_into(state, &[start], hood, &mut buf, &mut queue);
        let field = Arc::new(buf);
        let mut guard = self.fields.lock().expect("cache lock");
        let inner = &mut *guard;
        // Another thread may have advanced the stamp while we computed;
        // only publish a field for the stamp it belongs to.
        if inner.stamp == state.occupancy_stamp() {
            inner.by_start.insert(key, Arc::clone(&field));
        }
        inner.queue = queue;
        field
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of fields currently cached.
    pub fn len(&self) -> usize {
        self.fields.lock().expect("cache lock").by_start.len()
    }

    /// Returns `true` when no field is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything a [`crate::route::Router`] may consult while proposing
/// candidates: the (mutable, journal-simulatable) mapping state, the
/// interaction geometry, and the scratch arena with its distance cache.
///
/// Candidate simulation happens **in place** on the borrowed state via
/// the [`StateJournal`]; the engine asserts the journal is fully rolled
/// back when `propose` returns, so the state routers observe between
/// rounds is always the committed one.
#[derive(Debug)]
pub struct RoutingContext<'a> {
    state: &'a mut MappingState,
    hood_int: &'a Neighborhood,
    r_int: f64,
    scratch: &'a mut RouteScratch,
}

/// A split borrow of a [`RoutingContext`]: the state and journal for
/// in-place speculation next to the per-router scratch tables, all
/// simultaneously borrowable because they are disjoint fields. Cache
/// queries stay on [`RoutingContext`] itself (they are only legal
/// outside speculation, which the context asserts).
pub(crate) struct RouteParts<'b> {
    pub state: &'b mut MappingState,
    pub journal: &'b mut StateJournal,
    pub gate: &'b mut GateBufs,
    pub shuttle: &'b mut ShuttleBufs,
    pub hood_int: &'b Neighborhood,
}

impl<'a> RoutingContext<'a> {
    /// Bundles `state` with the engine's geometry and the scratch
    /// arena.
    pub fn new(
        state: &'a mut MappingState,
        hood_int: &'a Neighborhood,
        r_int: f64,
        scratch: &'a mut RouteScratch,
    ) -> Self {
        RoutingContext {
            state,
            hood_int,
            r_int,
            scratch,
        }
    }

    /// The current mapping state.
    #[inline]
    pub fn state(&self) -> &MappingState {
        self.state
    }

    /// The interaction neighborhood (offsets within `r_int`).
    #[inline]
    pub fn interaction_neighborhood(&self) -> &Neighborhood {
        self.hood_int
    }

    /// The interaction radius.
    #[inline]
    pub fn r_int(&self) -> f64 {
        self.r_int
    }

    /// `true` while a speculative candidate simulation is in flight.
    #[inline]
    pub fn speculation_in_flight(&self) -> bool {
        self.scratch.speculation_in_flight()
    }

    /// Splits the context into simultaneously borrowable parts.
    pub(crate) fn parts(&mut self) -> RouteParts<'_> {
        RouteParts {
            state: self.state,
            journal: &mut self.scratch.journal,
            gate: &mut self.scratch.gate,
            shuttle: &mut self.scratch.shuttle,
            hood_int: self.hood_int,
        }
    }

    /// Cached BFS distance field from `start` (must be occupied) through
    /// the occupied interaction graph. Must not be called while a
    /// speculative simulation is in flight (debug-asserted) — see the
    /// [module docs](self).
    pub fn distances_from(&self, start: Site) -> Arc<Vec<u32>> {
        debug_assert!(
            !self.speculation_in_flight(),
            "distance cache queried during speculative simulation"
        );
        self.scratch.cache.field(self.state, self.hood_int, start)
    }

    /// Cached BFS distance field from the atom carrying `q`.
    pub fn distances_from_qubit(&self, q: Qubit) -> Arc<Vec<u32>> {
        self.distances_from(self.state.site_of_qubit(q))
    }

    /// Fractional SWAP distance between the sites of two qubits.
    pub fn qubit_swap_distance(&self, a: Qubit, b: Qubit) -> f64 {
        swap_distance(
            self.state.site_of_qubit(a),
            self.state.site_of_qubit(b),
            self.r_int,
        )
    }

    /// Remaining routing distance of a gate on `qubits` (zero iff
    /// executable).
    pub fn gate_remaining_distance(&self, qubits: &[Qubit]) -> f64 {
        gate_remaining_distance(self.state, qubits, self.r_int)
    }

    /// Euclidean centroid of the sites carrying `qubits` (fractional
    /// lattice coordinates).
    pub fn centroid_of(&self, qubits: &[Qubit]) -> (f64, f64) {
        centroid_of(self.state, qubits)
    }

    /// Squared Euclidean distance from a fractional point to a site.
    pub fn dist_sq_to(point: (f64, f64), s: Site) -> f64 {
        let dx = f64::from(s.x) - point.0;
        let dy = f64::from(s.y) - point.1;
        dx * dx + dy * dy
    }
}

/// Euclidean centroid of the sites carrying `qubits` — the single
/// definition behind [`RoutingContext::centroid_of`] and the shuttle
/// router's fallback anchor ordering.
pub(crate) fn centroid_of(state: &MappingState, qubits: &[Qubit]) -> (f64, f64) {
    let mut x = 0.0;
    let mut y = 0.0;
    for &q in qubits {
        let s = state.site_of_qubit(q);
        x += f64::from(s.x);
        y += f64::from(s.y);
    }
    let n = qubits.len() as f64;
    (x / n, y / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AtomId;
    use crate::route::distance::bfs_occupied;
    use na_arch::HardwareParams;

    fn setup() -> (MappingState, Neighborhood) {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(5, 3.0)
            .num_atoms(20)
            .build()
            .expect("valid");
        let state = MappingState::identity(&params, 20).expect("fits");
        (state, Neighborhood::new(params.r_int))
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (state, hood) = setup();
        let cache = DistanceCache::new();
        let a = cache.field(&state, &hood, Site::new(0, 0));
        let b = cache.field(&state, &hood, Site::new(0, 0));
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn swaps_do_not_invalidate() {
        let (mut state, hood) = setup();
        let cache = DistanceCache::new();
        cache.field(&state, &hood, Site::new(0, 0));
        state.apply_swap(AtomId(0), AtomId(5));
        cache.field(&state, &hood, Site::new(0, 0));
        assert_eq!(cache.stats(), (1, 1), "swap must not clear the cache");
    }

    #[test]
    fn moves_invalidate() {
        let (mut state, hood) = setup();
        let cache = DistanceCache::new();
        let before = cache.field(&state, &hood, Site::new(0, 0));
        // Break the occupied path along row 0: move (1,0) far away.
        let target = Site::new(4, 4);
        assert!(state.is_free(target));
        state.apply_move(AtomId(1), target);
        let after = cache.field(&state, &hood, Site::new(0, 0));
        assert_eq!(cache.stats(), (0, 2), "move must recompute");
        assert_ne!(before, after);
    }

    #[test]
    fn journaled_undo_preserves_cached_fields() {
        // The cache-preserving invariant of the refactor: speculate,
        // undo, query again — the original field must still be served
        // from cache (no recompute, no clear).
        let (mut state, hood) = setup();
        let cache = DistanceCache::new();
        let before = cache.field(&state, &hood, Site::new(0, 0));
        let mut journal = StateJournal::new();
        let mark = journal.mark();
        state.apply_move_journaled(AtomId(1), Site::new(4, 4), &mut journal);
        state.apply_swap_journaled(AtomId(2), AtomId(3), &mut journal);
        state.undo_to(&mut journal, mark);
        let after = cache.field(&state, &hood, Site::new(0, 0));
        assert_eq!(before, after);
        assert_eq!(cache.stats(), (1, 1), "undo must leave the field warm");
    }

    #[test]
    fn distinct_states_never_alias() {
        // Two states that happen to have seen the same number of moves
        // must not share cached fields (stamps are process-unique).
        let (state_a, hood) = setup();
        let mut state_b = setup().0;
        state_b.apply_move(AtomId(1), Site::new(4, 4));
        let cache = DistanceCache::new();
        let from_a = cache.field(&state_a, &hood, Site::new(0, 0));
        let from_b = cache.field(&state_b, &hood, Site::new(0, 0));
        assert_eq!(cache.stats(), (0, 2), "state switch must recompute");
        assert_ne!(from_a, from_b);
        // Clones diverge independently, so they get fresh stamps too.
        let clone = state_a.clone();
        assert_ne!(state_a.occupancy_stamp(), clone.occupancy_stamp());
    }

    #[test]
    fn cached_field_matches_direct_bfs() {
        let (mut state, hood) = setup();
        let mut scratch = RouteScratch::new();
        let reference = state.clone();
        let ctx = RoutingContext::new(&mut state, &hood, 1.0, &mut scratch);
        for start in [Site::new(0, 0), Site::new(2, 1), Site::new(3, 3)] {
            let cached = ctx.distances_from(start);
            let direct = bfs_occupied(&reference, &[start], &hood);
            assert_eq!(*cached, direct);
        }
    }

    #[test]
    fn centroid_is_mean_of_sites() {
        let (mut state, hood) = setup();
        let mut scratch = RouteScratch::new();
        let ctx = RoutingContext::new(&mut state, &hood, 1.0, &mut scratch);
        // Qubits 0 (0,0) and 2 (2,0).
        let (cx, cy) = ctx.centroid_of(&[Qubit(0), Qubit(2)]);
        assert_eq!((cx, cy), (1.0, 0.0));
    }
}
