//! Connectivity queries: BFS over the occupied-trap interaction graph and
//! SWAP-distance estimates.
//!
//! The connectivity graph `G = (P, E)` contains an edge between two atoms
//! whenever their Euclidean distance is at most `r_int` (paper §2.2).
//! Routing cost functions need two flavours of distance:
//!
//! * an exact hop distance through `G` (atoms only — SWAPs cannot route
//!   through empty traps), computed by [`bfs_occupied`]; used for
//!   multi-qubit position finding where feasibility matters,
//! * a fast closed-form estimate [`swap_distance`] used inside the hot
//!   cost loops: each SWAP moves a qubit by at most `r_int`, so a gate
//!   spanning Euclidean distance `d` needs about `d/r_int − 1` SWAPs.
//!   On the paper's near-full lattices (200 atoms on 225 traps) the
//!   estimate tracks the exact hop distance closely.
//!
//! These are the raw primitives; routers normally consume them through
//! the caching [`crate::route::RoutingContext`], which reuses BFS fields
//! across every round that leaves trap occupancy unchanged.
//!
//! Two scaling mechanisms keep the primitives sub-linear in lattice
//! size on paper-sized arrays:
//!
//! * **CSR adjacency** — [`bfs_occupied_table_into`] expands the
//!   frontier through a precomputed [`NeighborTable`] (dense neighbor
//!   slices) instead of recomputing `hood.around(s)` offset geometry and
//!   bounds checks at every visit,
//! * **target-bounded early exit** — [`bfs_occupied_bounded_into`]
//!   stops as soon as every *requested* target site is settled (BFS
//!   assigns final distances at enqueue time), so a query about a small
//!   target set touches a frontier, not the lattice. The partially
//!   computed field (plus its live frontier queue) remains resumable —
//!   the [`crate::route::DistanceCache`] exploits exactly that to
//!   upgrade bounded fields to full ones without repeating work.

use std::collections::{HashMap, VecDeque};

use na_arch::{NeighborTable, Neighborhood, RegionGrid, Site};
use na_circuit::Qubit;

use crate::state::MappingState;

/// Hop distance marker for unreachable sites.
pub const UNREACHABLE: u32 = u32::MAX;

/// Multi-source BFS over the coarse region adjacency graph of a
/// [`RegionGrid`]: writes region-graph hop distances from the seed
/// regions into `dist` (one entry per region, [`UNREACHABLE`] when no
/// region path exists).
///
/// Because every fine edge projects onto a region self-loop or a region
/// edge, the region distance between two sites' regions is an
/// **admissible lower bound** on their fine BFS distance — over the
/// full lattice and over any occupancy-restricted subgraph (occupancy
/// only removes fine edges, which grows fine distances but never
/// region distances). In particular, a region recorded `UNREACHABLE`
/// here provably cannot lie on *any* fine path to a seed region's
/// sites — the corridor-pruning criterion of the coarse-to-fine
/// bounded BFS.
pub fn region_bfs_into(
    grid: &RegionGrid,
    seeds: &[u32],
    dist: &mut Vec<u32>,
    queue: &mut VecDeque<u32>,
) {
    dist.clear();
    dist.resize(grid.num_regions(), UNREACHABLE);
    queue.clear();
    for &r in seeds {
        if dist[r as usize] != 0 {
            dist[r as usize] = 0;
            queue.push_back(r);
        }
    }
    while let Some(r) = queue.pop_front() {
        let d = dist[r as usize];
        for &n in grid.neighbors(r) {
            if dist[n as usize] == UNREACHABLE {
                dist[n as usize] = d + 1;
                queue.push_back(n);
            }
        }
    }
}

/// BFS hop distances from `starts` through occupied sites, where two
/// occupied sites are adjacent when within the neighborhood radius.
///
/// Returns a dense site-indexed vector; free sites and unreachable
/// occupied sites hold [`UNREACHABLE`]. Start sites must be occupied.
pub fn bfs_occupied(state: &MappingState, starts: &[Site], hood: &Neighborhood) -> Vec<u32> {
    let mut dist = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    bfs_occupied_into(state, starts, hood, &mut dist, &mut queue);
    dist
}

/// [`bfs_occupied`] writing into caller-provided buffers instead of
/// allocating: `dist` is resized/overwritten to one entry per lattice
/// site, `queue` is used as the BFS frontier and left empty. This is the
/// allocation-free primitive behind the pooled
/// [`crate::route::DistanceCache`].
pub fn bfs_occupied_into(
    state: &MappingState,
    starts: &[Site],
    hood: &Neighborhood,
    dist: &mut Vec<u32>,
    queue: &mut std::collections::VecDeque<Site>,
) {
    let lattice = state.lattice();
    dist.clear();
    dist.resize(lattice.num_sites(), UNREACHABLE);
    queue.clear();
    for &s in starts {
        debug_assert!(!state.is_free(s), "BFS start {s} must be occupied");
        let idx = lattice.index(s);
        if dist[idx] != 0 {
            dist[idx] = 0;
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        let d = dist[lattice.index(s)];
        for n in hood.around(s) {
            if !lattice.contains(n) || state.is_free(n) {
                continue;
            }
            let idx = lattice.index(n);
            if dist[idx] == UNREACHABLE {
                dist[idx] = d + 1;
                queue.push_back(n);
            }
        }
    }
}

/// [`bfs_occupied_into`] over a precomputed CSR [`NeighborTable`]: the
/// frontier queue holds dense site indices and each visit expands a
/// neighbor *slice* — no offset arithmetic, no bounds check, no
/// coordinate → index conversion per neighbor. Produces the identical
/// distance field (the table lists neighbors in the disc's order, and
/// BFS levels are order-independent). Returns the number of sites
/// settled (= reachable occupied sites, starts included).
pub fn bfs_occupied_table_into(
    state: &MappingState,
    starts: &[Site],
    table: &NeighborTable,
    dist: &mut Vec<u32>,
    queue: &mut VecDeque<u32>,
) -> usize {
    let lattice = state.lattice();
    dist.clear();
    dist.resize(lattice.num_sites(), UNREACHABLE);
    queue.clear();
    let mut settled = 0usize;
    for &s in starts {
        debug_assert!(!state.is_free(s), "BFS start {s} must be occupied");
        let idx = lattice.index(s);
        if dist[idx] != 0 {
            dist[idx] = 0;
            queue.push_back(idx as u32);
            settled += 1;
        }
    }
    settled + bfs_drain_resume(state, table, dist, queue, &[])
}

/// Target-bounded early-exit BFS over the CSR table: identical to
/// [`bfs_occupied_table_into`] on the *requested* target sites, but the
/// search stops as soon as every target is settled (assigned its final
/// hop distance — BFS settles a site the moment it is enqueued).
/// Unreached targets force the search to exhaustion, so `UNREACHABLE`
/// answers are exact too.
///
/// On return, `dist` holds final distances for every settled site and
/// `queue` holds the still-live frontier — the pair is resumable: the
/// internal drain continues the same BFS without repeating work (the
/// [`crate::route::DistanceCache`] upgrades bounded fields to full
/// ones exactly this way). Returns the number of sites settled, the
/// bench-visible measure of how much of the lattice the query touched.
pub fn bfs_occupied_bounded_into(
    state: &MappingState,
    starts: &[Site],
    table: &NeighborTable,
    targets: &[Site],
    dist: &mut Vec<u32>,
    queue: &mut VecDeque<u32>,
) -> usize {
    let lattice = state.lattice();
    dist.clear();
    dist.resize(lattice.num_sites(), UNREACHABLE);
    queue.clear();
    let mut settled = 0usize;
    for &s in starts {
        debug_assert!(!state.is_free(s), "BFS start {s} must be occupied");
        let idx = lattice.index(s);
        if dist[idx] != 0 {
            dist[idx] = 0;
            queue.push_back(idx as u32);
            settled += 1;
        }
    }
    settled + bfs_drain_resume(state, table, dist, queue, targets)
}

/// Continues a (possibly partial) BFS: drains `queue` until every site
/// of `targets` is settled in `dist`, or — with an empty target list —
/// until the frontier is exhausted (a full field). Returns the number of
/// sites newly settled by this drain.
///
/// `dist`/`queue` must come from a previous
/// [`bfs_occupied_table_into`]/[`bfs_occupied_bounded_into`] run (or
/// drain) against the same state and table.
pub(crate) fn bfs_drain_resume(
    state: &MappingState,
    table: &NeighborTable,
    dist: &mut [u32],
    queue: &mut VecDeque<u32>,
    targets: &[Site],
) -> usize {
    let lattice = state.lattice();
    let bounded = !targets.is_empty();
    // Pending distinct targets not yet settled; duplicates counted once
    // (target sets are tiny — gate operands or a hood — so the
    // quadratic dedup is noise).
    let mut pending = 0usize;
    if bounded {
        for (i, &t) in targets.iter().enumerate() {
            let idx = lattice.index(t);
            if dist[idx] != UNREACHABLE {
                continue;
            }
            if targets[..i].iter().any(|&u| lattice.index(u) == idx) {
                continue;
            }
            pending += 1;
        }
        if pending == 0 {
            return 0;
        }
    }
    let mut settled = 0usize;
    while let Some(idx) = queue.pop_front() {
        let d = dist[idx as usize];
        for &n in table.neighbors(idx as usize) {
            let n = n as usize;
            if state.atom_at_site_index(n).is_none() || dist[n] != UNREACHABLE {
                continue;
            }
            dist[n] = d + 1;
            queue.push_back(n as u32);
            settled += 1;
            if bounded && targets.contains(&lattice.site(n)) {
                pending -= 1;
                if pending == 0 {
                    // Early exit mid-slice: re-queue the node at the
                    // *front* (it still carries the smallest depth) so a
                    // later resume re-expands its remaining neighbors —
                    // already-settled ones are skipped, nothing is lost.
                    queue.push_front(idx);
                    return settled;
                }
            }
        }
    }
    settled
}

/// Corridor mask of one coarse-to-fine bounded query: the region grid
/// plus the region-BFS distance field seeded at the *pending target*
/// regions ([`region_bfs_into`]). A fine site whose region reads
/// [`UNREACHABLE`] here cannot lie on any fine path to a pending
/// target (see the admissibility note on [`region_bfs_into`]), so the
/// sparse drain skips it — pruning that is exact by construction.
pub(crate) struct CorridorMask<'a> {
    /// The coarse clustering of the fine table in use.
    pub grid: &'a RegionGrid,
    /// Region-graph distances from the pending targets' regions.
    pub to_targets: &'a [u32],
}

/// Outcome of one [`bfs_drain_resume_sparse`] drain.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SparseDrain {
    /// Sites newly settled by this drain.
    pub settled: usize,
    /// Distinct regions entered by newly settled sites.
    pub regions_touched: u32,
    /// Whether the corridor mask skipped at least one site. A pruned
    /// field must not be parked for resume under *different* targets —
    /// the skipped sites are only provably irrelevant to this query's
    /// pending targets.
    pub pruned: bool,
}

/// The sparse, corridor-pruned sibling of [`bfs_drain_resume`]: the
/// settled-distance map is a `HashMap` keyed by dense site index
/// instead of a dense `num_sites` vector, so a bounded query that
/// settles a handful of frontier sites costs memory (and clearing)
/// proportional to what it touched — not an `O(num_sites)` memset per
/// query. Identical BFS semantics: first enqueue settles a site at its
/// final hop distance, early exit re-queues the interrupted node at the
/// queue front, unreached targets force exhaustion (of the corridor).
///
/// `region_seen` is a per-region stamp buffer (stamp `qstamp` marks
/// "seen this query") used to count `regions_touched` without clearing
/// anything between queries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bfs_drain_resume_sparse(
    state: &MappingState,
    table: &NeighborTable,
    dist: &mut HashMap<u32, u32>,
    queue: &mut VecDeque<u32>,
    targets: &[Site],
    corridor: &CorridorMask<'_>,
    region_seen: &mut [u64],
    qstamp: u64,
) -> SparseDrain {
    let lattice = state.lattice();
    let bounded = !targets.is_empty();
    let mut out = SparseDrain::default();
    let mut pending = 0usize;
    if bounded {
        for (i, &t) in targets.iter().enumerate() {
            let idx = lattice.index(t) as u32;
            if dist.contains_key(&idx) {
                continue;
            }
            if targets[..i].iter().any(|&u| lattice.index(u) as u32 == idx) {
                continue;
            }
            pending += 1;
        }
        if pending == 0 {
            return out;
        }
    }
    while let Some(idx) = queue.pop_front() {
        let d = dist[&idx];
        for &n in table.neighbors(idx as usize) {
            let nu = n as usize;
            if state.atom_at_site_index(nu).is_none() || dist.contains_key(&n) {
                continue;
            }
            let region = corridor.grid.region_of(nu) as usize;
            if corridor.to_targets[region] == UNREACHABLE {
                out.pruned = true;
                continue;
            }
            dist.insert(n, d + 1);
            if region_seen[region] != qstamp {
                region_seen[region] = qstamp;
                out.regions_touched += 1;
            }
            queue.push_back(n);
            out.settled += 1;
            if bounded && targets.contains(&lattice.site(nu)) {
                pending -= 1;
                if pending == 0 {
                    queue.push_front(idx);
                    return out;
                }
            }
        }
    }
    out
}

/// Fractional SWAP-distance estimate between two sites: how many SWAP
/// steps (each covering at most `r_int`) separate them from
/// interaction range. Zero when already within `r_int`.
#[inline]
pub fn swap_distance(a: Site, b: Site, r_int: f64) -> f64 {
    (a.distance(b) / r_int - 1.0).max(0.0)
}

/// The largest integer squared distance at which [`swap_distance`] is
/// exactly `0.0` — determined against the original float expression
/// itself (monotone in the squared distance), so the fast path of
/// [`swap_distance_bounded`] is bit-identical by construction.
/// Compute once per cost model, not per call.
pub fn swap_zero_threshold_sq(r_int: f64) -> i64 {
    let mut d2 = (r_int * r_int).floor() as i64;
    if d2 < 0 {
        return -1;
    }
    while d2 > 0 && ((d2 as f64).sqrt() / r_int - 1.0) > 0.0 {
        d2 -= 1;
    }
    while (((d2 + 1) as f64).sqrt() / r_int - 1.0) <= 0.0 {
        d2 += 1;
    }
    d2
}

/// [`swap_distance`] with the zero-region short-circuited on an exact
/// integer compare against a precomputed [`swap_zero_threshold_sq`]:
/// in-range pairs cost one integer comparison, the sqrt only runs when
/// a real positive distance is consumed. Bit-identical results.
#[inline]
pub fn swap_distance_bounded(a: Site, b: Site, r_int: f64, zero_sq: i64) -> f64 {
    let d2 = a.distance_sq(b);
    if d2 <= zero_sq {
        0.0
    } else {
        (d2 as f64).sqrt() / r_int - 1.0
    }
}

/// Integer SWAP-count estimate (ceiling of [`swap_distance`]).
#[inline]
pub fn swap_count_estimate(a: Site, b: Site, r_int: f64) -> usize {
    swap_distance(a, b, r_int).ceil() as usize
}

/// Remaining routing distance of a gate: the sum of fractional SWAP
/// distances over all operand pairs. Zero iff the gate is executable.
pub fn gate_remaining_distance(state: &MappingState, qubits: &[Qubit], r_int: f64) -> f64 {
    let mut total = 0.0;
    for (i, &a) in qubits.iter().enumerate() {
        let sa = state.site_of_qubit(a);
        for &b in &qubits[i + 1..] {
            total += swap_distance(sa, state.site_of_qubit(b), r_int);
        }
    }
    total
}

/// [`gate_remaining_distance`] through [`swap_distance_bounded`]:
/// bit-identical values, sqrt skipped for pairs already in range.
pub fn gate_remaining_distance_bounded(
    state: &MappingState,
    qubits: &[Qubit],
    r_int: f64,
    zero_sq: i64,
) -> f64 {
    let mut total = 0.0;
    for (i, &a) in qubits.iter().enumerate() {
        let sa = state.site_of_qubit(a);
        for &b in &qubits[i + 1..] {
            total += swap_distance_bounded(sa, state.site_of_qubit(b), r_int, zero_sq);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::HardwareParams;
    use proptest::prelude::*;

    fn dense_state() -> MappingState {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(5, 3.0)
            .num_atoms(20)
            .build()
            .expect("valid");
        MappingState::identity(&params, 20).expect("fits")
    }

    #[test]
    fn bfs_distance_zero_at_start() {
        let s = dense_state();
        let hood = Neighborhood::new(1.0);
        let start = Site::new(0, 0);
        let dist = bfs_occupied(&s, &[start], &hood);
        assert_eq!(dist[s.lattice().index(start)], 0);
        assert_eq!(dist[s.lattice().index(Site::new(1, 0))], 1);
        assert_eq!(dist[s.lattice().index(Site::new(2, 2))], 4);
    }

    #[test]
    fn bfs_does_not_cross_free_sites() {
        // 5x5 lattice, 20 atoms: last row (y=4) is free.
        let s = dense_state();
        let hood = Neighborhood::new(1.0);
        let dist = bfs_occupied(&s, &[Site::new(0, 0)], &hood);
        let free = Site::new(0, 4);
        assert!(s.is_free(free));
        assert_eq!(dist[s.lattice().index(free)], UNREACHABLE);
    }

    #[test]
    fn bfs_longer_radius_shortens_paths() {
        let s = dense_state();
        let d1 = bfs_occupied(&s, &[Site::new(0, 0)], &Neighborhood::new(1.0));
        let d2 = bfs_occupied(&s, &[Site::new(0, 0)], &Neighborhood::new(2.0));
        let far = s.lattice().index(Site::new(4, 3));
        assert!(d2[far] < d1[far]);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let s = dense_state();
        let hood = Neighborhood::new(1.0);
        let dist = bfs_occupied(&s, &[Site::new(0, 0), Site::new(4, 0)], &hood);
        assert_eq!(dist[s.lattice().index(Site::new(4, 1))], 1);
        assert_eq!(dist[s.lattice().index(Site::new(2, 0))], 2);
    }

    #[test]
    fn swap_distance_zero_within_range() {
        let a = Site::new(0, 0);
        assert_eq!(swap_distance(a, Site::new(2, 0), 2.0), 0.0);
        assert!(swap_distance(a, Site::new(4, 0), 2.0) > 0.0);
        assert_eq!(swap_count_estimate(a, Site::new(4, 0), 2.0), 1);
        assert_eq!(swap_count_estimate(a, Site::new(6, 0), 2.0), 2);
    }

    #[test]
    fn remaining_distance_zero_iff_executable() {
        let s = dense_state();
        let r = 2.0;
        let close = [Qubit(0), Qubit(1)];
        assert_eq!(gate_remaining_distance(&s, &close, r), 0.0);
        assert!(s.qubits_mutually_connected(&close, r));
        let far = [Qubit(0), Qubit(19)];
        assert!(gate_remaining_distance(&s, &far, r) > 0.0);
        assert!(!s.qubits_mutually_connected(&far, r));
    }

    proptest! {
        #[test]
        fn swap_distance_monotone_in_radius(x in 0i32..12, y in 0i32..12) {
            let a = Site::new(0, 0);
            let b = Site::new(x, y);
            prop_assert!(swap_distance(a, b, 2.0) >= swap_distance(a, b, 3.0));
        }

        #[test]
        fn bfs_triangle_inequality(sx in 0i32..5, sy in 0i32..4) {
            // Distances grow by at most one per BFS edge.
            let s = dense_state();
            let hood = Neighborhood::new(1.5);
            let start = Site::new(sx, sy);
            let dist = bfs_occupied(&s, &[start], &hood);
            for site in s.lattice().iter() {
                let d = dist[s.lattice().index(site)];
                if d == UNREACHABLE || d == 0 { continue; }
                let has_closer_neighbor = hood
                    .around(site)
                    .filter(|n| s.lattice().contains(*n))
                    .any(|n| dist[s.lattice().index(n)] == d - 1);
                prop_assert!(has_closer_neighbor);
            }
        }
    }
}
