//! Connectivity queries: BFS over the occupied-trap interaction graph and
//! SWAP-distance estimates.
//!
//! The connectivity graph `G = (P, E)` contains an edge between two atoms
//! whenever their Euclidean distance is at most `r_int` (paper §2.2).
//! Routing cost functions need two flavours of distance:
//!
//! * an exact hop distance through `G` (atoms only — SWAPs cannot route
//!   through empty traps), computed by [`bfs_occupied`]; used for
//!   multi-qubit position finding where feasibility matters,
//! * a fast closed-form estimate [`swap_distance`] used inside the hot
//!   cost loops: each SWAP moves a qubit by at most `r_int`, so a gate
//!   spanning Euclidean distance `d` needs about `d/r_int − 1` SWAPs.
//!   On the paper's near-full lattices (200 atoms on 225 traps) the
//!   estimate tracks the exact hop distance closely.
//!
//! These are the raw primitives; routers normally consume them through
//! the caching [`crate::route::RoutingContext`], which reuses BFS fields
//! across every round that leaves trap occupancy unchanged.

use na_arch::{Neighborhood, Site};
use na_circuit::Qubit;

use crate::state::MappingState;

/// Hop distance marker for unreachable sites.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS hop distances from `starts` through occupied sites, where two
/// occupied sites are adjacent when within the neighborhood radius.
///
/// Returns a dense site-indexed vector; free sites and unreachable
/// occupied sites hold [`UNREACHABLE`]. Start sites must be occupied.
pub fn bfs_occupied(state: &MappingState, starts: &[Site], hood: &Neighborhood) -> Vec<u32> {
    let mut dist = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    bfs_occupied_into(state, starts, hood, &mut dist, &mut queue);
    dist
}

/// [`bfs_occupied`] writing into caller-provided buffers instead of
/// allocating: `dist` is resized/overwritten to one entry per lattice
/// site, `queue` is used as the BFS frontier and left empty. This is the
/// allocation-free primitive behind the pooled
/// [`crate::route::DistanceCache`].
pub fn bfs_occupied_into(
    state: &MappingState,
    starts: &[Site],
    hood: &Neighborhood,
    dist: &mut Vec<u32>,
    queue: &mut std::collections::VecDeque<Site>,
) {
    let lattice = state.lattice();
    dist.clear();
    dist.resize(lattice.num_sites(), UNREACHABLE);
    queue.clear();
    for &s in starts {
        debug_assert!(!state.is_free(s), "BFS start {s} must be occupied");
        let idx = lattice.index(s);
        if dist[idx] != 0 {
            dist[idx] = 0;
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        let d = dist[lattice.index(s)];
        for n in hood.around(s) {
            if !lattice.contains(n) || state.is_free(n) {
                continue;
            }
            let idx = lattice.index(n);
            if dist[idx] == UNREACHABLE {
                dist[idx] = d + 1;
                queue.push_back(n);
            }
        }
    }
}

/// Fractional SWAP-distance estimate between two sites: how many SWAP
/// steps (each covering at most `r_int`) separate them from
/// interaction range. Zero when already within `r_int`.
#[inline]
pub fn swap_distance(a: Site, b: Site, r_int: f64) -> f64 {
    (a.distance(b) / r_int - 1.0).max(0.0)
}

/// Integer SWAP-count estimate (ceiling of [`swap_distance`]).
#[inline]
pub fn swap_count_estimate(a: Site, b: Site, r_int: f64) -> usize {
    swap_distance(a, b, r_int).ceil() as usize
}

/// Remaining routing distance of a gate: the sum of fractional SWAP
/// distances over all operand pairs. Zero iff the gate is executable.
pub fn gate_remaining_distance(state: &MappingState, qubits: &[Qubit], r_int: f64) -> f64 {
    let mut total = 0.0;
    for (i, &a) in qubits.iter().enumerate() {
        let sa = state.site_of_qubit(a);
        for &b in &qubits[i + 1..] {
            total += swap_distance(sa, state.site_of_qubit(b), r_int);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::HardwareParams;
    use proptest::prelude::*;

    fn dense_state() -> MappingState {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(5, 3.0)
            .num_atoms(20)
            .build()
            .expect("valid");
        MappingState::identity(&params, 20).expect("fits")
    }

    #[test]
    fn bfs_distance_zero_at_start() {
        let s = dense_state();
        let hood = Neighborhood::new(1.0);
        let start = Site::new(0, 0);
        let dist = bfs_occupied(&s, &[start], &hood);
        assert_eq!(dist[s.lattice().index(start)], 0);
        assert_eq!(dist[s.lattice().index(Site::new(1, 0))], 1);
        assert_eq!(dist[s.lattice().index(Site::new(2, 2))], 4);
    }

    #[test]
    fn bfs_does_not_cross_free_sites() {
        // 5x5 lattice, 20 atoms: last row (y=4) is free.
        let s = dense_state();
        let hood = Neighborhood::new(1.0);
        let dist = bfs_occupied(&s, &[Site::new(0, 0)], &hood);
        let free = Site::new(0, 4);
        assert!(s.is_free(free));
        assert_eq!(dist[s.lattice().index(free)], UNREACHABLE);
    }

    #[test]
    fn bfs_longer_radius_shortens_paths() {
        let s = dense_state();
        let d1 = bfs_occupied(&s, &[Site::new(0, 0)], &Neighborhood::new(1.0));
        let d2 = bfs_occupied(&s, &[Site::new(0, 0)], &Neighborhood::new(2.0));
        let far = s.lattice().index(Site::new(4, 3));
        assert!(d2[far] < d1[far]);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let s = dense_state();
        let hood = Neighborhood::new(1.0);
        let dist = bfs_occupied(&s, &[Site::new(0, 0), Site::new(4, 0)], &hood);
        assert_eq!(dist[s.lattice().index(Site::new(4, 1))], 1);
        assert_eq!(dist[s.lattice().index(Site::new(2, 0))], 2);
    }

    #[test]
    fn swap_distance_zero_within_range() {
        let a = Site::new(0, 0);
        assert_eq!(swap_distance(a, Site::new(2, 0), 2.0), 0.0);
        assert!(swap_distance(a, Site::new(4, 0), 2.0) > 0.0);
        assert_eq!(swap_count_estimate(a, Site::new(4, 0), 2.0), 1);
        assert_eq!(swap_count_estimate(a, Site::new(6, 0), 2.0), 2);
    }

    #[test]
    fn remaining_distance_zero_iff_executable() {
        let s = dense_state();
        let r = 2.0;
        let close = [Qubit(0), Qubit(1)];
        assert_eq!(gate_remaining_distance(&s, &close, r), 0.0);
        assert!(s.qubits_mutually_connected(&close, r));
        let far = [Qubit(0), Qubit(19)];
        assert!(gate_remaining_distance(&s, &far, r) > 0.0);
        assert!(!s.qubits_mutually_connected(&far, r));
    }

    proptest! {
        #[test]
        fn swap_distance_monotone_in_radius(x in 0i32..12, y in 0i32..12) {
            let a = Site::new(0, 0);
            let b = Site::new(x, y);
            prop_assert!(swap_distance(a, b, 2.0) >= swap_distance(a, b, 3.0));
        }

        #[test]
        fn bfs_triangle_inequality(sx in 0i32..5, sy in 0i32..4) {
            // Distances grow by at most one per BFS edge.
            let s = dense_state();
            let hood = Neighborhood::new(1.5);
            let start = Site::new(sx, sy);
            let dist = bfs_occupied(&s, &[start], &hood);
            for site in s.lattice().iter() {
                let d = dist[s.lattice().index(site)];
                if d == UNREACHABLE || d == 0 { continue; }
                let has_closer_neighbor = hood
                    .around(site)
                    .filter(|n| s.lattice().contains(*n))
                    .any(|n| dist[s.lattice().index(n)] == d - 1);
                prop_assert!(has_closer_neighbor);
            }
        }
    }
}
