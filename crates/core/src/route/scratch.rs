//! The routing scratch arena: every reusable buffer of the routing hot
//! path in one place.
//!
//! One [`RouteScratch`] serves one routing thread. It is created once
//! (per mapper call — or once per *worker* in batch compilation, see
//! `na-pipeline`) and threaded through
//! [`crate::route::RoutingEngine::step`] via the
//! [`crate::route::RoutingContext`], so the steady state of routing
//! allocates nothing per candidate:
//!
//! * the **move journal** ([`StateJournal`]) backing in-place candidate
//!   simulation (apply → evaluate → undo, exact stamp restore),
//! * the **distance cache** ([`DistanceCache`]) whose BFS fields are
//!   epoch-stamped by occupancy and whose buffers recycle through an
//!   internal pool across invalidations,
//! * dense per-[`AtomId`](crate::ops::AtomId) **touch/handled/pair
//!   tables** for the gate router (flat `Vec`s indexed by id with
//!   generation counters, replacing per-round `HashMap`/`HashSet`s),
//! * chain/site/ordering buffers for the shuttle router's chain
//!   construction and cost replay.
//!
//! Buffers are deliberately dumb: routers borrow disjoint fields
//! directly (the borrow checker enforces the discipline), and every
//! table is either cleared on use or invalidated by bumping a
//! generation counter — nothing here carries semantic state across
//! rounds except capacity.

use std::sync::Arc;

use na_arch::{Move, Site};

use crate::route::context::DistanceCache;
use crate::route::gate::RoutedGate;
use crate::route::shuttle::ChainMove;
use crate::state::StateJournal;

/// Reusable buffers of the gate-based router (dense tables indexed by
/// atom id / gate index, generation-stamped instead of cleared).
#[derive(Debug, Default)]
pub(crate) struct GateBufs {
    /// Generation counter bumped once per `best_swap` round; entries of
    /// `touch_epoch`/`pair_epoch` are live iff they equal it.
    pub round_gen: u64,
    /// Per-atom generation of `touch_lists` (atom id indexed).
    pub touch_epoch: Vec<u64>,
    /// Per-atom `(gate index, is_front)` lists — the dense replacement
    /// of the old `HashMap<AtomId, Vec<(usize, bool)>>`.
    pub touch_lists: Vec<Vec<(u32, bool)>>,
    /// Per ordered atom pair (`a * num_atoms + b`) generation marker —
    /// the dense replacement of the old `HashSet<(AtomId, AtomId)>`
    /// candidate dedup. Only sized while `num_atoms` stays at or below
    /// [`GateBufs::PAIR_DENSE_MAX_ATOMS`] (the table is quadratic);
    /// larger arrays fall back to `pair_sparse`.
    pub pair_epoch: Vec<u64>,
    /// Sparse pair-dedup fallback for very large atom arrays (cleared
    /// each round instead of generation-stamped).
    pub pair_sparse: std::collections::HashSet<(u32, u32)>,
    /// Generation counter bumped once per `swap_delta` evaluation.
    pub handled_gen: u64,
    /// Per `(gate, layer)` slot generation — the dense replacement of
    /// the old per-candidate `HashSet<(usize, bool)>`.
    pub handled_epoch: Vec<u64>,
    /// Pre-SWAP frontier distances of the current round.
    pub d_before_front: Vec<f64>,
    /// Pre-SWAP lookahead distances of the current round.
    pub d_before_la: Vec<f64>,
    /// Per-gate-qubit BFS fields for position finding.
    pub fields: Vec<Arc<Vec<u32>>>,
    /// Anchor candidates of `find_position`, `Reverse((cost, site))` —
    /// heapified into a lazy ascending selection instead of fully
    /// sorted (`BinaryHeap::from` is O(n); only the few anchors
    /// actually examined pay a log-n pop).
    pub anchors: Vec<std::cmp::Reverse<(u64, Site)>>,
    /// Slot candidates of `position_at_anchor`, `(cost, site)`.
    pub pos_candidates: Vec<(u64, Site)>,
    /// Frontier gates resolved for SWAP routing (inner qubit vectors are
    /// reused across rounds).
    pub routed_front: Vec<RoutedGate>,
    /// Lookahead gates resolved for SWAP routing.
    pub routed_la: Vec<RoutedGate>,
    /// Per-frontier-gate best `(pair, cost)` reduction of the batched
    /// sweep (`Router::propose_batch`).
    pub per_gate_best: Vec<Option<((crate::ops::AtomId, crate::ops::AtomId), f64)>>,
}

impl GateBufs {
    /// Largest atom count served by the dense quadratic pair table
    /// (1024² × 8 B = 8 MiB per arena); larger arrays use the sparse
    /// fallback so scratch memory stays linear in the array size.
    pub const PAIR_DENSE_MAX_ATOMS: usize = 1024;

    /// Grows the atom-indexed tables to cover `num_atoms` ids.
    pub fn ensure_atoms(&mut self, num_atoms: usize) {
        if self.touch_epoch.len() < num_atoms {
            self.touch_epoch.resize(num_atoms, 0);
            self.touch_lists.resize_with(num_atoms, Vec::new);
        }
        if num_atoms <= Self::PAIR_DENSE_MAX_ATOMS {
            let pairs = num_atoms * num_atoms;
            if self.pair_epoch.len() < pairs {
                self.pair_epoch.resize(pairs, 0);
            }
        }
    }

    /// Grows the `(gate, layer)` handled table for `front`/`lookahead`
    /// slices of the given lengths.
    pub fn ensure_gates(&mut self, front: usize, lookahead: usize) {
        let slots = 2 * front.max(lookahead).max(1);
        if self.handled_epoch.len() < slots {
            self.handled_epoch.resize(slots, 0);
        }
    }
}

/// Reusable buffers of the shuttle router's chain construction and cost
/// replay.
#[derive(Debug, Default)]
pub(crate) struct ShuttleBufs {
    /// The chain currently being built/evaluated.
    pub chain: Vec<ChainMove>,
    /// The cheapest chain seen so far for the current gate.
    pub best_chain: Vec<ChainMove>,
    /// Placement order of gate qubits (indices into the gate's operand
    /// list).
    pub order: Vec<usize>,
    /// Sites already fixed by the chain under construction.
    pub placed: Vec<Site>,
    /// Candidate target sites around the anchor.
    pub site_candidates: Vec<Site>,
    /// Exclusion list handed to `nearest_free_site` during move-aways.
    pub excluded: Vec<Site>,
    /// Current sites of all gate qubits (move-away blocker filter).
    pub gate_sites: Vec<Site>,
    /// Recency window replay buffer of the cost model.
    pub recent: Vec<Move>,
    /// Anchor scan order of the fallback path.
    pub anchor_sites: Vec<Site>,
    /// Generation counter bumped once per `best_chains` round; entries
    /// of `touch_epoch` are live iff they equal it.
    pub round_gen: u64,
    /// Per-atom generation of `touch_lists` (atom id indexed).
    pub touch_epoch: Vec<u64>,
    /// Per-atom `(gate index, is_front)` incidence over the round's
    /// frontier + lookahead layers — which Eq. (4) distance terms a
    /// move of this atom can change. Stable for the whole round: chains
    /// only move atoms, never permute `f_q`.
    pub touch_lists: Vec<Vec<(u32, bool)>>,
    /// Per-frontier-gate remaining routing distance at the currently
    /// simulated state (committed values between sims; entries for
    /// gates untouched by a move are *bit-identical* to a full
    /// recompute, so summing this array in gate order reproduces the
    /// old full `remaining()` sweep exactly — without its per-gate
    /// sqrt work).
    pub front_vals: Vec<f64>,
    /// Per-lookahead-gate remaining routing distance (same contract).
    pub la_vals: Vec<f64>,
    /// Undo log of `front_vals`/`la_vals` mutations during one chain
    /// simulation: `(gate index, is_front, previous value)`.
    pub val_undo: Vec<(u32, bool, f64)>,
}

impl ShuttleBufs {
    /// Grows the atom-indexed incidence tables to cover `num_atoms` ids.
    pub fn ensure_atoms(&mut self, num_atoms: usize) {
        if self.touch_epoch.len() < num_atoms {
            self.touch_epoch.resize(num_atoms, 0);
            self.touch_lists.resize_with(num_atoms, Vec::new);
        }
    }
}

/// SoA buffers of one speculative multi-commit round (see
/// [`crate::route::RoutingEngine::step_speculative`]): the winning
/// tier's candidate list, the sorted commit order, and the per-candidate
/// conflict sets stored as two concatenated arrays (atom ids / dense
/// site indices) sliced by `ranges`. The stamped `atom_mark`/`site_mark`
/// tables carry the committed union during the greedy commit pass —
/// generation-bumped per round, never cleared.
#[derive(Debug, Default)]
pub(crate) struct SpecBufs {
    /// The winning tier's candidates, in proposal order.
    pub candidates: Vec<crate::route::Candidate>,
    /// Candidate indices sorted by `(cost, proposal order)`.
    pub order: Vec<u32>,
    /// Concatenated conflict-set atom ids.
    pub conflict_atoms: Vec<u32>,
    /// Concatenated conflict-set dense site indices (claimed + freed).
    pub conflict_sites: Vec<u32>,
    /// Per-candidate `[atom_start, atom_end, site_start, site_end]`
    /// slices into the two arrays above.
    pub ranges: Vec<[u32; 4]>,
    /// Generation counter bumped once per commit pass; mark entries are
    /// live iff they equal it.
    pub round_gen: u64,
    /// Per-atom committed-conflict marks (atom id indexed).
    pub atom_mark: Vec<u64>,
    /// Per-site committed-conflict marks (dense site indexed).
    pub site_mark: Vec<u64>,
}

impl SpecBufs {
    /// Grows the mark tables to cover `num_atoms` ids and `num_sites`
    /// dense indices.
    pub fn ensure(&mut self, num_atoms: usize, num_sites: usize) {
        if self.atom_mark.len() < num_atoms {
            self.atom_mark.resize(num_atoms, 0);
        }
        if self.site_mark.len() < num_sites {
            self.site_mark.resize(num_sites, 0);
        }
    }
}

/// The per-thread routing arena: journal, distance cache, and every
/// router scratch table, reused across rounds — and across circuits
/// when the caller keeps it alive (see
/// [`HybridMapper::map_into_scratch`](crate::HybridMapper::map_into_scratch)).
///
/// See the [module docs](self) for the ownership story and
/// [`StateJournal`] for the speculation/stamp invariants.
#[derive(Debug, Default)]
pub struct RouteScratch {
    pub(crate) journal: StateJournal,
    pub(crate) cache: DistanceCache,
    pub(crate) gate: GateBufs,
    pub(crate) shuttle: ShuttleBufs,
    pub(crate) spec: SpecBufs,
}

impl RouteScratch {
    /// An empty arena; buffers grow on first use and stay warm.
    pub fn new() -> Self {
        RouteScratch::default()
    }

    /// The occupancy-stamped distance cache (exposed for benchmarks and
    /// diagnostics — hit/miss counters via [`DistanceCache::stats`]).
    pub fn distance_cache(&self) -> &DistanceCache {
        &self.cache
    }

    /// `true` while a speculative candidate simulation is in flight
    /// (routing invariant: always `false` between engine rounds).
    pub fn speculation_in_flight(&self) -> bool {
        !self.journal.is_empty()
    }
}
