//! The shared cost model: every fidelity and timing term of the paper's
//! Eq. (1)–(5) in one place.
//!
//! Before the unified routing engine, these terms were re-derived
//! independently by the capability decider, the gate-based router and the
//! shuttling-based router. [`CostModel`] is now the single source of
//! truth consumed by all three:
//!
//! * **Eq. (1)** — approximate success probability: per-operation
//!   fidelities times the decoherence of idling spectator atoms
//!   ([`CostModel::swap_log_success`], [`CostModel::shuttle_log_success`]),
//! * **Eq. (2)–(3)** — SWAP cost weights: lookahead weight `w_l` and the
//!   recency/parallelism dial `λ_t`
//!   ([`CostModel::swap_recency_penalty`]),
//! * **Eq. (4)–(5)** — shuttle cost weights: `w_l`, the time weight `w_t`
//!   and the AOD parallelism model `ΔT(M, M_t)`
//!   ([`CostModel::shuttle_delta_t`]).

use na_arch::{aod, HardwareParams, Move};

use crate::config::MapperConfig;

/// Fidelity, timing and weighting terms shared by the capability decider
/// and every registered [`crate::route::Router`].
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Interaction radius `r_int` (lattice-constant units).
    pub r_int: f64,
    /// Integer within-range bound: `Site::within_threshold_sq(r_int)`,
    /// hoisted once so hot range checks compare exact squared
    /// distances.
    pub r_int_within_sq: i64,
    /// Largest squared distance at which `swap_distance` is exactly
    /// zero ([`crate::route::distance::swap_zero_threshold_sq`]) — the
    /// sqrt-skipping fast path of the distance terms.
    pub r_int_zero_sq: i64,
    /// `ln` of the decomposed SWAP fidelity `F_CZ³ · F_1q⁶`.
    pub ln_f_swap: f64,
    /// `ln` of the single-move shuttle fidelity `F_shuttle`.
    pub ln_f_shuttle: f64,
    /// Duration of a decomposed SWAP (3 CZ + 6 single-qubit gates), µs.
    pub t_swap_us: f64,
    /// AOD pickup time `t_act`, µs.
    pub t_act_us: f64,
    /// AOD drop-off time `t_deact`, µs.
    pub t_deact_us: f64,
    /// Shuttle speed, µm/µs.
    pub speed_um_per_us: f64,
    /// Lattice constant `d`, µm.
    pub lattice_constant_um: f64,
    /// Effective decoherence time `T_eff`, µs (Eq. 1 idle term).
    pub t_eff_us: f64,
    /// Lookahead weight `w_l` (Eq. 2 and Eq. 4).
    pub lookahead_weight: f64,
    /// Time/parallelism weight `w_t` (Eq. 4).
    pub time_weight: f64,
    /// Recency decay rate `λ_t` (Eq. 2).
    pub decay_rate: f64,
    /// Recency window `t`: how many recent SWAPs/moves the parallelism
    /// terms look back on.
    pub recency_window: usize,
}

impl CostModel {
    /// Extracts the model from the hardware description and the mapper
    /// configuration.
    pub fn new(params: &HardwareParams, config: &MapperConfig) -> Self {
        CostModel {
            r_int: params.r_int,
            r_int_within_sq: na_arch::Site::within_threshold_sq(params.r_int),
            r_int_zero_sq: crate::route::distance::swap_zero_threshold_sq(params.r_int),
            ln_f_swap: params.swap_fidelity().ln(),
            ln_f_shuttle: params.f_shuttle.max(f64::MIN_POSITIVE).ln(),
            t_swap_us: params.swap_time_us(),
            t_act_us: params.t_act_us,
            t_deact_us: params.t_deact_us,
            speed_um_per_us: params.shuttle_speed_um_per_us,
            lattice_constant_um: params.lattice_constant_um,
            t_eff_us: params.t_eff_us(),
            lookahead_weight: config.lookahead_weight,
            time_weight: config.time_weight,
            decay_rate: config.decay_rate,
            recency_window: config.recency_window,
        }
    }

    /// Travel-plus-transaction time of one shuttle move spanning
    /// `dist_units` lattice constants, µs.
    pub fn move_time_us(&self, dist_units: f64) -> f64 {
        self.t_act_us
            + dist_units * self.lattice_constant_um / self.speed_um_per_us
            + self.t_deact_us
    }

    /// Log success probability of routing a gate with `n_swaps` SWAPs
    /// while `spectators` atoms idle (gate-based side of Eq. 1).
    pub fn swap_log_success(&self, n_swaps: usize, spectators: f64) -> f64 {
        let t_route = n_swaps as f64 * self.t_swap_us;
        n_swaps as f64 * self.ln_f_swap - t_route * spectators / self.t_eff_us
    }

    /// Log success probability of routing a gate with `n_moves` shuttle
    /// moves covering `dist_units` lattice constants in total while
    /// `spectators` atoms idle (shuttling side of Eq. 1).
    pub fn shuttle_log_success(&self, n_moves: usize, dist_units: f64, spectators: f64) -> f64 {
        let t_route = n_moves as f64 * (self.t_act_us + self.t_deact_us)
            + dist_units * self.lattice_constant_um / self.speed_um_per_us;
        n_moves as f64 * self.ln_f_shuttle - t_route * spectators / self.t_eff_us
    }

    /// Additive recency penalty of a SWAP whose pair was last used
    /// `staleness` routing steps ago (Eq. 2's `λ_t` term).
    ///
    /// Penalizes *freshly used* pairs so larger `λ_t` spreads SWAPs
    /// across the array. The additive form (instead of the paper's
    /// `exp(−λ_t·t)` prefactor) keeps the improvement ordering intact —
    /// multiplying the full distance sum lets a stale-but-useless SWAP
    /// undercut a fresh improving one once `λ_t` grows, which livelocks
    /// the router; both forms agree at the paper's evaluated `λ_t = 0`.
    pub fn swap_recency_penalty(&self, staleness: f64) -> f64 {
        self.decay_rate * (self.recency_window as f64 - staleness)
    }

    /// The `ΔT(M, M_t)` model of §3.3.2: zero when `m` is fully
    /// parallelizable with the recent move, activation overhead when only
    /// loading parallelizes, full standalone time otherwise.
    pub fn shuttle_delta_t(&self, m: &Move, recent: &Move) -> f64 {
        if aod::moves_fully_parallel(m, recent) {
            0.0
        } else if aod::loads_parallel(m, recent) {
            self.t_act_us + self.t_deact_us
        } else {
            self.move_time_us(m.rectilinear_distance())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(preset: HardwareParams) -> CostModel {
        CostModel::new(
            &preset,
            &MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        )
    }

    #[test]
    fn log_success_is_nonpositive_and_monotone() {
        let m = model(HardwareParams::mixed());
        assert_eq!(m.swap_log_success(0, 100.0), 0.0);
        assert_eq!(m.shuttle_log_success(0, 0.0, 100.0), 0.0);
        assert!(m.swap_log_success(1, 100.0) < 0.0);
        assert!(m.swap_log_success(2, 100.0) < m.swap_log_success(1, 100.0));
        assert!(m.shuttle_log_success(2, 4.0, 100.0) < m.shuttle_log_success(1, 2.0, 100.0));
    }

    #[test]
    fn recency_penalty_prefers_stale_pairs() {
        let p = HardwareParams::mixed();
        let cfg = MapperConfig::try_hybrid(1.0)
            .expect("valid alpha")
            .with_decay_rate(0.5);
        let m = CostModel::new(&p, &cfg);
        // Fresh pair (staleness 0) costs more than a stale one.
        assert!(m.swap_recency_penalty(0.0) > m.swap_recency_penalty(m.recency_window as f64));
        assert_eq!(m.swap_recency_penalty(m.recency_window as f64), 0.0);
    }

    #[test]
    fn delta_t_ordering_matches_parallelizability() {
        let m = model(HardwareParams::shuttling());
        let base = Move::new(na_arch::Site::new(0, 0), na_arch::Site::new(0, 2));
        let parallel = Move::new(na_arch::Site::new(2, 0), na_arch::Site::new(2, 2));
        let load_only = Move::new(na_arch::Site::new(3, 4), na_arch::Site::new(3, 1));
        assert_eq!(m.shuttle_delta_t(&parallel, &base), 0.0);
        let partial = m.shuttle_delta_t(&load_only, &base);
        assert_eq!(partial, m.t_act_us + m.t_deact_us);
        let full = m.shuttle_delta_t(&base, &base);
        assert!(full > partial);
    }

    #[test]
    fn move_time_includes_transaction_overhead() {
        let m = model(HardwareParams::shuttling());
        let t0 = m.move_time_us(0.0);
        assert_eq!(t0, m.t_act_us + m.t_deact_us);
        assert!(m.move_time_us(3.0) > t0);
    }
}
