//! Shuttling-based routing: move-chain construction and the cost function
//! of the paper's Eq. (4)–(5).
//!
//! Considering every possible rearrangement is infeasible (O(N^|C|),
//! §3.1.1), so only moves that bring gate qubits *directly* into the
//! vicinity of another gate qubit are considered, in two flavours
//! (Example 5):
//!
//! * a **direct move** `M` onto an unoccupied coordinate,
//! * a **move-away combination** `(M_away, M)` that first parks the
//!   blocking atom on the nearest free coordinate.
//!
//! For each gate, chains are built around every choice of *central* gate
//! qubit (which stays put) plus a fallback anchor scan for crowded
//! regions; chains are kept minimal (bounded by `2(m − 1)` moves) on the
//! intuition that two moves are unlikely to beat one even when
//! parallelized (§3.3.2). Timing and parallelism terms come from the
//! shared [`CostModel`].

use std::collections::VecDeque;

use na_arch::{HardwareParams, Move, Site};
use na_circuit::Qubit;

use crate::config::MapperConfig;
use crate::decision::Capability;
use crate::ops::AtomId;
use crate::route::{
    Candidate, CostModel, FrontierGate, Proposal, Router, RoutingContext, RoutingOp,
};
use crate::state::MappingState;

/// One move of a chain, bound to the atom that travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainMove {
    /// The shuttled atom.
    pub atom: AtomId,
    /// Source site.
    pub from: Site,
    /// Target site (free when the move executes).
    pub to: Site,
}

impl ChainMove {
    fn as_move(&self) -> Move {
        Move::new(self.from, self.to)
    }
}

/// A complete move chain making one frontier gate executable.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveChain {
    /// `op_index` of the frontier gate this chain serves.
    pub op_index: usize,
    /// Moves in execution order (move-aways precede dependent moves).
    pub moves: Vec<ChainMove>,
    /// Total cost under Eq. (4).
    pub cost: f64,
}

/// The shuttling-based router. Owns the recent-move window used by the
/// parallelism term `C_t_parallel`; cost terms come from the shared
/// [`CostModel`].
#[derive(Debug)]
pub struct ShuttleRouter {
    cost: CostModel,
    recent_moves: VecDeque<Move>,
}

impl ShuttleRouter {
    /// Creates a router for the given hardware and configuration.
    pub fn new(params: &HardwareParams, config: &MapperConfig) -> Self {
        ShuttleRouter {
            cost: CostModel::new(params, config),
            recent_moves: VecDeque::new(),
        }
    }

    /// The best chain for each non-executable frontier gate, in frontier
    /// order.
    pub fn best_chains(
        &self,
        ctx: &RoutingContext<'_>,
        front: &[&FrontierGate],
        lookahead: &[&FrontierGate],
    ) -> Vec<MoveChain> {
        let state = ctx.state();
        let mut result = Vec::new();
        for gate in front {
            if state.qubits_mutually_connected(&gate.qubits, self.cost.r_int) {
                continue; // already executable
            }
            let mut best: Option<MoveChain> = None;
            for chain in self.chains_for_gate(ctx, &gate.qubits) {
                let cost = self.chain_cost(state, &chain, front, lookahead);
                if best.as_ref().is_none_or(|b| cost < b.cost - 1e-12) {
                    best = Some(MoveChain {
                        op_index: gate.op_index,
                        moves: chain,
                        cost,
                    });
                }
            }
            result.extend(best);
        }
        result
    }

    /// Candidate chains for one gate: one per viable central qubit, plus
    /// anchor-scan fallbacks when no center works.
    fn chains_for_gate(&self, ctx: &RoutingContext<'_>, qubits: &[Qubit]) -> Vec<Vec<ChainMove>> {
        let state = ctx.state();
        let mut chains = Vec::new();
        for (ci, &center) in qubits.iter().enumerate() {
            let anchor = state.site_of_qubit(center);
            if let Some(chain) = self.build_chain(ctx, qubits, anchor, Some(ci)) {
                chains.push(chain);
            }
        }
        if chains.is_empty() {
            // Fallback: scan anchors near the gate centroid.
            let centroid = ctx.centroid_of(qubits);
            let lattice = state.lattice();
            let mut anchors: Vec<Site> = lattice.iter().collect();
            anchors.sort_by(|a, b| {
                RoutingContext::dist_sq_to(centroid, *a)
                    .partial_cmp(&RoutingContext::dist_sq_to(centroid, *b))
                    .expect("finite")
                    .then(a.cmp(b))
            });
            for anchor in anchors.into_iter().take(64) {
                if let Some(chain) = self.build_chain(ctx, qubits, anchor, None) {
                    chains.push(chain);
                    break;
                }
            }
        }
        chains
    }

    /// Builds a chain gathering all gate qubits on mutually compatible
    /// sites around `anchor`. When `center` names a gate qubit, that qubit
    /// stays on its current site.
    fn build_chain(
        &self,
        ctx: &RoutingContext<'_>,
        qubits: &[Qubit],
        anchor: Site,
        center: Option<usize>,
    ) -> Option<Vec<ChainMove>> {
        let state = ctx.state();
        let lattice = state.lattice();
        let r_int = self.cost.r_int;
        let mut sim = state.clone();
        let mut moves: Vec<ChainMove> = Vec::new();
        let mut placed: Vec<Site> = Vec::new();

        // Placement order: the center first (stays put), then the rest by
        // proximity to the anchor.
        let mut order: Vec<usize> = (0..qubits.len()).collect();
        order.sort_by_key(|&i| {
            let key = if center == Some(i) {
                -1
            } else {
                state.site_of_qubit(qubits[i]).distance_sq(anchor)
            };
            (key, i)
        });

        for &qi in &order {
            let q = qubits[qi];
            let here = sim.site_of_qubit(q);
            let stays = placed.iter().all(|&t| t.within(here, r_int))
                && (center == Some(qi) || here.within(anchor, r_int));
            if stays {
                // Already compatible with everything placed so far.
                placed.push(here);
                continue;
            }
            // Candidate targets around the anchor, nearest to the qubit
            // first; must stay compatible with already-placed sites.
            let mut candidates: Vec<Site> = std::iter::once(anchor)
                .chain(ctx.interaction_neighborhood().around(anchor))
                .filter(|s| {
                    lattice.contains(*s)
                        && placed.iter().all(|&t| t.within(*s, r_int))
                        && !placed.contains(s)
                })
                .collect();
            candidates.sort_by_key(|s| (here.distance_sq(*s), *s));

            // First preference: a free site (direct move).
            let direct = candidates.iter().copied().find(|&s| sim.is_free(s));
            let target = if let Some(t) = direct {
                t
            } else {
                // Move-away: evict the blocking atom from the best
                // occupied candidate that is not another gate qubit.
                let gate_sites: Vec<Site> = qubits.iter().map(|&g| sim.site_of_qubit(g)).collect();
                let mut evicted = None;
                for &s in &candidates {
                    if gate_sites.contains(&s) {
                        continue;
                    }
                    let Some(blocker) = sim.atom_at_site(s) else {
                        continue;
                    };
                    let mut excluded = placed.clone();
                    excluded.extend(gate_sites.iter().copied());
                    excluded.push(s);
                    let Some(park) = sim.nearest_free_site(s, &excluded) else {
                        continue;
                    };
                    moves.push(ChainMove {
                        atom: blocker,
                        from: s,
                        to: park,
                    });
                    sim.apply_move(blocker, park);
                    evicted = Some(s);
                    break;
                }
                evicted?
            };
            let atom = sim.atom_of_qubit(q);
            moves.push(ChainMove {
                atom,
                from: sim.site_of_atom(atom),
                to: target,
            });
            sim.apply_move(atom, target);
            placed.push(target);
        }

        // Chain must actually make the gate executable.
        if !sim.qubits_mutually_connected(qubits, r_int) {
            return None;
        }
        // Center-based chains respect the paper's 2(m−1) bound; the anchor
        // fallback may additionally move the would-be center.
        debug_assert!(moves.len() <= 2 * qubits.len());
        Some(moves)
    }

    /// Total chain cost: Σ over moves of Eq. (4).
    fn chain_cost(
        &self,
        state: &MappingState,
        chain: &[ChainMove],
        front: &[&FrontierGate],
        lookahead: &[&FrontierGate],
    ) -> f64 {
        let r_int = self.cost.r_int;
        let mut sim = state.clone();
        let mut recent: Vec<Move> = self.recent_moves.iter().copied().collect();
        let mut total = 0.0;
        let remaining = |s: &MappingState, gates: &[&FrontierGate]| -> f64 {
            gates
                .iter()
                .map(|g| crate::route::distance::gate_remaining_distance(s, &g.qubits, r_int))
                .sum()
        };
        for mv in chain {
            let before_f = remaining(&sim, front);
            let before_l = remaining(&sim, lookahead);
            sim.apply_move(mv.atom, mv.to);
            let after_f = remaining(&sim, front);
            let after_l = remaining(&sim, lookahead);

            let c_parallel: f64 = recent
                .iter()
                .rev()
                .take(self.cost.recency_window)
                .map(|m| self.cost.shuttle_delta_t(&mv.as_move(), m))
                .sum();

            total += (after_f - before_f)
                + self.cost.lookahead_weight * (after_l - before_l)
                + self.cost.time_weight * c_parallel;
            recent.push(mv.as_move());
        }
        total
    }

    /// Records applied moves into the recency window.
    fn note_moves_applied(&mut self, moves: impl Iterator<Item = Move>) {
        for mv in moves {
            self.recent_moves.push_back(mv);
            while self.recent_moves.len() > self.cost.recency_window {
                self.recent_moves.pop_front();
            }
        }
    }
}

impl Router for ShuttleRouter {
    fn capability(&self) -> Capability {
        Capability::Shuttling
    }

    /// Proposes the best chain per frontier gate; ranking across gates
    /// happens in the engine's shared comparator.
    fn propose(
        &self,
        ctx: &RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        _fallback: bool,
    ) -> Proposal {
        let candidates = self
            .best_chains(ctx, frontier, lookahead)
            .into_iter()
            .map(|chain| Candidate {
                tier: 0, // reassigned by the engine
                cost: chain.cost,
                op_index: chain.op_index,
                ops: chain
                    .moves
                    .iter()
                    .map(|mv| RoutingOp::Move {
                        atom: mv.atom,
                        from: mv.from,
                        to: mv.to,
                    })
                    .collect(),
            })
            .collect();
        Proposal {
            candidates,
            handoff: Vec::new(),
        }
    }

    fn note_applied(&mut self, _state: &MappingState, candidate: &Candidate) {
        self.note_moves_applied(candidate.ops.iter().filter_map(|op| match op {
            RoutingOp::Move { from, to, .. } => Some(Move::new(*from, *to)),
            _ => None,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::Neighborhood;

    use crate::route::DistanceCache;

    fn params(side: u32, atoms: u32, r: f64) -> HardwareParams {
        HardwareParams::shuttling()
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .radius(r)
            .build()
            .expect("valid")
    }

    fn gate(qubits: &[u32]) -> FrontierGate {
        FrontierGate {
            op_index: 0,
            qubits: qubits.iter().map(|&q| Qubit(q)).collect(),
            capability: Capability::Shuttling,
        }
    }

    struct Fixture {
        state: MappingState,
        hood: Neighborhood,
        r_int: f64,
        cache: DistanceCache,
    }

    impl Fixture {
        fn new(p: &HardwareParams, qubits: u32) -> Self {
            Fixture {
                state: MappingState::identity(p, qubits).expect("fits"),
                hood: Neighborhood::new(p.r_int),
                r_int: p.r_int,
                cache: DistanceCache::new(),
            }
        }

        fn ctx(&self) -> RoutingContext<'_> {
            RoutingContext::new(&self.state, &self.hood, self.r_int, &self.cache)
        }
    }

    fn best_of(router: &ShuttleRouter, fx: &Fixture, front: &[&FrontierGate]) -> Option<MoveChain> {
        let mut best: Option<MoveChain> = None;
        for chain in router.best_chains(&fx.ctx(), front, &[]) {
            if best.as_ref().is_none_or(|b| chain.cost < b.cost - 1e-12) {
                best = Some(chain);
            }
        }
        best
    }

    fn apply(state: &mut MappingState, chain: &MoveChain) {
        for mv in &chain.moves {
            state.apply_move(mv.atom, mv.to);
        }
    }

    #[test]
    fn direct_move_when_free_site_available() {
        // 5x5 lattice, 10 atoms in the top two rows; plenty of free sites.
        let p = params(5, 10, 1.0);
        let mut fx = Fixture::new(&p, 10);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        // q0 at (0,0), q9 at (4,1): distance > 1.
        let front = [&gate(&[0, 9])];
        let chain = best_of(&router, &fx, &front).expect("chain");
        assert_eq!(chain.moves.len(), 1, "one direct move suffices");
        apply(&mut fx.state, &chain);
        assert!(fx
            .state
            .qubits_mutually_connected(&[Qubit(0), Qubit(9)], p.r_int));
        fx.state.check_invariants().unwrap();
    }

    #[test]
    fn move_away_used_in_crowded_region() {
        // Dense 4x4 lattice with 15 atoms; a single free site at (3,3).
        let p = params(4, 15, 1.0);
        let mut fx = Fixture::new(&p, 15);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        // q0 at (0,0) and q10 at (2,2): all neighbours of both are occupied.
        let front = [&gate(&[0, 10])];
        let chain = best_of(&router, &fx, &front).expect("chain");
        assert!(
            chain.moves.len() >= 2,
            "crowded routing needs a move-away, got {:?}",
            chain.moves
        );
        apply(&mut fx.state, &chain);
        assert!(fx
            .state
            .qubits_mutually_connected(&[Qubit(0), Qubit(10)], p.r_int));
        fx.state.check_invariants().unwrap();
    }

    #[test]
    fn chain_bounded_by_worst_case() {
        // r_int = √2: three qubits fit an L-shaped arrangement (at r = 1
        // no three lattice sites are pairwise within range at all).
        let p = params(5, 20, std::f64::consts::SQRT_2);
        let fx = Fixture::new(&p, 20);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 12, 19])];
        let chain = best_of(&router, &fx, &front).expect("chain");
        // 2(m-1) for center-based chains; the anchor fallback may also
        // relocate the would-be center (<= 2m).
        assert!(chain.moves.len() <= 2 * 3, "bounded, got {:?}", chain.moves);
    }

    #[test]
    fn multiqubit_gate_becomes_executable() {
        let p = params(6, 20, std::f64::consts::SQRT_2);
        let mut fx = Fixture::new(&p, 20);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let qubits = [Qubit(0), Qubit(7), Qubit(19)];
        let front = [&gate(&[0, 7, 19])];
        let chain = best_of(&router, &fx, &front).expect("chain");
        apply(&mut fx.state, &chain);
        assert!(fx.state.qubits_mutually_connected(&qubits, p.r_int));
    }

    #[test]
    fn executable_gate_needs_no_chain() {
        let p = params(5, 10, 2.0);
        let fx = Fixture::new(&p, 10);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 1])];
        assert!(best_of(&router, &fx, &front).is_none());
    }

    #[test]
    fn parallelizable_chains_preferred_with_recent_moves() {
        let p = params(6, 12, 1.0);
        let fx = Fixture::new(&p, 12);
        let mut router =
            ShuttleRouter::new(&p, &MapperConfig::shuttle_only().with_time_weight(1.0));
        // Seed the recency window with a downward move.
        router.note_moves_applied(std::iter::once(Move::new(Site::new(5, 1), Site::new(5, 4))));
        let front = [&gate(&[0, 9])];
        let chain = best_of(&router, &fx, &front).expect("chain");
        // The chosen move should at least load-parallelize with the
        // recent one (distinct source).
        for mv in &chain.moves {
            assert_ne!(mv.from, Site::new(5, 1));
        }
    }

    #[test]
    fn chains_deterministic() {
        let p = params(5, 15, 1.0);
        let fx = Fixture::new(&p, 15);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 12])];
        let a = best_of(&router, &fx, &front).expect("chain");
        let b = best_of(&router, &fx, &front).expect("chain");
        assert_eq!(a, b);
    }

    #[test]
    fn propose_converts_chains_to_candidates() {
        let p = params(5, 10, 1.0);
        let fx = Fixture::new(&p, 10);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 9])];
        let proposal = router.propose(&fx.ctx(), &front, &[], false);
        assert_eq!(proposal.candidates.len(), 1);
        assert!(proposal.handoff.is_empty());
        let cand = &proposal.candidates[0];
        assert_eq!(cand.move_count(), cand.ops.len());
        assert_eq!(cand.swap_count(), 0);
    }
}
