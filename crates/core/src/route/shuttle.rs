//! Shuttling-based routing: move-chain construction and the cost function
//! of the paper's Eq. (4)–(5).
//!
//! Considering every possible rearrangement is infeasible (O(N^|C|),
//! §3.1.1), so only moves that bring gate qubits *directly* into the
//! vicinity of another gate qubit are considered, in two flavours
//! (Example 5):
//!
//! * a **direct move** `M` onto an unoccupied coordinate,
//! * a **move-away combination** `(M_away, M)` that first parks the
//!   blocking atom on the nearest free coordinate.
//!
//! For each gate, chains are built around every choice of *central* gate
//! qubit (which stays put) plus a fallback anchor scan for crowded
//! regions; chains are kept minimal (bounded by `2(m − 1)` moves) on the
//! intuition that two moves are unlikely to beat one even when
//! parallelized (§3.3.2). Timing and parallelism terms come from the
//! shared [`CostModel`].
//!
//! Candidate chains are simulated **in place** on the live
//! [`MappingState`] through the [`StateJournal`] (apply → evaluate →
//! exact undo) — the former per-candidate `MappingState::clone()` is
//! gone, and because undo restores the committed occupancy stamp, the
//! shared distance cache stays warm across the whole evaluation.
//!
//! # Scaling the Eq. (4) distance terms
//!
//! The cost of a move is a *difference of layer sums*
//! (`Σ_g d_g` over frontier and lookahead gates, before vs. after).
//! Re-deriving both sums from scratch after every simulated move made
//! candidate evaluation `O(moves × gates × operands²)` with a sqrt per
//! pair — the hot path at paper scale. Chains only move atoms (they
//! never permute `f_q`), so a move can change `d_g` only for the gates
//! touching the moved atom: the router keeps per-layer value arrays
//! (`front_vals`/`la_vals`) plus a generation-stamped atom → gate
//! incidence in the scratch arena, recomputes just the touched entries,
//! and re-sums the arrays in layer order. Untouched entries hold the
//! exact f64 a recompute would produce and the summation order is the
//! old `remaining()` order, so every cost — and therefore every chosen
//! chain — is **bit-identical** to the full-sweep implementation
//! (pinned by `reference_cost_equivalence` below and the artifact
//! snapshot suite).

use std::collections::VecDeque;

use na_arch::{HardwareParams, Move, Site};
use na_circuit::Qubit;

use crate::config::MapperConfig;
use crate::decision::Capability;
use crate::ops::AtomId;
use crate::route::distance::gate_remaining_distance_bounded;
use crate::route::scratch::ShuttleBufs;
use crate::route::{
    Candidate, CostModel, FrontierGate, Proposal, Router, RoutingContext, RoutingOp,
};
use crate::state::{MappingState, StateJournal};

/// One move of a chain, bound to the atom that travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainMove {
    /// The shuttled atom.
    pub atom: AtomId,
    /// Source site.
    pub from: Site,
    /// Target site (free when the move executes).
    pub to: Site,
}

impl ChainMove {
    fn as_move(&self) -> Move {
        Move::new(self.from, self.to)
    }
}

/// A complete move chain making one frontier gate executable.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveChain {
    /// `op_index` of the frontier gate this chain serves.
    pub op_index: usize,
    /// Moves in execution order (move-aways precede dependent moves).
    pub moves: Vec<ChainMove>,
    /// Total cost under Eq. (4).
    pub cost: f64,
}

/// The shuttling-based router. Owns the recent-move window used by the
/// parallelism term `C_t_parallel`; cost terms come from the shared
/// [`CostModel`], and chain construction/cost replay borrow buffers from
/// the scratch arena.
#[derive(Debug)]
pub struct ShuttleRouter {
    cost: CostModel,
    recent_moves: VecDeque<Move>,
}

impl ShuttleRouter {
    /// Creates a router for the given hardware and configuration.
    pub fn new(params: &HardwareParams, config: &MapperConfig) -> Self {
        ShuttleRouter {
            cost: CostModel::new(params, config),
            recent_moves: VecDeque::new(),
        }
    }

    /// The best chain for each non-executable frontier gate, in frontier
    /// order.
    pub fn best_chains(
        &self,
        ctx: &mut RoutingContext<'_>,
        front: &[&FrontierGate],
        lookahead: &[&FrontierGate],
    ) -> Vec<MoveChain> {
        let mut result = Vec::new();
        let mut p = ctx.parts();
        // Round tables: per-gate remaining-distance values (committed
        // state) and the atom → gate incidence that tells a simulated
        // move which entries it can change. Values and their layer-order
        // summation replicate the old full `remaining()` sweep exactly.
        let (r_int, zero_sq) = (self.cost.r_int, self.cost.r_int_zero_sq);
        {
            let bufs = &mut *p.shuttle;
            bufs.ensure_atoms(p.state.num_atoms());
            bufs.round_gen += 1;
            let gen = bufs.round_gen;
            let touch = |bufs: &mut ShuttleBufs, atom: crate::ops::AtomId, entry: (u32, bool)| {
                let a = atom.index();
                if bufs.touch_epoch[a] != gen {
                    bufs.touch_epoch[a] = gen;
                    bufs.touch_lists[a].clear();
                }
                bufs.touch_lists[a].push(entry);
            };
            bufs.front_vals.clear();
            for (gi, g) in front.iter().enumerate() {
                bufs.front_vals.push(gate_remaining_distance_bounded(
                    p.state, &g.qubits, r_int, zero_sq,
                ));
                for &q in &g.qubits {
                    touch(bufs, p.state.atom_of_qubit(q), (gi as u32, true));
                }
            }
            bufs.la_vals.clear();
            for (gi, g) in lookahead.iter().enumerate() {
                bufs.la_vals.push(gate_remaining_distance_bounded(
                    p.state, &g.qubits, r_int, zero_sq,
                ));
                for &q in &g.qubits {
                    touch(bufs, p.state.atom_of_qubit(q), (gi as u32, false));
                }
            }
            bufs.val_undo.clear();
        }
        // The pre-chain distance sums are a property of the committed
        // state, identical for every candidate of this round — compute
        // them once and thread them through the simulations.
        let before = (
            p.shuttle.front_vals.iter().sum(),
            p.shuttle.la_vals.iter().sum(),
        );
        for gate in front {
            if p.state
                .qubits_mutually_connected(&gate.qubits, self.cost.r_int)
            {
                continue; // already executable
            }
            if let Some(cost) =
                self.best_chain_for_gate(&mut p, &gate.qubits, front, lookahead, before)
            {
                result.push(MoveChain {
                    op_index: gate.op_index,
                    moves: p.shuttle.best_chain.clone(),
                    cost,
                });
            }
        }
        result
    }

    /// Evaluates every candidate chain for one gate (one per viable
    /// central qubit, plus the anchor-scan fallback), leaving the
    /// cheapest in `parts.shuttle.best_chain` and returning its cost.
    fn best_chain_for_gate(
        &self,
        p: &mut crate::route::context::RouteParts<'_>,
        qubits: &[Qubit],
        front: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        before: (f64, f64),
    ) -> Option<f64> {
        let mut best: Option<f64> = None;
        for ci in 0..qubits.len() {
            let anchor = p.state.site_of_qubit(qubits[ci]);
            if let Some(cost) = self.simulate_chain(
                p.state,
                p.journal,
                p.shuttle,
                p.table_int,
                qubits,
                anchor,
                Some(ci),
                front,
                lookahead,
                before,
            ) {
                if best.is_none_or(|b| cost < b - 1e-12) {
                    best = Some(cost);
                    std::mem::swap(&mut p.shuttle.chain, &mut p.shuttle.best_chain);
                }
            }
        }
        if best.is_none() {
            // Fallback: scan anchors near the gate centroid. Only the
            // first `SCAN` anchors are ever examined, so a partial
            // selection (select the `SCAN` smallest, sort just those)
            // replaces the full-lattice sort — the `(distance, site)`
            // key is a total order, so the examined prefix is
            // identical. Candidate sites are gathered region ring by
            // region ring around the centroid rather than from the whole
            // lattice: every site in a Chebyshev ring-`k` region lies
            // strictly farther than `(k−1)·side` from the centroid (whose
            // fractional parts are multiples of `1/m`, so the slack dwarfs
            // float rounding), so once that bound strictly exceeds the
            // `SCAN`-th smallest collected distance no uncollected site
            // can enter the examined prefix — the collected set provably
            // contains the true top `SCAN` and the selection below is
            // byte-identical to the full-lattice scan.
            const SCAN: usize = 64;
            let state = &*p.state;
            let lattice = state.lattice();
            let centroid = crate::route::context::centroid_of(state, qubits);
            let by_centroid = |a: &Site, b: &Site| {
                RoutingContext::dist_sq_to(centroid, *a)
                    .partial_cmp(&RoutingContext::dist_sq_to(centroid, *b))
                    .expect("finite")
                    .then(a.cmp(b))
            };
            let grid = p.table_int.regions();
            let (regions_x, regions_y) = grid.dims();
            let side = grid.side();
            let cx = ((centroid.0.max(0.0) as u32) / side).min(regions_x - 1);
            let cy = ((centroid.1.max(0.0) as u32) / side).min(regions_y - 1);
            let max_k = (cx.max(regions_x - 1 - cx)).max(cy.max(regions_y - 1 - cy));
            p.shuttle.anchor_sites.clear();
            {
                let sites = &mut p.shuttle.anchor_sites;
                for k in 0..=max_k {
                    if k > 0 && sites.len() >= SCAN {
                        let lb = f64::from((k - 1) * side);
                        let (_, kth, _) = sites.select_nth_unstable_by(SCAN - 1, by_centroid);
                        if lb * lb > RoutingContext::dist_sq_to(centroid, *kth) {
                            break;
                        }
                    }
                    na_arch::RegionGrid::for_each_ring_region(
                        regions_x,
                        regions_y,
                        cx,
                        cy,
                        k,
                        &mut |rx, ry| {
                            let region = ry * regions_x + rx;
                            for &idx in grid.sites_in(region) {
                                sites.push(lattice.site(idx as usize));
                            }
                        },
                    );
                }
            }
            let scan = p.shuttle.anchor_sites.len().min(SCAN);
            if p.shuttle.anchor_sites.len() > scan {
                p.shuttle
                    .anchor_sites
                    .select_nth_unstable_by(scan - 1, by_centroid);
            }
            p.shuttle.anchor_sites[..scan].sort_by(by_centroid);
            for i in 0..scan {
                let anchor = p.shuttle.anchor_sites[i];
                if let Some(cost) = self.simulate_chain(
                    p.state,
                    p.journal,
                    p.shuttle,
                    p.table_int,
                    qubits,
                    anchor,
                    None,
                    front,
                    lookahead,
                    before,
                ) {
                    best = Some(cost);
                    std::mem::swap(&mut p.shuttle.chain, &mut p.shuttle.best_chain);
                    break;
                }
            }
        }
        best
    }

    /// One Eq. (4) cost term: applies `mv` through the journal, updates
    /// the per-gate value arrays for the gates the moved atom touches,
    /// folds the frontier/lookahead deltas and parallelism term into the
    /// accumulators, and advances the replayed recency window. The
    /// carried `before_*` values equal a recomputation at the pre-move
    /// state (nothing mutates the state between moves) and the layer
    /// sums are taken in the old full-sweep order over bit-identical
    /// per-gate values, so the incremental pass is bit-identical to a
    /// full cost replay.
    #[allow(clippy::too_many_arguments)]
    fn account_move(
        &self,
        state: &mut MappingState,
        journal: &mut StateJournal,
        bufs: &mut ShuttleBufs,
        mv: ChainMove,
        front: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        before_f: &mut f64,
        before_l: &mut f64,
        total: &mut f64,
    ) {
        let (r_int, zero_sq) = (self.cost.r_int, self.cost.r_int_zero_sq);
        state.apply_move_journaled(mv.atom, mv.to, journal);
        // Only gates touching the moved atom can change value; every
        // other entry is exactly what a recompute would produce.
        let a = mv.atom.index();
        if a < bufs.touch_epoch.len() && bufs.touch_epoch[a] == bufs.round_gen {
            for ti in 0..bufs.touch_lists[a].len() {
                let (gi, is_front) = bufs.touch_lists[a][ti];
                let gate = if is_front {
                    front[gi as usize]
                } else {
                    lookahead[gi as usize]
                };
                let val = gate_remaining_distance_bounded(state, &gate.qubits, r_int, zero_sq);
                let slot = if is_front {
                    &mut bufs.front_vals[gi as usize]
                } else {
                    &mut bufs.la_vals[gi as usize]
                };
                bufs.val_undo.push((gi, is_front, *slot));
                *slot = val;
            }
        }
        let after_f: f64 = bufs.front_vals.iter().sum();
        let after_l: f64 = bufs.la_vals.iter().sum();
        let c_parallel: f64 = bufs
            .recent
            .iter()
            .rev()
            .take(self.cost.recency_window)
            .map(|m| self.cost.shuttle_delta_t(&mv.as_move(), m))
            .sum();
        *total += (after_f - *before_f)
            + self.cost.lookahead_weight * (after_l - *before_l)
            + self.cost.time_weight * c_parallel;
        bufs.recent.push(mv.as_move());
        *before_f = after_f;
        *before_l = after_l;
    }

    /// Builds a chain gathering all gate qubits on mutually compatible
    /// sites around `anchor` into `bufs.chain`, simulating each move in
    /// place through the journal — accumulating the Eq. (4) cost as it
    /// goes — and rolling the state back before returning. When `center`
    /// names a gate qubit, that qubit stays on its current site. Returns
    /// the chain's total cost, or `None` when no chain exists at this
    /// anchor.
    #[allow(clippy::too_many_arguments)]
    fn simulate_chain(
        &self,
        state: &mut MappingState,
        journal: &mut StateJournal,
        bufs: &mut ShuttleBufs,
        table_int: &na_arch::NeighborTable,
        qubits: &[Qubit],
        anchor: Site,
        center: Option<usize>,
        front: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        before: (f64, f64),
    ) -> Option<f64> {
        let r_int = self.cost.r_int;
        let r_sq = self.cost.r_int_within_sq;
        let mark = journal.mark();
        let val_mark = bufs.val_undo.len();
        bufs.chain.clear();
        bufs.placed.clear();
        bufs.recent.clear();
        bufs.recent.extend(self.recent_moves.iter().copied());
        let (mut before_f, mut before_l) = before;
        let mut total = 0.0;

        // Placement order: the center first (stays put), then the rest by
        // proximity to the anchor.
        bufs.order.clear();
        bufs.order.extend(0..qubits.len());
        {
            let state = &*state;
            bufs.order.sort_by_key(|&i| {
                let key = if center == Some(i) {
                    -1
                } else {
                    state.site_of_qubit(qubits[i]).distance_sq(anchor)
                };
                (key, i)
            });
        }

        for oi in 0..bufs.order.len() {
            let qi = bufs.order[oi];
            let q = qubits[qi];
            let here = state.site_of_qubit(q);
            let stays = bufs.placed.iter().all(|&t| t.distance_sq(here) <= r_sq)
                && (center == Some(qi) || here.distance_sq(anchor) <= r_sq);
            if stays {
                // Already compatible with everything placed so far.
                bufs.placed.push(here);
                continue;
            }
            // Candidate targets around the anchor (the CSR slice lists
            // the hood's in-bounds sites in identical order); must stay
            // compatible with already-placed sites.
            bufs.site_candidates.clear();
            {
                let lattice = state.lattice();
                let placed = &bufs.placed;
                let anchor_idx = lattice.index(anchor);
                bufs.site_candidates.extend(
                    std::iter::once(anchor)
                        .chain(
                            table_int
                                .neighbors(anchor_idx)
                                .iter()
                                .map(|&n| lattice.site(n as usize)),
                        )
                        .filter(|s| {
                            placed.iter().all(|&t| t.distance_sq(*s) <= r_sq) && !placed.contains(s)
                        }),
                );
            }

            // First preference: a free site (direct move) — a linear
            // min-scan under the exact `(distance², site)` key the old
            // sort used, so the winner is identical without the
            // O(n log n) sort (which now only runs when the move-away
            // path below actually needs ordered candidates).
            let direct = bufs
                .site_candidates
                .iter()
                .copied()
                .filter(|&s| state.is_free(s))
                .min_by_key(|&s| (here.distance_sq(s), s));
            let target = if let Some(t) = direct {
                t
            } else {
                bufs.site_candidates
                    .sort_by_key(|s| (here.distance_sq(*s), *s));
                // Move-away: evict the blocking atom from the best
                // occupied candidate that is not another gate qubit.
                bufs.gate_sites.clear();
                {
                    let state = &*state;
                    bufs.gate_sites
                        .extend(qubits.iter().map(|&g| state.site_of_qubit(g)));
                }
                let mut evicted = None;
                for si in 0..bufs.site_candidates.len() {
                    let s = bufs.site_candidates[si];
                    if bufs.gate_sites.contains(&s) {
                        continue;
                    }
                    let Some(blocker) = state.atom_at_site(s) else {
                        continue;
                    };
                    bufs.excluded.clear();
                    bufs.excluded.extend_from_slice(&bufs.placed);
                    bufs.excluded.extend_from_slice(&bufs.gate_sites);
                    bufs.excluded.push(s);
                    let Some(park) = state.nearest_free_site(s, &bufs.excluded) else {
                        continue;
                    };
                    let away = ChainMove {
                        atom: blocker,
                        from: s,
                        to: park,
                    };
                    bufs.chain.push(away);
                    self.account_move(
                        state,
                        journal,
                        bufs,
                        away,
                        front,
                        lookahead,
                        &mut before_f,
                        &mut before_l,
                        &mut total,
                    );
                    evicted = Some(s);
                    break;
                }
                match evicted {
                    Some(s) => s,
                    None => {
                        state.undo_to(journal, mark);
                        rollback_vals(bufs, val_mark);
                        return None;
                    }
                }
            };
            let atom = state.atom_of_qubit(q);
            let mv = ChainMove {
                atom,
                from: state.site_of_atom(atom),
                to: target,
            };
            bufs.chain.push(mv);
            self.account_move(
                state,
                journal,
                bufs,
                mv,
                front,
                lookahead,
                &mut before_f,
                &mut before_l,
                &mut total,
            );
            bufs.placed.push(target);
        }

        // Chain must actually make the gate executable.
        let ok = state.qubits_mutually_connected(qubits, r_int);
        state.undo_to(journal, mark);
        rollback_vals(bufs, val_mark);
        if !ok {
            return None;
        }
        // Center-based chains respect the paper's 2(m−1) bound; the
        // anchor fallback may additionally move the would-be center.
        debug_assert!(bufs.chain.len() <= 2 * qubits.len());
        Some(total)
    }

    /// Records applied moves into the recency window.
    fn note_moves_applied(&mut self, moves: impl Iterator<Item = Move>) {
        for mv in moves {
            self.recent_moves.push_back(mv);
            while self.recent_moves.len() > self.cost.recency_window {
                self.recent_moves.pop_front();
            }
        }
    }
}

/// Reverts the per-gate value arrays to their state at `val_mark` —
/// the array counterpart of [`MappingState::undo_to`], replayed newest
/// first so repeated updates of the same gate restore correctly.
fn rollback_vals(bufs: &mut ShuttleBufs, val_mark: usize) {
    while bufs.val_undo.len() > val_mark {
        let (gi, is_front, v) = bufs.val_undo.pop().expect("length checked");
        if is_front {
            bufs.front_vals[gi as usize] = v;
        } else {
            bufs.la_vals[gi as usize] = v;
        }
    }
}

/// Sum of remaining routing distances over a gate layer — the Eq. (4)
/// distance term, evaluated in layer order so the floating-point sum is
/// reproducible. The hot path maintains this sum incrementally through
/// the scratch value arrays; this full sweep remains as the reference
/// implementation the equivalence tests compare against.
#[cfg(test)]
fn remaining(state: &MappingState, gates: &[&FrontierGate], r_int: f64) -> f64 {
    gates
        .iter()
        .map(|g| crate::route::distance::gate_remaining_distance(state, &g.qubits, r_int))
        .sum()
}

impl Router for ShuttleRouter {
    fn capability(&self) -> Capability {
        Capability::Shuttling
    }

    /// Proposes the best chain per frontier gate; ranking across gates
    /// happens in the engine's shared comparator.
    fn propose(
        &self,
        ctx: &mut RoutingContext<'_>,
        frontier: &[&FrontierGate],
        lookahead: &[&FrontierGate],
        _fallback: bool,
    ) -> Proposal {
        let candidates = self
            .best_chains(ctx, frontier, lookahead)
            .into_iter()
            .map(|chain| Candidate {
                tier: 0, // reassigned by the engine
                cost: chain.cost,
                op_index: chain.op_index,
                ops: chain
                    .moves
                    .iter()
                    .map(|mv| RoutingOp::Move {
                        atom: mv.atom,
                        from: mv.from,
                        to: mv.to,
                    })
                    .collect(),
            })
            .collect();
        Proposal {
            candidates,
            handoff: Vec::new(),
        }
    }

    fn note_applied(&mut self, _state: &MappingState, candidate: &Candidate) {
        self.note_moves_applied(candidate.ops.iter().filter_map(|op| match op {
            RoutingOp::Move { from, to, .. } => Some(Move::new(*from, *to)),
            _ => None,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::Neighborhood;

    use crate::route::RouteScratch;

    fn params(side: u32, atoms: u32, r: f64) -> HardwareParams {
        HardwareParams::shuttling()
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .radius(r)
            .build()
            .expect("valid")
    }

    fn gate(qubits: &[u32]) -> FrontierGate {
        FrontierGate {
            op_index: 0,
            qubits: qubits.iter().map(|&q| Qubit(q)).collect(),
            capability: Capability::Shuttling,
        }
    }

    struct Fixture {
        state: MappingState,
        hood: Neighborhood,
        table: na_arch::NeighborTable,
        r_int: f64,
        scratch: RouteScratch,
    }

    impl Fixture {
        fn new(p: &HardwareParams, qubits: u32) -> Self {
            let state = MappingState::identity(p, qubits).expect("fits");
            let hood = Neighborhood::new(p.r_int);
            let table = na_arch::NeighborTable::build(state.lattice(), &hood);
            Fixture {
                state,
                hood,
                table,
                r_int: p.r_int,
                scratch: RouteScratch::new(),
            }
        }

        fn ctx(&mut self) -> RoutingContext<'_> {
            RoutingContext::new(
                &mut self.state,
                &self.hood,
                &self.table,
                self.r_int,
                &mut self.scratch,
            )
        }
    }

    fn best_of(
        router: &ShuttleRouter,
        fx: &mut Fixture,
        front: &[&FrontierGate],
    ) -> Option<MoveChain> {
        let mut best: Option<MoveChain> = None;
        for chain in router.best_chains(&mut fx.ctx(), front, &[]) {
            if best.as_ref().is_none_or(|b| chain.cost < b.cost - 1e-12) {
                best = Some(chain);
            }
        }
        best
    }

    fn apply(state: &mut MappingState, chain: &MoveChain) {
        for mv in &chain.moves {
            state.apply_move(mv.atom, mv.to);
        }
    }

    #[test]
    fn direct_move_when_free_site_available() {
        // 5x5 lattice, 10 atoms in the top two rows; plenty of free sites.
        let p = params(5, 10, 1.0);
        let mut fx = Fixture::new(&p, 10);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        // q0 at (0,0), q9 at (4,1): distance > 1.
        let front = [&gate(&[0, 9])];
        let chain = best_of(&router, &mut fx, &front).expect("chain");
        assert_eq!(chain.moves.len(), 1, "one direct move suffices");
        apply(&mut fx.state, &chain);
        assert!(fx
            .state
            .qubits_mutually_connected(&[Qubit(0), Qubit(9)], p.r_int));
        fx.state.check_invariants().unwrap();
    }

    #[test]
    fn candidate_simulation_leaves_state_untouched() {
        // The journal invariant: evaluating chains must not mutate the
        // committed state — positions, qubit map, or occupancy stamp.
        let p = params(4, 15, 1.0);
        let mut fx = Fixture::new(&p, 15);
        let reference = fx.state.clone();
        let stamp = fx.state.occupancy_stamp();
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 10])];
        let _ = router.best_chains(&mut fx.ctx(), &front, &[]);
        assert_eq!(fx.state, reference);
        assert_eq!(fx.state.occupancy_stamp(), stamp);
        assert!(!fx.scratch.speculation_in_flight());
        fx.state.check_invariants().unwrap();
    }

    #[test]
    fn move_away_used_in_crowded_region() {
        // Dense 4x4 lattice with 15 atoms; a single free site at (3,3).
        let p = params(4, 15, 1.0);
        let mut fx = Fixture::new(&p, 15);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        // q0 at (0,0) and q10 at (2,2): all neighbours of both are occupied.
        let front = [&gate(&[0, 10])];
        let chain = best_of(&router, &mut fx, &front).expect("chain");
        assert!(
            chain.moves.len() >= 2,
            "crowded routing needs a move-away, got {:?}",
            chain.moves
        );
        apply(&mut fx.state, &chain);
        assert!(fx
            .state
            .qubits_mutually_connected(&[Qubit(0), Qubit(10)], p.r_int));
        fx.state.check_invariants().unwrap();
    }

    #[test]
    fn chain_bounded_by_worst_case() {
        // r_int = √2: three qubits fit an L-shaped arrangement (at r = 1
        // no three lattice sites are pairwise within range at all).
        let p = params(5, 20, std::f64::consts::SQRT_2);
        let mut fx = Fixture::new(&p, 20);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 12, 19])];
        let chain = best_of(&router, &mut fx, &front).expect("chain");
        // 2(m-1) for center-based chains; the anchor fallback may also
        // relocate the would-be center (<= 2m).
        assert!(chain.moves.len() <= 2 * 3, "bounded, got {:?}", chain.moves);
    }

    #[test]
    fn multiqubit_gate_becomes_executable() {
        let p = params(6, 20, std::f64::consts::SQRT_2);
        let mut fx = Fixture::new(&p, 20);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let qubits = [Qubit(0), Qubit(7), Qubit(19)];
        let front = [&gate(&[0, 7, 19])];
        let chain = best_of(&router, &mut fx, &front).expect("chain");
        apply(&mut fx.state, &chain);
        assert!(fx.state.qubits_mutually_connected(&qubits, p.r_int));
    }

    #[test]
    fn executable_gate_needs_no_chain() {
        let p = params(5, 10, 2.0);
        let mut fx = Fixture::new(&p, 10);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 1])];
        assert!(best_of(&router, &mut fx, &front).is_none());
    }

    #[test]
    fn parallelizable_chains_preferred_with_recent_moves() {
        let p = params(6, 12, 1.0);
        let mut fx = Fixture::new(&p, 12);
        let mut router =
            ShuttleRouter::new(&p, &MapperConfig::shuttle_only().with_time_weight(1.0));
        // Seed the recency window with a downward move.
        router.note_moves_applied(std::iter::once(Move::new(Site::new(5, 1), Site::new(5, 4))));
        let front = [&gate(&[0, 9])];
        let chain = best_of(&router, &mut fx, &front).expect("chain");
        // The chosen move should at least load-parallelize with the
        // recent one (distinct source).
        for mv in &chain.moves {
            assert_ne!(mv.from, Site::new(5, 1));
        }
    }

    #[test]
    fn chains_deterministic() {
        let p = params(5, 15, 1.0);
        let mut fx = Fixture::new(&p, 15);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 12])];
        let a = best_of(&router, &mut fx, &front).expect("chain");
        let b = best_of(&router, &mut fx, &front).expect("chain");
        assert_eq!(a, b);
    }

    /// The incremental per-gate value arrays must reproduce the
    /// pre-refactor full-sweep Eq. (4) cost **bit-for-bit**: replay every
    /// returned chain with from-scratch `remaining()` sweeps after each
    /// move and require exact f64 equality.
    #[test]
    fn reference_cost_equivalence() {
        let p = params(4, 15, 1.0); // dense: exercises move-aways too
        let mut fx = Fixture::new(&p, 15);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only().with_time_weight(0.7));
        let front_gates = [gate(&[0, 12]), gate(&[3, 14]), gate(&[1, 10])];
        let la_gates = [gate(&[2, 13])];
        let front: Vec<&FrontierGate> = front_gates.iter().collect();
        let la: Vec<&FrontierGate> = la_gates.iter().collect();
        let chains = router.best_chains(&mut fx.ctx(), &front, &la);
        assert!(!chains.is_empty(), "dense fixture must yield chains");
        for chain in &chains {
            let mut state = fx.state.clone();
            let r_int = router.cost.r_int;
            let mut before_f = remaining(&state, &front, r_int);
            let mut before_l = remaining(&state, &la, r_int);
            let mut recent: Vec<Move> = router.recent_moves.iter().copied().collect();
            let mut total = 0.0;
            for mv in &chain.moves {
                state.apply_move(mv.atom, mv.to);
                let after_f = remaining(&state, &front, r_int);
                let after_l = remaining(&state, &la, r_int);
                let m = Move::new(mv.from, mv.to);
                let c_par: f64 = recent
                    .iter()
                    .rev()
                    .take(router.cost.recency_window)
                    .map(|r| router.cost.shuttle_delta_t(&m, r))
                    .sum();
                total += (after_f - before_f)
                    + router.cost.lookahead_weight * (after_l - before_l)
                    + router.cost.time_weight * c_par;
                recent.push(m);
                before_f = after_f;
                before_l = after_l;
            }
            assert_eq!(
                total, chain.cost,
                "incremental cost must be bit-identical to the full sweep"
            );
        }
    }

    /// The direct-move linear min-scan must pick the same site the old
    /// sort-then-first-free selection picked, including on distance
    /// ties (broken by site order).
    #[test]
    fn direct_move_min_scan_matches_sorted_selection() {
        let p = params(5, 10, 1.0);
        let fx = Fixture::new(&p, 10);
        let here = Site::new(2, 1);
        // Free candidates at equal distance from `here`: the site-order
        // tie-break decides.
        let candidates = [
            Site::new(2, 3),
            Site::new(2, 2), // distance 1 — tied with (3,1)... no: d((2,2))=1
            Site::new(4, 1),
            Site::new(3, 2), // distance sq 2 — tied with (1,2)
            Site::new(1, 2), // distance sq 2, smaller site order
        ];
        let free: Vec<Site> = candidates
            .iter()
            .copied()
            .filter(|&s| fx.state.is_free(s))
            .collect();
        assert!(free.len() >= 2, "fixture must leave tied candidates free");
        // Old selection: full sort by (d², site), then first free.
        let mut sorted = candidates.to_vec();
        sorted.sort_by_key(|s| (here.distance_sq(*s), *s));
        let old = sorted.iter().copied().find(|&s| fx.state.is_free(s));
        // New selection: linear min-scan over free candidates.
        let new = candidates
            .iter()
            .copied()
            .filter(|&s| fx.state.is_free(s))
            .min_by_key(|&s| (here.distance_sq(s), s));
        assert_eq!(new, old);
    }

    #[test]
    fn warm_scratch_matches_fresh_clone_evaluation() {
        // The clone-path equivalence at router granularity: proposing on
        // the live state with a warm arena must match proposing on a
        // pristine clone with a cold arena, candidate for candidate.
        let p = params(5, 15, 1.0);
        let mut fx = Fixture::new(&p, 15);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front_gates = [gate(&[0, 12]), gate(&[3, 14])];
        let front: Vec<&FrontierGate> = front_gates.iter().collect();
        // Warm the arena with one evaluation round first.
        let _ = router.best_chains(&mut fx.ctx(), &front, &[]);
        let live = router.best_chains(&mut fx.ctx(), &front, &[]);
        let mut clone = fx.state.clone();
        let mut cold = RouteScratch::new();
        let mut clone_ctx =
            RoutingContext::new(&mut clone, &fx.hood, &fx.table, fx.r_int, &mut cold);
        let from_clone = router.best_chains(&mut clone_ctx, &front, &[]);
        assert_eq!(live, from_clone);
    }

    #[test]
    fn propose_converts_chains_to_candidates() {
        let p = params(5, 10, 1.0);
        let mut fx = Fixture::new(&p, 10);
        let router = ShuttleRouter::new(&p, &MapperConfig::shuttle_only());
        let front = [&gate(&[0, 9])];
        let proposal = router.propose(&mut fx.ctx(), &front, &[], false);
        assert_eq!(proposal.candidates.len(), 1);
        assert!(proposal.handoff.is_empty());
        let cand = &proposal.candidates[0];
        assert_eq!(cand.move_count(), cand.ops.len());
        assert_eq!(cand.swap_count(), 0);
    }
}
