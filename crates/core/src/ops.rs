//! Mapped hardware operations — the mapper's output format.
//!
//! The mapper emits a linear stream of [`MappedOp`]s: original circuit
//! gates bound to concrete atoms/sites, routing SWAPs, and shuttle moves.
//! `na-schedule` consumes this stream, decomposes SWAPs to native gates,
//! batches compatible moves into AOD transactions and computes the
//! schedule metrics of the paper's Eq. (1).

use na_arch::Site;
use na_circuit::Operation;

use crate::layout::InitialLayout;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical hardware qubit (a trapped atom).
///
/// Distinct from circuit [`na_circuit::Qubit`]s and from trap [`Site`]s:
/// the mapping `f_q` assigns circuit qubits to atoms and the mapping `f_a`
/// assigns atoms to sites (paper §2.2, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// One operation of the mapped circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MappedOp {
    /// An original circuit operation executed on concrete atoms.
    Gate {
        /// Index of the operation in the input circuit.
        op_index: usize,
        /// The operation itself.
        op: Operation,
        /// Atoms carrying the operands, in operand order.
        atoms: Vec<AtomId>,
        /// Trap sites of those atoms at execution time.
        sites: Vec<Site>,
    },
    /// A routing SWAP inserted by gate-based mapping (decomposes to
    /// 3 CZ + 6 H downstream).
    Swap {
        /// First atom.
        a: AtomId,
        /// Second atom.
        b: AtomId,
        /// Site of `a`.
        site_a: Site,
        /// Site of `b`.
        site_b: Site,
    },
    /// A shuttle move inserted by shuttling-based mapping.
    Shuttle {
        /// The moved atom.
        atom: AtomId,
        /// Source site.
        from: Site,
        /// Target site (free at move time).
        to: Site,
    },
}

impl MappedOp {
    /// Atoms touched by this operation.
    pub fn atoms(&self) -> Vec<AtomId> {
        match self {
            MappedOp::Gate { atoms, .. } => atoms.clone(),
            MappedOp::Swap { a, b, .. } => vec![*a, *b],
            MappedOp::Shuttle { atom, .. } => vec![*atom],
        }
    }

    /// Returns `true` for routing overhead (SWAPs and shuttles) as opposed
    /// to original circuit gates.
    pub fn is_overhead(&self) -> bool {
        !matches!(self, MappedOp::Gate { .. })
    }
}

impl fmt::Display for MappedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappedOp::Gate { op, atoms, .. } => {
                write!(f, "{op} @")?;
                for a in atoms {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            MappedOp::Swap {
                a,
                b,
                site_a,
                site_b,
            } => {
                write!(f, "swap {a}{site_a} <-> {b}{site_b}")
            }
            MappedOp::Shuttle { atom, from, to } => {
                write!(f, "shuttle {atom} {from} -> {to}")
            }
        }
    }
}

/// The mapped circuit: hardware operation stream plus context.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::generators::GraphState;
/// use na_mapper::{HybridMapper, MapperConfig};
///
/// let params = HardwareParams::shuttling()
///     .to_builder()
///     .lattice(5, 3.0)
///     .num_atoms(10)
///     .build()?;
/// let mapper = HybridMapper::new(params, MapperConfig::shuttle_only())?;
/// let outcome = mapper.map(&GraphState::new(8).edges(10).seed(3).build())?;
/// // Shuttling-only mapping inserts no SWAPs (ΔCZ = 0 in Table 1a).
/// assert_eq!(outcome.mapped.swap_count(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappedCircuit {
    /// Circuit width (logical qubits).
    pub num_qubits: u32,
    /// Number of hardware atoms.
    pub num_atoms: u32,
    /// The initial layout the stream starts from (needed to replay it).
    pub layout: InitialLayout,
    /// The operation stream in execution order.
    pub ops: Vec<MappedOp>,
}

impl MappedCircuit {
    /// Creates an empty mapped circuit starting from the identity layout.
    pub fn new(num_qubits: u32, num_atoms: u32) -> Self {
        MappedCircuit::with_layout(num_qubits, num_atoms, InitialLayout::Identity)
    }

    /// Creates an empty mapped circuit with an explicit initial layout.
    pub fn with_layout(num_qubits: u32, num_atoms: u32, layout: InitialLayout) -> Self {
        MappedCircuit {
            num_qubits,
            num_atoms,
            layout,
            ops: Vec::new(),
        }
    }

    /// Number of operations in the stream.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` for an empty stream.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of inserted routing SWAPs.
    pub fn swap_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, MappedOp::Swap { .. }))
            .count()
    }

    /// Number of shuttle moves.
    pub fn shuttle_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, MappedOp::Shuttle { .. }))
            .count()
    }

    /// Number of executed circuit gates.
    pub fn gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, MappedOp::Gate { .. }))
            .count()
    }

    /// Additional CZ gates introduced by routing: each SWAP decomposes to
    /// 3 CZ (the paper's ΔCZ metric).
    pub fn delta_cz(&self) -> usize {
        3 * self.swap_count()
    }

    /// Iterates over the operation stream.
    pub fn iter(&self) -> std::slice::Iter<'_, MappedOp> {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_circuit::{GateKind, Qubit};

    fn gate_op() -> MappedOp {
        MappedOp::Gate {
            op_index: 0,
            op: Operation::new(GateKind::Cz, vec![Qubit(0), Qubit(1)]).unwrap(),
            atoms: vec![AtomId(0), AtomId(1)],
            sites: vec![Site::new(0, 0), Site::new(1, 0)],
        }
    }

    #[test]
    fn counts_by_kind() {
        let mut mc = MappedCircuit::new(2, 4);
        mc.ops.push(gate_op());
        mc.ops.push(MappedOp::Swap {
            a: AtomId(0),
            b: AtomId(2),
            site_a: Site::new(0, 0),
            site_b: Site::new(0, 1),
        });
        mc.ops.push(MappedOp::Shuttle {
            atom: AtomId(1),
            from: Site::new(1, 0),
            to: Site::new(3, 3),
        });
        assert_eq!(mc.gate_count(), 1);
        assert_eq!(mc.swap_count(), 1);
        assert_eq!(mc.shuttle_count(), 1);
        assert_eq!(mc.delta_cz(), 3);
        assert_eq!(mc.len(), 3);
    }

    #[test]
    fn overhead_classification() {
        assert!(!gate_op().is_overhead());
        let swap = MappedOp::Swap {
            a: AtomId(0),
            b: AtomId(1),
            site_a: Site::new(0, 0),
            site_b: Site::new(1, 0),
        };
        assert!(swap.is_overhead());
    }

    #[test]
    fn atoms_listed_per_kind() {
        assert_eq!(gate_op().atoms(), vec![AtomId(0), AtomId(1)]);
        let shuttle = MappedOp::Shuttle {
            atom: AtomId(7),
            from: Site::new(0, 0),
            to: Site::new(1, 1),
        };
        assert_eq!(shuttle.atoms(), vec![AtomId(7)]);
    }

    #[test]
    fn display_is_readable() {
        let text = gate_op().to_string();
        assert!(text.contains("cz"));
        assert!(text.contains("A0"));
    }
}
