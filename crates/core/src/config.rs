//! Mapper configuration.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::layout::InitialLayout;

/// How many routing candidates one engine round may commit.
///
/// * [`RoundMode::Single`] — the classic behaviour: every round evaluates
///   the frontier and commits exactly the one globally best candidate.
/// * [`RoundMode::Speculative`] — a round batch-evaluates candidates for
///   all commit-eligible frontier gates (the first qubit-disjoint front
///   group), tags each with its conflict set via journaled speculative
///   application, and greedily commits a maximal non-conflicting subset
///   in deterministic `(tier, cost, proposal order)` order.
///
/// Speculative mode changes how many routing ops land per round (and may
/// therefore reorder the emitted op stream) but never produces an invalid
/// mapping: committed candidates have pairwise-disjoint conflict sets, so
/// each one is exactly as valid as it was when simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundMode {
    /// One commit per routing round.
    Single,
    /// Conflict-checked multi-commit rounds.
    Speculative,
}

/// Tuning knobs of the hybrid mapping process.
///
/// Defaults reproduce the paper's evaluation settings (§4.1):
/// `λ_t = 0`, `w_l = 0.1`, `w_t = 0.1`, recency window `t = 4`.
///
/// The capability weights `α_g` (gate-based) and `α_s` (shuttling-based)
/// select the operating mode:
///
/// * `α_s = 0` — gate-based only (paper mode with pure SWAP insertion),
/// * `α_g = 0` — shuttling-based only,
/// * both positive — hybrid; only the ratio `α = α_g/α_s` matters.
///
/// # Example
///
/// ```
/// use na_mapper::MapperConfig;
/// let cfg = MapperConfig::try_hybrid(1.05).expect("valid alpha");
/// assert!((cfg.alpha_ratio().unwrap() - 1.05).abs() < 1e-12);
/// assert!(MapperConfig::gate_only().is_gate_only());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Weight `α_g` of the gate-based success-probability estimate.
    pub alpha_gate: f64,
    /// Weight `α_s` of the shuttling-based success-probability estimate.
    pub alpha_shuttle: f64,
    /// Lookahead weight `w_l` in both cost functions (Eq. 2 and Eq. 4).
    pub lookahead_weight: f64,
    /// Time/parallelism weight `w_t` in the shuttle cost (Eq. 4).
    pub time_weight: f64,
    /// Decay rate `λ_t` of the SWAP recency factor (Eq. 2). `0` disables
    /// the parallelism preference, minimizing plain cost.
    pub decay_rate: f64,
    /// Recency window `t`: how many recent SWAPs/moves the parallelism
    /// terms look back on.
    pub recency_window: usize,
    /// Lookahead depth in dependency steps.
    pub lookahead_depth: usize,
    /// Maximum number of gates in the lookahead layer.
    pub lookahead_max_gates: usize,
    /// Safety bound on routing operations per gate (SWAPs + moves); the
    /// mapper aborts with [`crate::MapError::RoutingStuck`] beyond
    /// `max_ops_per_gate × gate count + 1000` total operations.
    pub max_ops_per_gate: usize,
    /// Initial atom placement (the paper uses the identity layout).
    pub initial_layout: InitialLayout,
    /// How many candidates one routing round may commit.
    pub round_mode: RoundMode,
    /// Worker threads for speculative candidate evaluation (`1` =
    /// in-place evaluation on the caller thread). Only consulted in
    /// [`RoundMode::Speculative`]; results are identical for any thread
    /// count by construction.
    pub eval_threads: usize,
}

impl MapperConfig {
    fn base() -> Self {
        MapperConfig {
            alpha_gate: 1.0,
            alpha_shuttle: 1.0,
            lookahead_weight: 0.1,
            time_weight: 0.1,
            decay_rate: 0.0,
            recency_window: 4,
            lookahead_depth: 2,
            lookahead_max_gates: 20,
            max_ops_per_gate: 64,
            initial_layout: InitialLayout::Identity,
            round_mode: RoundMode::Speculative,
            eval_threads: 1,
        }
    }

    /// Hybrid mode with decision ratio `α = α_g/α_s` (paper mode (C)),
    /// rejecting a non-finite or non-positive ratio with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidAlphaRatio`] if `alpha_ratio` is
    /// not finite and positive.
    pub fn try_hybrid(alpha_ratio: f64) -> Result<Self, ConfigError> {
        if !(alpha_ratio.is_finite() && alpha_ratio > 0.0) {
            return Err(ConfigError::InvalidAlphaRatio { value: alpha_ratio });
        }
        Ok(MapperConfig {
            alpha_gate: alpha_ratio,
            alpha_shuttle: 1.0,
            ..MapperConfig::base()
        })
    }

    /// Validates the configuration: weights must be finite and
    /// non-negative, and at least one capability weight positive.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, value) in [
            ("alpha_gate", self.alpha_gate),
            ("alpha_shuttle", self.alpha_shuttle),
            ("lookahead_weight", self.lookahead_weight),
            ("time_weight", self.time_weight),
            ("decay_rate", self.decay_rate),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(ConfigError::InvalidWeight { name, value });
            }
        }
        if self.alpha_gate == 0.0 && self.alpha_shuttle == 0.0 {
            return Err(ConfigError::NoCapability);
        }
        if self.eval_threads == 0 {
            return Err(ConfigError::ZeroEvalThreads);
        }
        Ok(())
    }

    /// Gate-based-only mode, `α_s = 0` (paper mode (B)).
    pub fn gate_only() -> Self {
        MapperConfig {
            alpha_gate: 1.0,
            alpha_shuttle: 0.0,
            ..MapperConfig::base()
        }
    }

    /// Shuttling-only mode, `α_g = 0` (paper mode (A)).
    pub fn shuttle_only() -> Self {
        MapperConfig {
            alpha_gate: 0.0,
            alpha_shuttle: 1.0,
            ..MapperConfig::base()
        }
    }

    /// The decision ratio `α = α_g/α_s`, or `None` in a single-capability
    /// mode.
    pub fn alpha_ratio(&self) -> Option<f64> {
        if self.alpha_gate > 0.0 && self.alpha_shuttle > 0.0 {
            Some(self.alpha_gate / self.alpha_shuttle)
        } else {
            None
        }
    }

    /// Returns `true` when shuttling is disabled (`α_s = 0`).
    pub fn is_gate_only(&self) -> bool {
        self.alpha_shuttle == 0.0
    }

    /// Returns `true` when SWAP insertion is disabled (`α_g = 0`).
    pub fn is_shuttle_only(&self) -> bool {
        self.alpha_gate == 0.0
    }

    /// Sets the lookahead weight `w_l`.
    pub fn with_lookahead_weight(mut self, w: f64) -> Self {
        self.lookahead_weight = w;
        self
    }

    /// Sets the time weight `w_t`.
    pub fn with_time_weight(mut self, w: f64) -> Self {
        self.time_weight = w;
        self
    }

    /// Sets the decay rate `λ_t`.
    pub fn with_decay_rate(mut self, lambda: f64) -> Self {
        self.decay_rate = lambda;
        self
    }

    /// Sets the recency window `t`.
    pub fn with_recency_window(mut self, t: usize) -> Self {
        self.recency_window = t;
        self
    }

    /// Sets the lookahead depth and gate cap.
    pub fn with_lookahead(mut self, depth: usize, max_gates: usize) -> Self {
        self.lookahead_depth = depth;
        self.lookahead_max_gates = max_gates;
        self
    }

    /// Sets the initial atom placement.
    pub fn with_initial_layout(mut self, layout: InitialLayout) -> Self {
        self.initial_layout = layout;
        self
    }

    /// Sets the routing round mode.
    pub fn with_round_mode(mut self, mode: RoundMode) -> Self {
        self.round_mode = mode;
        self
    }

    /// Sets the speculative evaluation thread count (`1` = caller thread).
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = threads;
        self
    }
}

impl Default for MapperConfig {
    /// Hybrid mode with `α = 1`.
    fn default() -> Self {
        MapperConfig::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = MapperConfig::default();
        assert_eq!(cfg.decay_rate, 0.0);
        assert_eq!(cfg.lookahead_weight, 0.1);
        assert_eq!(cfg.time_weight, 0.1);
        assert_eq!(cfg.recency_window, 4);
    }

    #[test]
    fn mode_predicates() {
        assert!(MapperConfig::gate_only().is_gate_only());
        assert!(!MapperConfig::gate_only().is_shuttle_only());
        assert!(MapperConfig::shuttle_only().is_shuttle_only());
        assert!(MapperConfig::try_hybrid(2.0)
            .expect("valid alpha")
            .alpha_ratio()
            .is_some());
        assert!(MapperConfig::gate_only().alpha_ratio().is_none());
    }

    #[test]
    fn try_hybrid_rejects_bad_ratios() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                MapperConfig::try_hybrid(bad),
                Err(ConfigError::InvalidAlphaRatio { .. })
            ));
        }
        assert!(MapperConfig::try_hybrid(1.5).is_ok());
    }

    #[test]
    fn round_mode_knobs() {
        let cfg = MapperConfig::default();
        assert_eq!(cfg.round_mode, RoundMode::Speculative);
        assert_eq!(cfg.eval_threads, 1);
        let cfg = cfg.with_round_mode(RoundMode::Single).with_eval_threads(4);
        assert_eq!(cfg.round_mode, RoundMode::Single);
        assert_eq!(cfg.eval_threads, 4);
        assert!(cfg.validate().is_ok());
        assert!(matches!(
            MapperConfig::default().with_eval_threads(0).validate(),
            Err(ConfigError::ZeroEvalThreads)
        ));
    }

    #[test]
    fn validate_catches_hand_built_configs() {
        let mut cfg = MapperConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.alpha_gate = f64::NAN;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidWeight {
                name: "alpha_gate",
                ..
            })
        ));
        cfg.alpha_gate = 0.0;
        cfg.alpha_shuttle = 0.0;
        assert!(matches!(cfg.validate(), Err(ConfigError::NoCapability)));
    }

    #[test]
    fn builder_setters_chain() {
        let cfg = MapperConfig::try_hybrid(1.0)
            .expect("valid alpha")
            .with_lookahead_weight(0.3)
            .with_time_weight(0.2)
            .with_decay_rate(0.5)
            .with_recency_window(8)
            .with_lookahead(3, 40);
        assert_eq!(cfg.lookahead_weight, 0.3);
        assert_eq!(cfg.time_weight, 0.2);
        assert_eq!(cfg.decay_rate, 0.5);
        assert_eq!(cfg.recency_window, 8);
        assert_eq!((cfg.lookahead_depth, cfg.lookahead_max_gates), (3, 40));
    }
}
