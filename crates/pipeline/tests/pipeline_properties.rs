//! Property-based pipeline invariants over random circuits from every
//! generator:
//!
//! * no two time-overlapping Rydberg-type items sit within `r_restr`
//!   (the paper's restriction constraint, §2.1),
//! * every AOD batch lowers to a program that `validate_program`
//!   accepts against the replayed occupancy,
//! * the fused single-pass output is item-for-item identical to the
//!   legacy two-pass path.

use na_arch::{geometry, HardwareParams, Lattice, Site};
use na_circuit::generators::{
    cuccaro_adder, ghz, GraphState, Qaoa, Qft, Qpe, RandomCircuit, Reversible,
};
use na_circuit::Circuit;
use na_mapper::MapperConfig;
use na_schedule::{validate_program, ScheduleMetrics, ScheduledItem, Scheduler};
use proptest::prelude::*;

/// A random small circuit from one of the eight generators.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (0u8..8, 0u64..500).prop_map(|(kind, seed)| match kind {
        0 => GraphState::new(14 + (seed % 5) as u32)
            .edges(18 + (seed % 9) as usize)
            .seed(seed)
            .build(),
        1 => Qft::new(10 + (seed % 5) as u32).build(),
        2 => Qpe::new(8 + (seed % 4) as u32).build(),
        3 => Qaoa::new(12 + (seed % 5) as u32)
            .edges(14 + (seed % 7) as usize)
            .layers(1 + (seed % 2) as usize)
            .seed(seed)
            .build(),
        4 => RandomCircuit::new(14)
            .layers(3 + (seed % 4) as usize)
            .multi_qubit_fraction(0.2)
            .seed(seed)
            .build(),
        5 => Reversible::new(12 + (seed % 4) as u32)
            .counts(&[(2, 14), (3, 6)])
            .seed(seed)
            .build(),
        6 => ghz(12 + (seed % 8) as u32),
        _ => cuccaro_adder(4 + (seed % 2) as u32),
    })
}

fn arb_config() -> impl Strategy<Value = MapperConfig> {
    prop_oneof![
        Just(MapperConfig::gate_only()),
        Just(MapperConfig::shuttle_only()),
        (0.25f64..4.0).prop_map(|a| MapperConfig::try_hybrid(a).expect("valid alpha")),
    ]
}

fn params() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(25)
        .build()
        .expect("valid")
}

/// The sites a Rydberg-type item illuminates, or `None` for others.
fn rydberg_sites(item: &ScheduledItem) -> Option<Vec<Site>> {
    match item {
        ScheduledItem::Rydberg { sites, .. } => Some(sites.clone()),
        ScheduledItem::SwapComposite { sites, .. } => Some(sites.to_vec()),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn restriction_and_aod_invariants(circuit in arb_circuit(), config in arb_config()) {
        let p = params();
        let layout = config.initial_layout;
        let pipeline = na_pipeline::Compiler::for_target(&p)
            .mapping(na_pipeline::MappingOptions::custom(config))
            .build()
            .expect("valid");
        let program = pipeline.compile(&circuit).expect("compiles");

        // (1) Restriction: concurrent Rydberg items keep r_restr.
        let rydberg: Vec<(f64, f64, Vec<Site>)> = program
            .schedule
            .items
            .iter()
            .filter_map(|i| rydberg_sites(i).map(|s| (i.start_us(), i.end_us(), s)))
            .collect();
        for (i, a) in rydberg.iter().enumerate() {
            for b in rydberg.iter().skip(i + 1) {
                let overlaps = a.0 < b.1 - 1e-12 && b.0 < a.1 - 1e-12;
                if overlaps {
                    prop_assert!(
                        geometry::sets_clear_of(&a.2, &b.2, p.r_restr),
                        "items at t={}/{} overlap within r_restr", a.0, b.0
                    );
                }
            }
        }

        // (2) Every AOD batch re-validates against replayed occupancy,
        // and the pipeline lowered exactly one program per batch.
        let lattice = Lattice::new(p.lattice_side);
        let mut site_of_atom: Vec<Site> = layout.place(&lattice, p.num_atoms);
        let mut batch_idx = 0usize;
        for item in &program.schedule.items {
            if let ScheduledItem::AodBatch { moves, .. } = item {
                let occupied: Vec<Site> = site_of_atom.clone();
                let lowered = &program.aod_programs[batch_idx];
                prop_assert_eq!(&lowered.moves, moves, "program/batch order mismatch");
                prop_assert!(
                    validate_program(lowered, &lattice, &occupied).is_ok(),
                    "batch {} failed validation", batch_idx
                );
                for m in moves {
                    prop_assert_eq!(site_of_atom[m.atom.index()], m.from, "stale source");
                    prop_assert!(!site_of_atom.contains(&m.to), "target occupied");
                    site_of_atom[m.atom.index()] = m.to;
                }
                batch_idx += 1;
            }
        }
        prop_assert_eq!(batch_idx, program.aod_programs.len());

        // (3) Fused single pass ≡ legacy two-pass, item for item.
        let two_pass = Scheduler::new(p.clone()).schedule_mapped(&program.mapped);
        prop_assert_eq!(&program.schedule, &two_pass);
        prop_assert_eq!(program.metrics, ScheduleMetrics::of(&two_pass, &p));
    }
}
