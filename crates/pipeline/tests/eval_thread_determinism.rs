//! Speculative evaluation-thread determinism: the compiled artifact is
//! a pure function of the circuit and options — never of how many
//! worker threads minted conflict sets. One journal-owning arena per
//! thread plus an index-order merge makes the multi-threaded evaluation
//! path bit-compatible with the caller-thread path by construction;
//! this test pins that claim at the highest level we ship: the full
//! `CompiledProgram` JSON rendering.

use na_arch::HardwareParams;
use na_circuit::generators::{GraphState, Qaoa, Qft};
use na_circuit::Circuit;
use na_mapper::RoundMode;
use na_pipeline::{Compiler, MappingOptions};

fn target() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(30)
        .build()
        .expect("valid")
}

fn circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("qft-16", Qft::new(16).build()),
        ("graph-20", GraphState::new(20).edges(26).seed(9).build()),
        ("qaoa-16", Qaoa::new(16).edges(20).layers(2).seed(5).build()),
    ]
}

fn compile_json(circuit: &Circuit, threads: usize) -> String {
    let target = target();
    let compiler = Compiler::for_target(&target)
        .mapping(
            MappingOptions::hybrid(1.0)
                .with_round_mode(RoundMode::Speculative)
                .with_eval_threads(threads),
        )
        .build()
        .expect("valid session");
    compiler.compile(circuit).expect("compiles").to_json()
}

#[test]
fn eval_threads_do_not_change_compiled_json() {
    // Same convention as the pipeline benches: multi-thread variants
    // only run where real cores exist — on a 1-core host the scoped
    // workers would only measure oversubscription, so skip (the bench
    // baseline records `null` for the same reason).
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host == 1 {
        eprintln!("skipping eval-thread determinism check: 1-core host");
        return;
    }
    for (name, circuit) in circuits() {
        let reference = compile_json(&circuit, 1);
        for threads in [2, 4] {
            let json = compile_json(&circuit, threads);
            assert_eq!(
                json, reference,
                "{name}: {threads} evaluation threads changed the compiled artifact"
            );
        }
    }
}
