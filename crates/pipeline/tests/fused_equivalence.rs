//! Acceptance matrix: the fused single-pass pipeline must be
//! item-for-item identical to the legacy two-pass path (materialize the
//! mapped stream, then re-walk it through `Scheduler::schedule_mapped`
//! and `ScheduleMetrics::of`) for **every generator × every mode**.

use na_arch::HardwareParams;
use na_circuit::generators::{
    cuccaro_adder, ghz, GraphState, Qaoa, Qft, Qpe, RandomCircuit, Reversible,
};
use na_circuit::Circuit;
use na_mapper::MapperConfig;
use na_schedule::{ScheduleMetrics, Scheduler};

fn params() -> HardwareParams {
    HardwareParams::mixed()
        .to_builder()
        .lattice(6, 3.0)
        .num_atoms(25)
        .build()
        .expect("valid")
}

/// One small instance per generator (widths fit 25 atoms).
fn generator_suite() -> Vec<(&'static str, Circuit)> {
    vec![
        ("graph", GraphState::new(16).edges(24).seed(5).build()),
        ("qft", Qft::new(12).build()),
        ("qpe", Qpe::new(10).build()),
        ("qaoa", Qaoa::new(14).edges(20).layers(2).seed(3).build()),
        (
            "random",
            RandomCircuit::new(16)
                .layers(5)
                .multi_qubit_fraction(0.2)
                .seed(9)
                .build(),
        ),
        (
            "reversible",
            Reversible::new(14)
                .counts(&[(2, 20), (3, 8)])
                .seed(7)
                .build(),
        ),
        ("ghz", ghz(16)),
        ("adder", cuccaro_adder(5)),
    ]
}

fn modes() -> Vec<(&'static str, MapperConfig)> {
    vec![
        ("gate", MapperConfig::gate_only()),
        ("shuttle", MapperConfig::shuttle_only()),
        (
            "hybrid",
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        ),
    ]
}

#[test]
fn fused_equals_two_pass_for_all_generators_and_modes() {
    let p = params();
    let scheduler = Scheduler::new(p.clone());
    for (mode_name, config) in modes() {
        let pipeline = na_pipeline::Compiler::for_target(&p)
            .mapping(na_pipeline::MappingOptions::custom(config))
            .build()
            .expect("valid");
        for (gen_name, circuit) in generator_suite() {
            let program = pipeline
                .compile(&circuit)
                .unwrap_or_else(|e| panic!("{gen_name}/{mode_name}: {e}"));

            // The fused pass streamed ops into the scheduler while the
            // artifact retained them; the legacy two-pass path re-walks
            // that identical stream from scratch.
            let two_pass = scheduler.schedule_mapped(&program.mapped);
            assert_eq!(
                program.schedule, two_pass,
                "{gen_name}/{mode_name}: fused schedule diverged from two-pass"
            );
            let post_hoc = ScheduleMetrics::of(&program.schedule, &p);
            assert_eq!(
                program.metrics, post_hoc,
                "{gen_name}/{mode_name}: op-by-op metrics diverged"
            );

            // And the stream itself replays against the physics model.
            na_mapper::verify_mapping(&circuit, &program.mapped, &p)
                .unwrap_or_else(|e| panic!("{gen_name}/{mode_name}: {e}"));
        }
    }
}

#[test]
fn fused_matches_two_pass_per_mode_presets() {
    // Modes on their natural hardware presets (Table 1c), not just the
    // mixed preset: gate-only on gate-based hardware, shuttle-only on
    // shuttling hardware.
    for (preset, config) in [
        (HardwareParams::gate_based(), MapperConfig::gate_only()),
        (HardwareParams::shuttling(), MapperConfig::shuttle_only()),
        (
            HardwareParams::mixed(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        ),
    ] {
        let p = preset
            .to_builder()
            .lattice(6, 3.0)
            .num_atoms(22)
            .build()
            .expect("valid");
        let pipeline = na_pipeline::Compiler::for_target(&p)
            .mapping(na_pipeline::MappingOptions::custom(config))
            .build()
            .expect("valid");
        let circuit = GraphState::new(18).edges(26).seed(11).build();
        let program = pipeline.compile(&circuit).expect("compiles");
        assert_eq!(
            program.schedule,
            Scheduler::new(p.clone()).schedule_mapped(&program.mapped),
            "{}: fused diverged",
            p.name
        );
        assert_eq!(program.metrics, ScheduleMetrics::of(&program.schedule, &p));
    }
}
