//! The compile artifact: one [`CompiledProgram`] per circuit.

use std::time::Duration;

use na_mapper::{CacheStats, MapStats, MappedCircuit};
use na_schedule::export::{
    aod_program_to_json, cache_stats_to_json, comparison_to_json, json_f64, map_stats_to_json,
    metrics_to_json, schedule_to_json,
};
use na_schedule::{AodProgram, ComparisonReport, Schedule, ScheduleMetrics};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one pipeline compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Routing statistics of the mapping pass.
    pub map: MapStats,
    /// Wall-clock time of the fused map+schedule pass (the paper's RT
    /// column; scheduling rides along for free).
    pub map_runtime: Duration,
    /// Wall-clock time of the whole compile including AOD lowering,
    /// validation and (optionally) the baseline comparison.
    pub total_runtime: Duration,
    /// Mapping share of the fused pass: `map_runtime` minus the
    /// scheduler drains that ran inside it.
    pub map_phase: Duration,
    /// Scheduling share: incremental drains during the fused pass plus
    /// sealing the schedule and folding the Eq. (1) metrics.
    pub schedule_phase: Duration,
    /// AOD lowering + per-batch validation against replayed occupancy.
    pub lower_phase: Duration,
    /// AOD transactions lowered and validated.
    pub aod_batches: usize,
    /// Individual shuttle moves across all transactions.
    pub aod_moves: usize,
    /// Distance-cache and region/corridor counters of the routing
    /// layer. Counters are cumulative over the compile scratch's
    /// lifetime: with [`Compiler::compile`](crate::Compiler::compile)
    /// that is exactly this circuit, while a warm
    /// [`Compiler::compile_with`](crate::Compiler::compile_with) loop
    /// accumulates across the circuits sharing the scratch.
    pub route_cache: CacheStats,
}

/// Everything one compile produces: the paper's full flow (map,
/// ASAP-schedule under restriction constraints, AOD lowering, Eq. (1)
/// metrics) as a single artifact.
///
/// Produced by [`Pipeline::compile`](crate::Pipeline::compile); the
/// fused pass guarantees `schedule` is exactly what
/// [`na_schedule::Scheduler::schedule_mapped`] would produce for
/// `mapped`, and every program in `aod_programs` has passed
/// [`na_schedule::validate_program`] against the replayed occupancy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The mapped operation stream (gates bound to atoms, SWAPs,
    /// shuttles).
    pub mapped: MappedCircuit,
    /// The restriction-aware ASAP schedule of `mapped`.
    pub schedule: Schedule,
    /// One lowered (and validated) AOD instruction program per
    /// [`AodBatch`](na_schedule::ScheduledItem::AodBatch) in the
    /// schedule, in schedule order.
    pub aod_programs: Vec<AodProgram>,
    /// Eq. (1) metrics of the mapped schedule.
    pub metrics: ScheduleMetrics,
    /// Table 1a comparison against the ideal all-to-all baseline, when
    /// the pipeline is configured to compute it.
    pub comparison: Option<ComparisonReport>,
    /// Compile statistics.
    pub stats: CompileStats,
}

impl CompiledProgram {
    /// Fidelity decrease versus the ideal baseline (`δF`), if the
    /// baseline comparison was computed.
    pub fn delta_f(&self) -> Option<f64> {
        self.comparison.map(|c| c.delta_f)
    }

    /// Serializes the whole artifact as one JSON document.
    ///
    /// Composes the hand-written writers of [`na_schedule::export`]
    /// (the vendored serde is a marker-only stub; see
    /// `vendor/README.md`). The document's `stats` object carries the
    /// per-phase timings (`map_us`, `schedule_us`, `lower_us`). The
    /// fourth phase — export — is deliberately *not* measured here:
    /// serialization must be a pure function of the artifact (the serve
    /// layer content-addresses and splices response bytes), so the
    /// export clock runs on the service reply path instead and surfaces
    /// through `GET /v1/metrics`.
    pub fn to_json(&self) -> String {
        let aod = self
            .aod_programs
            .iter()
            .map(aod_program_to_json)
            .collect::<Vec<_>>()
            .join(",");
        let comparison = match &self.comparison {
            Some(c) => comparison_to_json(c),
            None => "null".to_string(),
        };
        let metrics = metrics_to_json(&self.metrics);
        let schedule = schedule_to_json(&self.schedule);
        let map_stats = map_stats_to_json(&self.stats.map);
        let cache = cache_stats_to_json(&self.stats.route_cache);
        let phase_us = |d: Duration| json_f64(d.as_secs_f64() * 1e6);
        format!(
            "{{\n  \"stats\": {{\"map\":{},\"map_runtime_ms\":{},\"total_runtime_ms\":{},\
             \"map_us\":{},\"schedule_us\":{},\"lower_us\":{},\
             \"aod_batches\":{},\"aod_moves\":{},\"route_cache\":{}}},\n  \"metrics\": {},\n  \
             \"comparison\": {},\n  \"mapped\": {{\"num_qubits\":{},\"num_atoms\":{},\
             \"gates\":{},\"swaps\":{},\"shuttles\":{}}},\n  \"schedule\": {},\n  \
             \"aod_programs\": [{aod}]\n}}\n",
            map_stats,
            json_f64(self.stats.map_runtime.as_secs_f64() * 1e3),
            json_f64(self.stats.total_runtime.as_secs_f64() * 1e3),
            phase_us(self.stats.map_phase),
            phase_us(self.stats.schedule_phase),
            phase_us(self.stats.lower_phase),
            self.stats.aod_batches,
            self.stats.aod_moves,
            cache,
            metrics,
            comparison,
            self.mapped.num_qubits,
            self.mapped.num_atoms,
            self.mapped.gate_count(),
            self.mapped.swap_count(),
            self.mapped.shuttle_count(),
            schedule,
        )
    }
}
