//! The compile artifact: one [`CompiledProgram`] per circuit.

use std::time::Duration;

use na_mapper::{CacheStats, MapStats, MappedCircuit};
use na_schedule::export::{
    aod_program_to_json, cache_stats_to_json, comparison_to_json, json_f64, map_stats_to_json,
    metrics_to_json, schedule_to_json,
};
use na_schedule::{AodProgram, ComparisonReport, Schedule, ScheduleMetrics};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one pipeline compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Routing statistics of the mapping pass.
    pub map: MapStats,
    /// Wall-clock time of the fused map+schedule pass (the paper's RT
    /// column; scheduling rides along for free).
    pub map_runtime: Duration,
    /// Wall-clock time of the whole compile including AOD lowering,
    /// validation and (optionally) the baseline comparison.
    pub total_runtime: Duration,
    /// AOD transactions lowered and validated.
    pub aod_batches: usize,
    /// Individual shuttle moves across all transactions.
    pub aod_moves: usize,
    /// Distance-cache and region/corridor counters of the routing
    /// layer. Counters are cumulative over the compile scratch's
    /// lifetime: with [`Compiler::compile`](crate::Compiler::compile)
    /// that is exactly this circuit, while a warm
    /// [`Compiler::compile_with`](crate::Compiler::compile_with) loop
    /// accumulates across the circuits sharing the scratch.
    pub route_cache: CacheStats,
}

/// Everything one compile produces: the paper's full flow (map,
/// ASAP-schedule under restriction constraints, AOD lowering, Eq. (1)
/// metrics) as a single artifact.
///
/// Produced by [`Pipeline::compile`](crate::Pipeline::compile); the
/// fused pass guarantees `schedule` is exactly what
/// [`na_schedule::Scheduler::schedule_mapped`] would produce for
/// `mapped`, and every program in `aod_programs` has passed
/// [`na_schedule::validate_program`] against the replayed occupancy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The mapped operation stream (gates bound to atoms, SWAPs,
    /// shuttles).
    pub mapped: MappedCircuit,
    /// The restriction-aware ASAP schedule of `mapped`.
    pub schedule: Schedule,
    /// One lowered (and validated) AOD instruction program per
    /// [`AodBatch`](na_schedule::ScheduledItem::AodBatch) in the
    /// schedule, in schedule order.
    pub aod_programs: Vec<AodProgram>,
    /// Eq. (1) metrics of the mapped schedule.
    pub metrics: ScheduleMetrics,
    /// Table 1a comparison against the ideal all-to-all baseline, when
    /// the pipeline is configured to compute it.
    pub comparison: Option<ComparisonReport>,
    /// Compile statistics.
    pub stats: CompileStats,
}

impl CompiledProgram {
    /// Fidelity decrease versus the ideal baseline (`δF`), if the
    /// baseline comparison was computed.
    pub fn delta_f(&self) -> Option<f64> {
        self.comparison.map(|c| c.delta_f)
    }

    /// Serializes the whole artifact as one JSON document.
    ///
    /// Composes the hand-written writers of [`na_schedule::export`]
    /// (the vendored serde is a marker-only stub; see
    /// `vendor/README.md`).
    pub fn to_json(&self) -> String {
        let aod = self
            .aod_programs
            .iter()
            .map(aod_program_to_json)
            .collect::<Vec<_>>()
            .join(",");
        let comparison = match &self.comparison {
            Some(c) => comparison_to_json(c),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"stats\": {{\"map\":{},\"map_runtime_ms\":{},\"total_runtime_ms\":{},\
             \"aod_batches\":{},\"aod_moves\":{},\"route_cache\":{}}},\n  \"metrics\": {},\n  \
             \"comparison\": {},\n  \"mapped\": {{\"num_qubits\":{},\"num_atoms\":{},\
             \"gates\":{},\"swaps\":{},\"shuttles\":{}}},\n  \"schedule\": {},\n  \
             \"aod_programs\": [{aod}]\n}}\n",
            map_stats_to_json(&self.stats.map),
            json_f64(self.stats.map_runtime.as_secs_f64() * 1e3),
            json_f64(self.stats.total_runtime.as_secs_f64() * 1e3),
            self.stats.aod_batches,
            self.stats.aod_moves,
            cache_stats_to_json(&self.stats.route_cache),
            metrics_to_json(&self.metrics),
            comparison,
            self.mapped.num_qubits,
            self.mapped.num_atoms,
            self.mapped.gate_count(),
            self.mapped.swap_count(),
            self.mapped.shuttle_count(),
            schedule_to_json(&self.schedule),
        )
    }
}
