//! Typed pipeline errors.

use na_mapper::MapError;
use na_schedule::aod_program::AodProgramError;
use std::fmt;

/// Errors raised while compiling a circuit through the [`Pipeline`].
///
/// [`Pipeline`]: crate::Pipeline
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Mapping failed (hardware validation, infeasible gate, routing
    /// stuck — see [`MapError`]).
    Map(MapError),
    /// An AOD batch lowered to an instruction stream that violates the
    /// shuttling protocol. This is the second-pass drift guard: every
    /// lowered batch is re-validated against the replayed lattice
    /// occupancy instead of silently trusting the scheduler.
    InvalidAodBatch {
        /// Index of the offending batch among the schedule's AOD
        /// transactions (0-based, schedule order).
        batch_index: usize,
        /// The batch's scheduled start time in µs.
        start_us: f64,
        /// The violated constraint.
        source: AodProgramError,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Map(e) => write!(f, "mapping failed: {e}"),
            PipelineError::InvalidAodBatch {
                batch_index,
                start_us,
                source,
            } => write!(
                f,
                "AOD batch {batch_index} (t = {start_us:.3} µs) failed validation: {source}"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Map(e) => Some(e),
            PipelineError::InvalidAodBatch { source, .. } => Some(source),
        }
    }
}

impl From<MapError> for PipelineError {
    fn from(e: MapError) -> Self {
        PipelineError::Map(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_batch() {
        let e = PipelineError::InvalidAodBatch {
            batch_index: 3,
            start_us: 12.5,
            source: AodProgramError::LineCrossing,
        };
        let text = e.to_string();
        assert!(text.contains("batch 3"));
        assert!(text.contains("cross"));
    }

    #[test]
    fn map_errors_convert() {
        let e: PipelineError = MapError::CircuitTooWide {
            circuit_qubits: 10,
            atoms: 4,
        }
        .into();
        assert!(matches!(e, PipelineError::Map(_)));
    }
}
