//! Typed pipeline errors: the legacy [`PipelineError`] of the
//! `Pipeline` shim and the unified [`CompileError`] of the
//! [`Compiler`](crate::Compiler) session API.

use na_arch::ArchError;
use na_mapper::{ConfigError, MapError};
use na_schedule::aod_program::AodProgramError;
use na_schedule::ScheduleError;
use std::fmt;

use crate::job::RequestError;

/// Errors raised while compiling a circuit through the legacy
/// [`Pipeline`] shim. New code should use
/// [`Compiler`](crate::Compiler), whose [`CompileError`] unifies these
/// with configuration, target and job-layer errors.
///
/// [`Pipeline`]: crate::Pipeline
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Mapping failed (hardware validation, infeasible gate, routing
    /// stuck — see [`MapError`]).
    Map(MapError),
    /// The mapper configuration is invalid (see [`ConfigError`]).
    Config(ConfigError),
    /// An AOD batch lowered to an instruction stream that violates the
    /// shuttling protocol. This is the second-pass drift guard: every
    /// lowered batch is re-validated against the replayed lattice
    /// occupancy instead of silently trusting the scheduler.
    InvalidAodBatch {
        /// Index of the offending batch among the schedule's AOD
        /// transactions (0-based, schedule order).
        batch_index: usize,
        /// The batch's scheduled start time in µs.
        start_us: f64,
        /// The violated constraint.
        source: AodProgramError,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Map(e) => write!(f, "mapping failed: {e}"),
            PipelineError::Config(e) => write!(f, "invalid configuration: {e}"),
            PipelineError::InvalidAodBatch {
                batch_index,
                start_us,
                source,
            } => write!(
                f,
                "AOD batch {batch_index} (t = {start_us:.3} µs) failed validation: {source}"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Map(e) => Some(e),
            PipelineError::Config(e) => Some(e),
            PipelineError::InvalidAodBatch { source, .. } => Some(source),
        }
    }
}

impl From<MapError> for PipelineError {
    fn from(e: MapError) -> Self {
        PipelineError::Map(e)
    }
}

/// The single error type of the redesigned compile API: everything
/// [`Compiler::for_target`] → `build()` → `compile`/`compile_batch` (and
/// the versioned JSON job layer on top) can fail with.
///
/// Every variant wraps its layer's typed error and exposes it through
/// [`std::error::Error::source`], so the full chain (e.g.
/// `CompileError` → [`ScheduleError`] → `AodProgramError`) prints root
/// causes.
///
/// [`Compiler::for_target`]: crate::Compiler::for_target
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The target description failed validation ([`ArchError`]).
    Target(ArchError),
    /// The mapping/scheduling options are invalid ([`ConfigError`]).
    Config(ConfigError),
    /// Mapping failed ([`MapError`]).
    Map(MapError),
    /// Scheduling or AOD lowering failed ([`ScheduleError`]).
    Schedule(ScheduleError),
    /// The JSON job document is malformed ([`RequestError`]).
    Request(RequestError),
    /// The request's `deadline_ms` budget ran out at a cancellation
    /// checkpoint (the wire layer maps this to `"kind":"deadline"`,
    /// HTTP 504-style).
    DeadlineExceeded,
    /// The compile was cancelled explicitly through its
    /// [`na_mapper::CancelToken`].
    Cancelled,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Target(e) => write!(f, "invalid target: {e}"),
            CompileError::Config(e) => write!(f, "invalid configuration: {e}"),
            CompileError::Map(e) => write!(f, "mapping failed: {e}"),
            CompileError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            CompileError::Request(e) => write!(f, "invalid compile request: {e}"),
            CompileError::DeadlineExceeded => {
                write!(f, "compile deadline exceeded before completion")
            }
            CompileError::Cancelled => write!(f, "compile cancelled"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Target(e) => Some(e),
            CompileError::Config(e) => Some(e),
            CompileError::Map(e) => Some(e),
            CompileError::Schedule(e) => Some(e),
            CompileError::Request(e) => Some(e),
            CompileError::DeadlineExceeded | CompileError::Cancelled => None,
        }
    }
}

impl From<ArchError> for CompileError {
    fn from(e: ArchError) -> Self {
        CompileError::Target(e)
    }
}

impl From<ConfigError> for CompileError {
    fn from(e: ConfigError) -> Self {
        CompileError::Config(e)
    }
}

impl From<MapError> for CompileError {
    fn from(e: MapError) -> Self {
        CompileError::Map(e)
    }
}

impl From<ScheduleError> for CompileError {
    fn from(e: ScheduleError) -> Self {
        CompileError::Schedule(e)
    }
}

impl From<RequestError> for CompileError {
    fn from(e: RequestError) -> Self {
        CompileError::Request(e)
    }
}

impl From<PipelineError> for CompileError {
    /// Maps a legacy error into the unified type (no wrapper variant:
    /// the legacy cases are a strict subset).
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Map(e) => CompileError::Map(e),
            PipelineError::Config(e) => CompileError::Config(e),
            PipelineError::InvalidAodBatch {
                batch_index,
                start_us,
                source,
            } => CompileError::Schedule(ScheduleError::InvalidAodBatch {
                batch_index,
                start_us,
                source,
            }),
        }
    }
}

/// Converts a unified compile-time error back to the legacy type for
/// the deprecated [`Pipeline`](crate::Pipeline) shim. Target errors map
/// to `Map(MapError::Arch(..))` — exactly what `Pipeline::new` returned
/// before the redesign.
pub(crate) fn to_legacy(e: CompileError) -> PipelineError {
    match e {
        CompileError::Map(e) => PipelineError::Map(e),
        CompileError::Target(e) => PipelineError::Map(MapError::Arch(e)),
        CompileError::Config(e) => PipelineError::Config(e),
        CompileError::Schedule(e) => match e {
            ScheduleError::InvalidAodBatch {
                batch_index,
                start_us,
                source,
            } => PipelineError::InvalidAodBatch {
                batch_index,
                start_us,
                source,
            },
            // `ScheduleError` is non-exhaustive upstream; future cases
            // have no legacy spelling, so degrade to a described error.
            other => PipelineError::Map(MapError::Arch(ArchError::InvalidParameter {
                name: "schedule",
                reason: other.to_string(),
            })),
        },
        // Job-layer errors cannot reach the legacy shim (it never
        // parses request documents); map defensively instead of
        // panicking.
        CompileError::Request(e) => {
            PipelineError::Map(MapError::Arch(ArchError::InvalidParameter {
                name: "request",
                reason: e.to_string(),
            }))
        }
        // The legacy shim offers no cancellation entry point, so these
        // cannot occur through it; map defensively instead of panicking.
        other @ (CompileError::DeadlineExceeded | CompileError::Cancelled) => {
            PipelineError::Map(MapError::Arch(ArchError::InvalidParameter {
                name: "cancel",
                reason: other.to_string(),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_names_the_batch() {
        let e = PipelineError::InvalidAodBatch {
            batch_index: 3,
            start_us: 12.5,
            source: AodProgramError::LineCrossing,
        };
        let text = e.to_string();
        assert!(text.contains("batch 3"));
        assert!(text.contains("cross"));
    }

    #[test]
    fn map_errors_convert() {
        let e: PipelineError = MapError::CircuitTooWide {
            circuit_qubits: 10,
            atoms: 4,
        }
        .into();
        assert!(matches!(e, PipelineError::Map(_)));
    }

    /// The unified error chains all the way to the protocol violation:
    /// `CompileError` → `ScheduleError` → `AodProgramError`.
    #[test]
    fn compile_error_source_chain_walks_to_root() {
        let e = CompileError::Schedule(ScheduleError::InvalidAodBatch {
            batch_index: 1,
            start_us: 3.0,
            source: AodProgramError::LineCrossing,
        });
        let mut chain = Vec::new();
        let mut cursor: Option<&(dyn Error + 'static)> = Some(&e);
        while let Some(err) = cursor {
            chain.push(err.to_string());
            cursor = err.source();
        }
        assert_eq!(
            chain.len(),
            3,
            "CompileError -> ScheduleError -> AodProgramError"
        );
        assert!(chain[0].contains("scheduling failed"));
        assert!(chain[1].contains("batch 1"));
        assert!(chain[2].contains("cross"));
    }

    #[test]
    fn legacy_round_trip_preserves_cases() {
        let aod = PipelineError::InvalidAodBatch {
            batch_index: 4,
            start_us: 1.0,
            source: AodProgramError::LineCrossing,
        };
        assert_eq!(to_legacy(CompileError::from(aod.clone())), aod);
        let map = PipelineError::Map(MapError::CircuitTooWide {
            circuit_qubits: 5,
            atoms: 2,
        });
        assert_eq!(to_legacy(CompileError::from(map.clone())), map);
        // Target errors surface exactly like the pre-redesign
        // `Pipeline::new` did.
        let arch = ArchError::TooManyAtoms {
            atoms: 10,
            sites: 9,
        };
        assert_eq!(
            to_legacy(CompileError::Target(arch.clone())),
            PipelineError::Map(MapError::Arch(arch))
        );
    }
}
