//! Multi-threaded batch compilation.
//!
//! [`Compiler::compile_batch`] (and the legacy
//! [`Pipeline::compile_batch`]) fan a slice of circuits across scoped
//! worker threads. All workers share the same read-only session
//! (hardware parameters, cost model, configuration) but own one
//! [`CompileScratch`] each, so the routing arena (distance-cache pools,
//! journal, dense router tables) stays warm across every circuit a
//! worker compiles; work is handed out through an atomic cursor so long
//! circuits don't serialize behind a static partition, and results
//! always come back in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use na_circuit::Circuit;

use crate::compiler::CompileScratch;
use crate::error::CompileError;
use crate::{CompiledProgram, Compiler, Pipeline, PipelineError};

/// Compiles every circuit on up to `threads` workers through `compile`,
/// returning one result per circuit in input order. Workers pull the
/// next unclaimed circuit from a shared atomic cursor (dynamic
/// scheduling) and reuse one scratch arena for their whole run;
/// `threads <= 1` compiles inline on one warm arena with no spawning
/// overhead.
fn run_batch<E: Send>(
    circuits: &[Circuit],
    threads: usize,
    compile: impl Fn(&Circuit, &mut CompileScratch) -> Result<CompiledProgram, E> + Sync,
) -> Vec<Result<CompiledProgram, E>> {
    let workers = threads.clamp(1, circuits.len().max(1));
    if workers <= 1 {
        let mut scratch = CompileScratch::new();
        return circuits.iter().map(|c| compile(c, &mut scratch)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<CompiledProgram, E>>>> =
        circuits.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = CompileScratch::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(circuit) = circuits.get(i) else {
                        break;
                    };
                    let result = compile(circuit, &mut scratch);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled before scope exit")
        })
        .collect()
}

impl Compiler {
    /// Compiles every circuit of `circuits` on up to `threads` worker
    /// threads, returning one result per circuit **in input order**.
    ///
    /// Workers pull the next unclaimed circuit from a shared atomic
    /// cursor (dynamic scheduling — a batch mixing a 200-qubit QFT with
    /// ten small graph states keeps all cores busy). A failed compile
    /// yields an `Err` in its slot without affecting the other
    /// circuits.
    ///
    /// `threads` is clamped to `[1, circuits.len()]`; `threads <= 1`
    /// compiles inline on the calling thread with no spawning overhead.
    ///
    /// # Example
    ///
    /// ```
    /// use na_arch::HardwareParams;
    /// use na_circuit::generators::GraphState;
    /// use na_pipeline::Compiler;
    ///
    /// let target = HardwareParams::mixed()
    ///     .to_builder()
    ///     .lattice(6, 3.0)
    ///     .num_atoms(20)
    ///     .build()?;
    /// let compiler = Compiler::for_target(&target).build()?;
    /// let circuits: Vec<_> = (0..6)
    ///     .map(|seed| GraphState::new(12).edges(16).seed(seed).build())
    ///     .collect();
    /// let results = compiler.compile_batch(&circuits, 2);
    /// assert_eq!(results.len(), 6);
    /// assert!(results.iter().all(|r| r.is_ok()));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
        threads: usize,
    ) -> Vec<Result<CompiledProgram, CompileError>> {
        run_batch(circuits, threads, |c, scratch| {
            self.compile_with(c, scratch)
        })
    }
}

impl Pipeline {
    /// Legacy batch front-end: [`Compiler::compile_batch`] with errors
    /// mapped to [`PipelineError`]. Same ordering and threading
    /// contract.
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
        threads: usize,
    ) -> Vec<Result<CompiledProgram, PipelineError>> {
        run_batch(circuits, threads, |c, scratch| {
            self.compiler()
                .compile_with(c, scratch)
                .map_err(crate::error::to_legacy)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::HardwareParams;
    use na_circuit::generators::{GraphState, Qft};

    fn compiler() -> Compiler {
        let target = HardwareParams::mixed()
            .to_builder()
            .lattice(6, 3.0)
            .num_atoms(24)
            .build()
            .expect("valid");
        Compiler::for_target(&target).build().expect("valid")
    }

    fn mixed_batch() -> Vec<Circuit> {
        let mut batch: Vec<Circuit> = (0..4)
            .map(|seed| GraphState::new(16).edges(22).seed(seed).build())
            .collect();
        batch.push(Qft::new(12).build());
        batch.push(Circuit::new(30)); // too wide: 30 qubits > 24 atoms
        batch
    }

    #[test]
    fn batch_results_in_input_order_any_thread_count() {
        let compiler = compiler();
        let batch = mixed_batch();
        let serial = compiler.compile_batch(&batch, 1);
        for threads in [2, 4, 8] {
            let parallel = compiler.compile_batch(&batch, threads);
            assert_eq!(parallel.len(), batch.len());
            for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                match (s, p) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.mapped, b.mapped, "slot {i} diverged at {threads} threads");
                        assert_eq!(a.schedule, b.schedule);
                        assert_eq!(a.metrics, b.metrics);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    _ => panic!("slot {i}: ok/err mismatch at {threads} threads"),
                }
            }
        }
    }

    #[test]
    fn failing_circuit_fails_only_its_slot() {
        let compiler = compiler();
        let batch = mixed_batch();
        let results = compiler.compile_batch(&batch, 3);
        assert!(results[..5].iter().all(|r| r.is_ok()));
        assert!(matches!(results[5], Err(CompileError::Map(_))));
    }

    #[test]
    fn empty_batch_is_fine() {
        let compiler = compiler();
        assert!(compiler.compile_batch(&[], 4).is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_batch_front_end_still_works() {
        let params = HardwareParams::mixed()
            .to_builder()
            .lattice(6, 3.0)
            .num_atoms(24)
            .build()
            .expect("valid");
        let pipeline = Pipeline::new(params, na_mapper::MapperConfig::default()).expect("valid");
        let batch = mixed_batch();
        let results = pipeline.compile_batch(&batch, 2);
        assert!(results[..5].iter().all(|r| r.is_ok()));
        assert!(matches!(results[5], Err(PipelineError::Map(_))));
    }
}
