//! The versioned JSON job layer: one document in
//! ([`CompileRequest`]), one document out ([`CompileResponse`]).
//!
//! A service front-end drives the whole compile API from JSON:
//!
//! ```json
//! {
//!   "version": 1,
//!   "target": {"preset": "mixed", "lattice_side": 6, "num_atoms": 16},
//!   "mapping": {"mode": "hybrid", "alpha": 1.0},
//!   "circuits": [{"name": "bell",
//!                 "qasm": "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];"}]
//! }
//! ```
//!
//! [`CompileRequest::from_json`] parses and version-checks the document
//! (the vendored serde is a marker-only stub, so the parser here is
//! hand-written, mirroring the hand-written writers of
//! [`na_schedule::export`]); [`CompileRequest::run`] builds a
//! [`Compiler`] session, compiles every circuit (in
//! parallel when `"threads"` says so) and returns a
//! [`CompileResponse`] whose `to_json` embeds one
//! [`CompiledProgram::to_json`](crate::CompiledProgram::to_json)
//! document per successful circuit.
//!
//! The schema is versioned: documents must carry `"version": 1`;
//! anything else is rejected with
//! [`RequestError::UnsupportedVersion`] so a future v2 can change shape
//! safely.

use std::fmt;

use na_arch::{AodConstraints, HardwareParams, Lattice, NativeGateSet, TargetSpec};
use na_circuit::qasm::{from_qasm, QasmError};
use na_circuit::Circuit;
use na_mapper::{CancelToken, InitialLayout, MapperConfig};
use na_schedule::export::{json_escape, json_f64};

use crate::compiler::{Compiler, MappingMode, MappingOptions, SchedulingOptions};
use crate::error::CompileError;
use crate::program::CompiledProgram;

mod json;

use json::Value;

/// The current (and only) job schema version.
pub const JOB_VERSION: u64 = 1;

/// Errors raised while parsing or interpreting a job document.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestError {
    /// The document is not valid JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// Explanation.
        message: String,
    },
    /// The document's `"version"` is not [`JOB_VERSION`].
    UnsupportedVersion {
        /// The version found (`-1` when absent or non-numeric).
        found: i64,
    },
    /// A required field is missing.
    MissingField {
        /// Dotted path of the field.
        field: &'static str,
    },
    /// A field value is malformed.
    InvalidField {
        /// Dotted path of the field.
        field: String,
        /// Explanation.
        reason: String,
    },
    /// The target preset name is unknown.
    UnknownPreset {
        /// The rejected name.
        preset: String,
    },
    /// A circuit's QASM source failed to parse.
    Qasm {
        /// Name of the offending circuit.
        circuit: String,
        /// The parse failure.
        source: QasmError,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            RequestError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported job version {found} (expected {JOB_VERSION})"
                )
            }
            RequestError::MissingField { field } => write!(f, "missing field `{field}`"),
            RequestError::InvalidField { field, reason } => {
                write!(f, "invalid field `{field}`: {reason}")
            }
            RequestError::UnknownPreset { preset } => {
                write!(
                    f,
                    "unknown hardware preset `{preset}` (expected shuttling, gate or mixed)"
                )
            }
            RequestError::Qasm { circuit, source } => {
                write!(f, "circuit `{circuit}` is not valid QASM: {source}")
            }
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Qasm { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One circuit of a job: a name and its OpenQASM 2 source.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCircuit {
    /// Caller-chosen identifier echoed in the response.
    pub name: String,
    /// OpenQASM 2 source text.
    pub qasm: String,
}

/// A parsed v1 compile request: target, options and circuits — the
/// JSON-facing mirror of a full [`Compiler`] session.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// Caller-chosen request identifier, echoed verbatim in the
    /// response (`"request_id"`, optional). Transport bookkeeping
    /// only: it never affects compilation or cache keys.
    pub request_id: Option<String>,
    /// Resolved backend target.
    pub target: TargetSpec,
    /// Mapping options.
    pub mapping: MappingOptions,
    /// Scheduling options.
    pub scheduling: SchedulingOptions,
    /// Whether to compute the ideal-baseline comparison.
    pub baseline: bool,
    /// Worker threads for the batch (1 = inline).
    pub threads: usize,
    /// Optional wall-clock budget in milliseconds (`"deadline_ms"`).
    ///
    /// Transport bookkeeping like `request_id`: a service turns it into
    /// a [`na_mapper::CancelToken`] deadline at admission
    /// time. It never affects compilation output or cache keys — a
    /// request that finishes within its budget produces bytes identical
    /// to the same request without one.
    pub deadline_ms: Option<u64>,
    /// The circuits to compile.
    pub circuits: Vec<JobCircuit>,
}

/// Outcome of one circuit of a job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The circuit's name from the request.
    pub name: String,
    /// The compiled artifact, or the typed failure.
    pub result: Result<CompiledProgram, CompileError>,
}

/// A v1 compile response: one [`JobOutcome`] per requested circuit, in
/// request order.
#[derive(Debug, Clone)]
pub struct CompileResponse {
    /// The request's `request_id`, echoed when it carried one.
    pub request_id: Option<String>,
    /// Identifier of the target the job compiled for.
    pub target: String,
    /// Per-circuit outcomes in request order.
    pub results: Vec<JobOutcome>,
}

/// Structural summary of a response document, as parsed back by
/// [`CompileResponse::summary_from_json`] — what a service front-end
/// needs to route results without deserializing whole programs.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseSummary {
    /// Schema version of the document.
    pub version: u64,
    /// The `request_id` echoed by the document, when present.
    pub request_id: Option<String>,
    /// Target identifier.
    pub target: String,
    /// `(name, ok, error message)` per result, in document order.
    pub results: Vec<(String, bool, Option<String>)>,
}

impl CompileRequest {
    /// Parses and version-checks a v1 job document.
    ///
    /// # Errors
    ///
    /// Returns the first [`RequestError`] encountered: malformed JSON,
    /// an unsupported `"version"`, a missing/invalid field or an
    /// unknown preset. QASM sources are *not* parsed here — they fail
    /// per-circuit in [`CompileRequest::run`] so one bad circuit cannot
    /// poison a batch.
    pub fn from_json(text: &str) -> Result<Self, RequestError> {
        Self::from_json_with(text, &mut TargetResolver::new())
    }

    /// [`CompileRequest::from_json`] with a caller-owned
    /// [`TargetResolver`]: repeated documents naming the same target
    /// (by content, not by identity) reuse the resolved [`TargetSpec`]
    /// snapshot instead of re-deriving the CSR interaction table and
    /// region graph — the hot parse path of a long-running service.
    ///
    /// # Errors
    ///
    /// Same contract as [`CompileRequest::from_json`].
    pub fn from_json_with(text: &str, resolver: &mut TargetResolver) -> Result<Self, RequestError> {
        let doc = json::parse(text)?;
        let version = doc.get("version").and_then(Value::as_u64);
        if version != Some(JOB_VERSION) {
            return Err(RequestError::UnsupportedVersion {
                found: doc.get("version").and_then(Value::as_i64).unwrap_or(-1),
            });
        }
        let request_id = match doc.get("request_id") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| invalid("request_id", "expected a string"))?
                    .to_owned(),
            ),
        };
        let target = resolver.resolve(parse_target_descriptor(doc.get("target"))?);
        let mapping = parse_mapping(doc.get("mapping"))?;
        let scheduling = parse_scheduling(doc.get("scheduling"))?;
        let baseline = match doc.get("baseline") {
            None => true,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| invalid("baseline", "expected a boolean"))?,
        };
        let threads = match doc.get("threads") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| invalid("threads", "expected a non-negative integer"))?
                .max(1) as usize,
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| invalid("deadline_ms", "expected a non-negative integer"))?,
            ),
        };
        let circuits_value = doc
            .get("circuits")
            .ok_or(RequestError::MissingField { field: "circuits" })?;
        let entries = circuits_value
            .as_array()
            .ok_or_else(|| invalid("circuits", "expected an array"))?;
        let mut circuits = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let name = entry
                .get("name")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("circuit-{i}"));
            let qasm = entry
                .get("qasm")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid(&format!("circuits[{i}].qasm"), "expected a string"))?
                .to_owned();
            circuits.push(JobCircuit { name, qasm });
        }
        Ok(CompileRequest {
            request_id,
            target,
            mapping,
            scheduling,
            baseline,
            threads,
            deadline_ms,
            circuits,
        })
    }

    /// Emits the request as a v1 document. Every parameter is written
    /// explicitly, so parsed documents round-trip exactly
    /// (`from_json(to_json(from_json(doc)?)?) == from_json(doc)`). A
    /// hand-built request emits its *effective* values — e.g. a layout
    /// override on a custom mapping is folded into the config — so the
    /// reparse is semantically identical even where the in-memory
    /// representation normalizes.
    pub fn to_json(&self) -> String {
        let target = target_parts_to_json(
            &self.target.params,
            &self.target.lattice,
            self.target.aod,
            self.target.gates,
        );
        let request_id = match &self.request_id {
            Some(id) => format!("\"request_id\": \"{}\",\n  ", json_escape(id)),
            None => String::new(),
        };
        let mapping = mapping_to_json(&self.mapping);
        let scheduling = match self.scheduling.max_batch_moves {
            Some(n) => format!("{{\"max_batch_moves\":{n}}}"),
            None => "{}".to_string(),
        };
        let circuits = self
            .circuits
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":\"{}\",\"qasm\":\"{}\"}}",
                    json_escape(&c.name),
                    json_escape(&c.qasm)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let deadline = match self.deadline_ms {
            Some(ms) => format!("\"deadline_ms\": {ms},\n  "),
            None => String::new(),
        };
        format!(
            "{{\n  {request_id}\"version\": {JOB_VERSION},\n  \"target\": {target},\n  \
             \"mapping\": {mapping},\n  \"scheduling\": {scheduling},\n  \
             \"baseline\": {},\n  \"threads\": {},\n  {deadline}\"circuits\": [{circuits}]\n}}\n",
            self.baseline, self.threads,
        )
    }

    /// Builds the [`Compiler`] session described by this request and
    /// compiles every circuit, fanning out across `threads` workers.
    ///
    /// # Errors
    ///
    /// Returns a session-level [`CompileError`] when the target or the
    /// options are invalid. Per-circuit failures (bad QASM, routing
    /// stuck, …) land in the corresponding [`JobOutcome`] instead of
    /// failing the job.
    pub fn run(&self) -> Result<CompileResponse, CompileError> {
        let compiler = self.build_session()?;
        Ok(self.run_with(&compiler, &mut crate::CompileScratch::new()))
    }

    /// Builds the [`Compiler`] session this request describes (target,
    /// mapping, scheduling, baseline) without compiling anything —
    /// the seam a service uses to cache sessions across requests.
    ///
    /// # Errors
    ///
    /// The session-level [`CompileError`] cases of
    /// [`CompileRequest::run`].
    pub fn build_session(&self) -> Result<Compiler, CompileError> {
        Compiler::for_target(&self.target)
            .mapping(self.mapping.clone())
            .scheduling(self.scheduling)
            .baseline(self.baseline)
            .build()
    }

    /// Compiles every circuit of the request on an already-built
    /// session, reusing the caller's warm scratch arena.
    ///
    /// `threads > 1` fans out through
    /// [`Compiler::compile_batch`] exactly like [`CompileRequest::run`];
    /// otherwise circuits compile inline on `scratch` so a service
    /// worker keeps one arena warm across every request it serves.
    /// Artifacts are identical either way. `compiler` must be the
    /// session of [`CompileRequest::build_session`] (or an equivalent
    /// one — e.g. a content-hash cached instance).
    pub fn run_with(
        &self,
        compiler: &Compiler,
        scratch: &mut crate::CompileScratch,
    ) -> CompileResponse {
        // Parse QASM per circuit; parse failures stay in their slot
        // while the parsed circuits land (unduplicated) in the batch.
        let mut good: Vec<Circuit> = Vec::with_capacity(self.circuits.len());
        let mut slots: Vec<Result<(), CompileError>> = Vec::with_capacity(self.circuits.len());
        for job in &self.circuits {
            match from_qasm(&job.qasm) {
                Ok(circuit) => {
                    good.push(circuit);
                    slots.push(Ok(()));
                }
                Err(source) => slots.push(Err(CompileError::Request(RequestError::Qasm {
                    circuit: job.name.clone(),
                    source,
                }))),
            }
        }
        let compiled: Vec<Result<CompiledProgram, CompileError>> = if self.threads > 1 {
            compiler.compile_batch(&good, self.threads)
        } else {
            good.iter()
                .map(|c| compiler.compile_with(c, scratch))
                .collect()
        };
        let mut compiled = compiled.into_iter();
        let results = self
            .circuits
            .iter()
            .zip(slots)
            .map(|(job, slot)| JobOutcome {
                name: job.name.clone(),
                result: match slot {
                    Ok(()) => compiled.next().expect("one result per parsed circuit"),
                    Err(e) => Err(e),
                },
            })
            .collect();
        CompileResponse {
            request_id: self.request_id.clone(),
            target: self.target.id.clone(),
            results,
        }
    }

    /// [`CompileRequest::run_with`] under a cooperative
    /// [`CancelToken`]: every circuit compiles through
    /// [`Compiler::compile_with_cancel`], and the first checkpoint trip
    /// aborts the *whole request* — a deadline covers the request, not
    /// each circuit, so the caller replies with exactly one typed
    /// deadline/cancellation document instead of a partial response.
    ///
    /// Circuits compile inline on `scratch` regardless of `threads`
    /// (artifacts are identical to the fan-out path; a request racing
    /// its deadline has no business amplifying onto more cores).
    ///
    /// # Errors
    ///
    /// * [`CompileError::DeadlineExceeded`] / [`CompileError::Cancelled`]
    ///   — the token tripped mid-compile.
    ///
    /// Other per-circuit failures stay in their [`JobOutcome`] slot
    /// exactly like [`CompileRequest::run_with`].
    pub fn run_with_cancel(
        &self,
        compiler: &Compiler,
        scratch: &mut crate::CompileScratch,
        cancel: &CancelToken,
    ) -> Result<CompileResponse, CompileError> {
        let mut results = Vec::with_capacity(self.circuits.len());
        for job in &self.circuits {
            let result = match from_qasm(&job.qasm) {
                Ok(circuit) => match compiler.compile_with_cancel(&circuit, scratch, cancel) {
                    Err(e @ (CompileError::DeadlineExceeded | CompileError::Cancelled)) => {
                        return Err(e)
                    }
                    other => other,
                },
                Err(source) => Err(CompileError::Request(RequestError::Qasm {
                    circuit: job.name.clone(),
                    source,
                })),
            };
            results.push(JobOutcome {
                name: job.name.clone(),
                result,
            });
        }
        Ok(CompileResponse {
            request_id: self.request_id.clone(),
            target: self.target.id.clone(),
            results,
        })
    }
}

impl CompileResponse {
    /// Serializes the response as one v1 document: per-circuit status
    /// with the full [`CompiledProgram::to_json`] artifact on success.
    pub fn to_json(&self) -> String {
        let results = self
            .results
            .iter()
            .map(|r| match &r.result {
                Ok(program) => format!(
                    "{{\"name\":\"{}\",\"ok\":true,\"program\":{}}}",
                    json_escape(&r.name),
                    program.to_json()
                ),
                Err(e) => format!(
                    "{{\"name\":\"{}\",\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(&r.name),
                    json_escape(&e.to_string())
                ),
            })
            .collect::<Vec<_>>()
            .join(",\n    ");
        let request_id = match &self.request_id {
            Some(id) => format!("\"request_id\": \"{}\",\n  ", json_escape(id)),
            None => String::new(),
        };
        format!(
            "{{\n  {request_id}\"version\": {JOB_VERSION},\n  \"target\": \"{}\",\n  \"results\": [\n    {results}\n  ]\n}}\n",
            json_escape(&self.target),
        )
    }

    /// Parses the structural summary back out of a response document
    /// (version, target, per-circuit status) — the consumer-side half
    /// of the round trip.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError::Parse`] for malformed JSON and
    /// [`RequestError::UnsupportedVersion`] for any version other than
    /// [`JOB_VERSION`].
    pub fn summary_from_json(text: &str) -> Result<ResponseSummary, RequestError> {
        let doc = json::parse(text)?;
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or(RequestError::MissingField { field: "version" })?;
        if version != JOB_VERSION {
            return Err(RequestError::UnsupportedVersion {
                found: version as i64,
            });
        }
        let request_id = doc
            .get("request_id")
            .and_then(Value::as_str)
            .map(str::to_owned);
        let target = doc
            .get("target")
            .and_then(Value::as_str)
            .ok_or(RequestError::MissingField { field: "target" })?
            .to_owned();
        let entries = doc
            .get("results")
            .and_then(Value::as_array)
            .ok_or(RequestError::MissingField { field: "results" })?;
        let mut results = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let name = entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid(&format!("results[{i}].name"), "expected a string"))?
                .to_owned();
            let ok = entry
                .get("ok")
                .and_then(Value::as_bool)
                .ok_or_else(|| invalid(&format!("results[{i}].ok"), "expected a boolean"))?;
            let error = entry
                .get("error")
                .and_then(Value::as_str)
                .map(str::to_owned);
            results.push((name, ok, error));
        }
        Ok(ResponseSummary {
            version,
            request_id,
            target,
            results,
        })
    }
}

/// Parses, runs and serializes in one call — the service entry point:
/// one JSON document in, one JSON document out.
///
/// # Errors
///
/// Returns [`CompileError::Request`] for a malformed document and the
/// session-level [`CompileError`] cases of [`CompileRequest::run`].
pub fn handle_json(request: &str) -> Result<String, CompileError> {
    let request = CompileRequest::from_json(request).map_err(CompileError::Request)?;
    Ok(request.run()?.to_json())
}

/// Serializes a [`CompileError`] as a well-formed v1 error document:
///
/// ```json
/// {"version": 1, "ok": false,
///  "error": {"kind": "request", "message": "..."}}
/// ```
///
/// `kind` names the [`CompileError`] variant (`request`, `target`,
/// `config`, `map`, `schedule`, `deadline`, `cancelled`), so transports
/// can map document classes to status codes without string-matching
/// messages.
pub fn error_to_json(error: &CompileError) -> String {
    let kind = match error {
        CompileError::Target(_) => "target",
        CompileError::Config(_) => "config",
        CompileError::Map(_) => "map",
        CompileError::Schedule(_) => "schedule",
        CompileError::Request(_) => "request",
        CompileError::DeadlineExceeded => "deadline",
        CompileError::Cancelled => "cancelled",
    };
    format!(
        "{{\n  \"version\": {JOB_VERSION},\n  \"ok\": false,\n  \
         \"error\": {{\"kind\":\"{kind}\",\"message\":\"{}\"}}\n}}\n",
        json_escape(&error.to_string()),
    )
}

/// The infallible service entry point: one JSON document in, one JSON
/// document out, **always**. Success returns the
/// [`CompileResponse::to_json`] document of [`handle_json`]; any
/// failure (malformed JSON, wrong `"version"`, invalid target or
/// options) returns the [`error_to_json`] document instead — transport
/// code never has to format errors ad hoc.
pub fn handle_json_document(request: &str) -> String {
    match handle_json(request) {
        Ok(response) => response,
        Err(e) => error_to_json(&e),
    }
}

/// Splices a `request_id` echo into a response document serialized
/// without one, producing exactly the bytes
/// [`CompileResponse::to_json`] emits when `request_id` is set.
///
/// This is the seam that lets a response cache stay content-addressed:
/// the cache stores the id-less canonical document once, and each
/// submitter gets its own id spliced in —
/// `with_request_id(resp_without_id.to_json(), id) ==
/// resp_with_id.to_json()` (tested).
pub fn with_request_id(response_json: &str, id: &str) -> String {
    match response_json.strip_prefix("{\n  ") {
        Some(rest) => format!("{{\n  \"request_id\": \"{}\",\n  {rest}", json_escape(id)),
        // Not a canonical response document (e.g. already compacted):
        // leave it untouched rather than corrupt it.
        None => response_json.to_owned(),
    }
}

fn invalid(field: &str, reason: &str) -> RequestError {
    RequestError::InvalidField {
        field: field.to_owned(),
        reason: reason.to_owned(),
    }
}

/// Applies `"$prefix.$field"` number overrides from `$obj` onto the
/// matching fields of `$dst`.
macro_rules! override_f64_fields {
    ($obj:expr, $dst:expr, $prefix:literal, [$($field:ident),+ $(,)?]) => {
        $(
            if let Some(v) = $obj.get(stringify!($field)) {
                $dst.$field = v.as_f64().ok_or_else(|| {
                    invalid(concat!($prefix, ".", stringify!($field)), "expected a number")
                })?;
            }
        )+
    };
}

/// Like [`override_f64_fields!`] for unsigned integer fields.
macro_rules! override_uint_fields {
    ($obj:expr, $dst:expr, $prefix:literal, $ty:ty, [$($field:ident),+ $(,)?]) => {
        $(
            if let Some(v) = $obj.get(stringify!($field)) {
                let raw = v.as_u64().ok_or_else(|| {
                    invalid(
                        concat!($prefix, ".", stringify!($field)),
                        "expected a non-negative integer",
                    )
                })?;
                $dst.$field = <$ty>::try_from(raw).map_err(|_| {
                    invalid(
                        concat!($prefix, ".", stringify!($field)),
                        &format!("{raw} exceeds the field's range"),
                    )
                })?;
            }
        )+
    };
}

/// Reads an in-range `u32` field of `obj`, rejecting both non-integers
/// and values that would truncate.
fn get_u32(obj: &Value, key: &str, path: &str) -> Result<Option<u32>, RequestError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let raw = v
                .as_u64()
                .ok_or_else(|| invalid(path, "expected a non-negative integer"))?;
            u32::try_from(raw)
                .map(Some)
                .map_err(|_| invalid(path, &format!("{raw} exceeds the field's range")))
        }
    }
}

/// The preset whose *timing/coherence* base the params started from.
/// Emission-side only; `from_json` re-applies every field explicitly,
/// so this is informational.
fn preset_of(p: &HardwareParams) -> &'static str {
    match p.name.as_str() {
        "shuttling" => "shuttling",
        "gate" => "gate",
        _ => "mixed",
    }
}

/// Canonical JSON emission of a target description — the shared
/// serialization behind both [`CompileRequest::to_json`] and the
/// content fingerprints of [`crate::fingerprint`]. Every field that
/// determines compilation output is written explicitly; derived data
/// (CSR adjacency, region graph) is not part of the description.
pub(crate) fn target_parts_to_json(
    p: &HardwareParams,
    lattice: &Lattice,
    aod: AodConstraints,
    gates: NativeGateSet,
) -> String {
    let topology = match lattice.kind() {
        na_arch::LatticeKind::Square => "{\"kind\":\"square\"}".to_string(),
        na_arch::LatticeKind::Zoned {
            zone_rows,
            gap_rows,
        } => {
            format!("{{\"kind\":\"zoned\",\"zone_rows\":{zone_rows},\"gap_rows\":{gap_rows}}}")
        }
    };
    let aod = match aod.max_batch_moves {
        Some(n) => format!(",\"max_batch_moves\":{n}"),
        None => String::new(),
    };
    let arity = if gates.max_rydberg_arity == usize::MAX {
        String::new()
    } else {
        format!(",\"max_rydberg_arity\":{}", gates.max_rydberg_arity)
    };
    format!(
        "{{\"preset\":\"{}\",\"name\":\"{}\",\"topology\":{topology},\
         \"lattice_side\":{},\"lattice_constant_um\":{},\"num_atoms\":{},\
         \"r_int\":{},\"r_restr\":{},\"f_cz\":{},\"f_single\":{},\"f_shuttle\":{},\
         \"t_single_us\":{},\"t_cz_us\":{},\"t_ccz_us\":{},\"t_cccz_us\":{},\
         \"shuttle_speed_um_per_us\":{},\"t_act_us\":{},\"t_deact_us\":{},\
         \"t1_us\":{},\"t2_us\":{}{aod}{arity},\"supports_shuttling\":{}}}",
        json_escape(preset_of(p)),
        json_escape(&p.name),
        p.lattice_side,
        json_f64(p.lattice_constant_um),
        p.num_atoms,
        json_f64(p.r_int),
        json_f64(p.r_restr),
        json_f64(p.f_cz),
        json_f64(p.f_single),
        json_f64(p.f_shuttle),
        json_f64(p.t_single_us),
        json_f64(p.t_cz_us),
        json_f64(p.t_ccz_us),
        json_f64(p.t_cccz_us),
        json_f64(p.shuttle_speed_um_per_us),
        json_f64(p.t_act_us),
        json_f64(p.t_deact_us),
        json_f64(p.t1_us),
        json_f64(p.t2_us),
        gates.supports_shuttling,
    )
}

/// A parsed-but-unresolved target: every descriptive field of a
/// [`TargetSpec`] *before* the (comparatively expensive) CSR
/// interaction-table and region-graph derivation.
#[derive(Debug, Clone)]
struct TargetDescriptor {
    id: String,
    params: HardwareParams,
    lattice: Lattice,
    aod: AodConstraints,
    gates: NativeGateSet,
}

impl TargetDescriptor {
    /// Content hash over the canonical description (pre-resolution).
    fn fingerprint(&self) -> u64 {
        crate::fingerprint::target_parts_fingerprint(
            &self.params,
            &self.lattice,
            self.aod,
            self.gates,
        )
    }

    /// Pays for CSR/region-graph derivation.
    fn resolve(self) -> TargetSpec {
        TargetSpec::resolve(self.id, self.params, self.lattice, self.aod, self.gates)
    }
}

/// A content-hash cache of resolved [`TargetSpec`] snapshots.
///
/// Resolving a spec derives the CSR interaction table and region graph
/// — `O(sites · hood)` work that a service would otherwise repeat on
/// every request naming the same machine. The resolver hashes the
/// *description* (FNV-1a over the canonical target JSON, see
/// [`crate::fingerprint`]) and clones the previously resolved snapshot
/// on a hit; requests describing the same target by content share one
/// resolution no matter how their documents are formatted.
#[derive(Debug, Default)]
pub struct TargetResolver {
    entries: std::collections::HashMap<u64, TargetSpec>,
    hits: u64,
    misses: u64,
}

impl TargetResolver {
    /// An empty resolver.
    pub fn new() -> Self {
        TargetResolver::default()
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (resolutions actually performed).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct targets currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no target has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn resolve(&mut self, descriptor: TargetDescriptor) -> TargetSpec {
        let key = descriptor.fingerprint();
        if let Some(spec) = self.entries.get(&key) {
            self.hits += 1;
            return spec.clone();
        }
        self.misses += 1;
        let spec = descriptor.resolve();
        self.entries.insert(key, spec.clone());
        spec
    }
}

fn parse_target_descriptor(value: Option<&Value>) -> Result<TargetDescriptor, RequestError> {
    let obj = match value {
        None => return Err(RequestError::MissingField { field: "target" }),
        Some(v) => v,
    };
    let preset = obj.get("preset").and_then(Value::as_str).unwrap_or("mixed");
    let mut params = match preset {
        "shuttling" => HardwareParams::shuttling(),
        "gate" | "gate_based" | "gate-based" => HardwareParams::gate_based(),
        "mixed" => HardwareParams::mixed(),
        other => {
            return Err(RequestError::UnknownPreset {
                preset: other.to_owned(),
            })
        }
    };
    if let Some(name) = obj.get("name").and_then(Value::as_str) {
        params.name = name.to_owned();
    }
    override_f64_fields!(
        obj,
        params,
        "target",
        [
            lattice_constant_um,
            r_int,
            r_restr,
            f_cz,
            f_single,
            f_shuttle,
            t_single_us,
            t_cz_us,
            t_ccz_us,
            t_cccz_us,
            shuttle_speed_um_per_us,
            t_act_us,
            t_deact_us,
            t1_us,
            t2_us,
        ]
    );
    override_uint_fields!(obj, params, "target", u32, [lattice_side, num_atoms]);
    if params.lattice_side == 0 {
        return Err(invalid("target.lattice_side", "must be positive"));
    }
    let square = || {
        (
            Lattice::new(params.lattice_side),
            format!("square/{}", params.name),
        )
    };
    let (lattice, id) = match obj.get("topology") {
        None => square(),
        Some(topo) => {
            let kind = topo
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid("target.topology.kind", "expected a string"))?;
            match kind {
                "square" => square(),
                "zoned" => {
                    let zone = get_u32(topo, "zone_rows", "target.topology.zone_rows")?.ok_or(
                        RequestError::MissingField {
                            field: "target.topology.zone_rows",
                        },
                    )?;
                    let gap = get_u32(topo, "gap_rows", "target.topology.gap_rows")?.ok_or(
                        RequestError::MissingField {
                            field: "target.topology.gap_rows",
                        },
                    )?;
                    (
                        Lattice::zoned(params.lattice_side, zone, gap)
                            .map_err(|e| invalid("target.topology", &e.to_string()))?,
                        format!("zoned{zone}+{gap}/{}", params.name),
                    )
                }
                other => {
                    return Err(invalid(
                        "target.topology.kind",
                        &format!("unknown topology `{other}`"),
                    ))
                }
            }
        }
    };
    let aod = AodConstraints {
        max_batch_moves: match obj.get("max_batch_moves") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                invalid("target.max_batch_moves", "expected a non-negative integer")
            })? as usize),
        },
    };
    let gates = NativeGateSet {
        max_rydberg_arity: match obj.get("max_rydberg_arity") {
            None => usize::MAX,
            Some(v) => v.as_u64().ok_or_else(|| {
                invalid(
                    "target.max_rydberg_arity",
                    "expected a non-negative integer",
                )
            })? as usize,
        },
        supports_shuttling: match obj.get("supports_shuttling") {
            None => true,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| invalid("target.supports_shuttling", "expected a boolean"))?,
        },
    };
    Ok(TargetDescriptor {
        id,
        params,
        lattice,
        aod,
        gates,
    })
}

fn parse_layout(value: &Value) -> Result<InitialLayout, RequestError> {
    if let Some(s) = value.as_str() {
        return match s {
            "identity" => Ok(InitialLayout::Identity),
            "center_compact" => Ok(InitialLayout::CenterCompact),
            other => Err(invalid(
                "mapping.initial_layout",
                &format!("unknown layout `{other}`"),
            )),
        };
    }
    if let Some(seed) = value.get("random").and_then(Value::as_u64) {
        return Ok(InitialLayout::Random(seed));
    }
    Err(invalid(
        "mapping.initial_layout",
        "expected \"identity\", \"center_compact\" or {\"random\": seed}",
    ))
}

fn parse_mapping(value: Option<&Value>) -> Result<MappingOptions, RequestError> {
    let obj = match value {
        None => return Ok(MappingOptions::default()),
        Some(v) => v,
    };
    let mode = obj.get("mode").and_then(Value::as_str).unwrap_or("hybrid");
    let mut options = match mode {
        "hybrid" => {
            let alpha = match obj.get("alpha") {
                None => 1.0,
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| invalid("mapping.alpha", "expected a number"))?,
            };
            MappingOptions::hybrid(alpha)
        }
        "gate_only" => MappingOptions::gate_only(),
        "shuttle_only" => MappingOptions::shuttle_only(),
        "custom" => {
            let mut config = MapperConfig::default();
            override_f64_fields!(
                obj,
                config,
                "mapping",
                [
                    alpha_gate,
                    alpha_shuttle,
                    lookahead_weight,
                    time_weight,
                    decay_rate
                ]
            );
            override_uint_fields!(
                obj,
                config,
                "mapping",
                usize,
                [
                    recency_window,
                    lookahead_depth,
                    lookahead_max_gates,
                    max_ops_per_gate
                ]
            );
            // For the custom mode the layout is part of the config, so
            // the full configuration round-trips through one key.
            if let Some(layout) = obj.get("initial_layout") {
                config.initial_layout = parse_layout(layout)?;
            }
            return Ok(MappingOptions::custom(config));
        }
        other => {
            return Err(invalid(
                "mapping.mode",
                &format!(
                    "unknown mode `{other}` (expected hybrid, gate_only, shuttle_only or custom)"
                ),
            ))
        }
    };
    if let Some(layout) = obj.get("initial_layout") {
        options = options.with_initial_layout(parse_layout(layout)?);
    }
    Ok(options)
}

fn layout_to_json(layout: InitialLayout) -> String {
    match layout {
        InitialLayout::Identity => ",\"initial_layout\":\"identity\"".to_string(),
        InitialLayout::CenterCompact => ",\"initial_layout\":\"center_compact\"".to_string(),
        InitialLayout::Random(seed) => format!(",\"initial_layout\":{{\"random\":{seed}}}"),
        // `InitialLayout` is non-exhaustive within the workspace only;
        // new layouts must be given a JSON spelling here first.
        #[allow(unreachable_patterns)]
        other => unreachable!("unhandled layout {other:?}"),
    }
}

pub(crate) fn mapping_to_json(options: &MappingOptions) -> String {
    let layout = match options.initial_layout {
        None => String::new(),
        Some(layout) => layout_to_json(layout),
    };
    match &options.mode {
        MappingMode::Hybrid { alpha_ratio } => {
            format!(
                "{{\"mode\":\"hybrid\",\"alpha\":{}{layout}}}",
                json_f64(*alpha_ratio)
            )
        }
        MappingMode::GateOnly => format!("{{\"mode\":\"gate_only\"{layout}}}"),
        MappingMode::ShuttleOnly => format!("{{\"mode\":\"shuttle_only\"{layout}}}"),
        MappingMode::Custom(c) => {
            // The effective layout (an explicit override wins over the
            // config's own) is emitted with the config, so a custom
            // mapping round-trips its placement too.
            let layout = layout_to_json(options.initial_layout.unwrap_or(c.initial_layout));
            format!(
                "{{\"mode\":\"custom\",\"alpha_gate\":{},\"alpha_shuttle\":{},\
                 \"lookahead_weight\":{},\"time_weight\":{},\"decay_rate\":{},\
                 \"recency_window\":{},\"lookahead_depth\":{},\"lookahead_max_gates\":{},\
                 \"max_ops_per_gate\":{}{layout}}}",
                json_f64(c.alpha_gate),
                json_f64(c.alpha_shuttle),
                json_f64(c.lookahead_weight),
                json_f64(c.time_weight),
                json_f64(c.decay_rate),
                c.recency_window,
                c.lookahead_depth,
                c.lookahead_max_gates,
                c.max_ops_per_gate,
            )
        }
    }
}

fn parse_scheduling(value: Option<&Value>) -> Result<SchedulingOptions, RequestError> {
    let obj = match value {
        None => return Ok(SchedulingOptions::default()),
        Some(v) => v,
    };
    let mut options = SchedulingOptions::default();
    if let Some(v) = obj.get("max_batch_moves") {
        let n = v.as_u64().ok_or_else(|| {
            invalid(
                "scheduling.max_batch_moves",
                "expected a non-negative integer",
            )
        })?;
        options = options.max_batch_moves(n as usize);
    }
    Ok(options)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";

    fn minimal_request(extra: &str) -> String {
        format!(
            "{{\"version\": 1, \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 6, \
             \"num_atoms\": 16}}{extra}, \"circuits\": [{{\"name\": \"bell\", \"qasm\": \
             \"{}\"}}]}}",
            json_escape(BELL)
        )
    }

    #[test]
    fn parses_minimal_document_with_defaults() {
        let req = CompileRequest::from_json(&minimal_request("")).expect("parses");
        assert_eq!(req.target.id, "square/mixed");
        assert_eq!(req.target.params.lattice_side, 6);
        assert_eq!(req.target.params.num_atoms, 16);
        assert_eq!(req.mapping, MappingOptions::hybrid(1.0));
        assert!(req.baseline);
        assert_eq!(req.threads, 1);
        assert_eq!(req.circuits.len(), 1);
    }

    #[test]
    fn rejects_unknown_version() {
        let doc = minimal_request("").replace("\"version\": 1", "\"version\": 2");
        assert!(matches!(
            CompileRequest::from_json(&doc),
            Err(RequestError::UnsupportedVersion { found: 2 })
        ));
        let doc = minimal_request("").replace("\"version\": 1,", "");
        assert!(matches!(
            CompileRequest::from_json(&doc),
            Err(RequestError::UnsupportedVersion { found: -1 })
        ));
    }

    #[test]
    fn rejects_unknown_preset_and_topology() {
        let doc = minimal_request("").replace("\"preset\": \"mixed\"", "\"preset\": \"ionq\"");
        assert!(matches!(
            CompileRequest::from_json(&doc),
            Err(RequestError::UnknownPreset { .. })
        ));
        let doc = minimal_request("").replace(
            "\"num_atoms\": 16",
            "\"num_atoms\": 16, \"topology\": {\"kind\": \"hex\"}",
        );
        assert!(matches!(
            CompileRequest::from_json(&doc),
            Err(RequestError::InvalidField { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_and_zero_dimensions() {
        // 2^32 + 16 must not silently truncate to 16 atoms.
        let doc = minimal_request("").replace("\"num_atoms\": 16", "\"num_atoms\": 4294967312");
        assert!(matches!(
            CompileRequest::from_json(&doc),
            Err(RequestError::InvalidField { .. })
        ));
        // A zero lattice side is rejected at parse time, not patched up.
        let doc = minimal_request("").replace("\"lattice_side\": 6", "\"lattice_side\": 0");
        assert!(matches!(
            CompileRequest::from_json(&doc),
            Err(RequestError::InvalidField { .. })
        ));
    }

    #[test]
    fn request_round_trips_through_json() {
        let doc = minimal_request(
            ", \"mapping\": {\"mode\": \"hybrid\", \"alpha\": 1.5}, \
             \"scheduling\": {\"max_batch_moves\": 4}, \"baseline\": false, \"threads\": 2",
        );
        let req = CompileRequest::from_json(&doc).expect("parses");
        let emitted = req.to_json();
        let reparsed = CompileRequest::from_json(&emitted).expect("re-parses");
        assert_eq!(req, reparsed);
    }

    #[test]
    fn deadline_ms_parses_and_round_trips() {
        let doc = minimal_request(", \"deadline_ms\": 250");
        let req = CompileRequest::from_json(&doc).expect("parses");
        assert_eq!(req.deadline_ms, Some(250));
        let reparsed = CompileRequest::from_json(&req.to_json()).expect("re-parses");
        assert_eq!(req, reparsed);
        // Absent by default; malformed values are rejected typed.
        let req = CompileRequest::from_json(&minimal_request("")).expect("parses");
        assert_eq!(req.deadline_ms, None);
        let bad = minimal_request(", \"deadline_ms\": \"soon\"");
        assert!(matches!(
            CompileRequest::from_json(&bad),
            Err(RequestError::InvalidField { .. })
        ));
    }

    #[test]
    fn custom_mapping_with_layout_round_trips() {
        let doc = minimal_request(
            ", \"mapping\": {\"mode\": \"custom\", \"alpha_gate\": 2.0, \"decay_rate\": 0.5, \
             \"initial_layout\": {\"random\": 7}}",
        );
        let req = CompileRequest::from_json(&doc).expect("parses");
        match &req.mapping.mode {
            MappingMode::Custom(c) => {
                assert_eq!(c.alpha_gate, 2.0);
                assert_eq!(c.initial_layout, InitialLayout::Random(7));
            }
            other => panic!("expected custom mode, got {other:?}"),
        }
        let reparsed = CompileRequest::from_json(&req.to_json()).expect("re-parses");
        assert_eq!(req, reparsed);
        // A hand-built custom request with a layout *override* emits the
        // effective layout: the reparse resolves to the same config.
        let hand_built = CompileRequest {
            mapping: MappingOptions::custom(MapperConfig::default())
                .with_initial_layout(InitialLayout::CenterCompact),
            ..req
        };
        let reparsed = CompileRequest::from_json(&hand_built.to_json()).expect("re-parses");
        match &reparsed.mapping.mode {
            MappingMode::Custom(c) => {
                assert_eq!(c.initial_layout, InitialLayout::CenterCompact)
            }
            other => panic!("expected custom mode, got {other:?}"),
        }
    }

    #[test]
    fn zoned_request_round_trips() {
        let doc = minimal_request("").replace(
            "\"num_atoms\": 16",
            "\"num_atoms\": 16, \"topology\": {\"kind\": \"zoned\", \"zone_rows\": 2, \
             \"gap_rows\": 1}",
        );
        let req = CompileRequest::from_json(&doc).expect("parses");
        assert_eq!(req.target.id, "zoned2+1/mixed");
        let reparsed = CompileRequest::from_json(&req.to_json()).expect("re-parses");
        assert_eq!(req, reparsed);
    }

    #[test]
    fn run_compiles_and_response_round_trips() {
        let req = CompileRequest::from_json(&minimal_request("")).expect("parses");
        let response = req.run().expect("session builds");
        assert_eq!(response.results.len(), 1);
        assert!(response.results[0].result.is_ok());
        let json = response.to_json();
        let summary = CompileResponse::summary_from_json(&json).expect("parses back");
        assert_eq!(summary.version, JOB_VERSION);
        assert_eq!(summary.target, "square/mixed");
        assert_eq!(summary.results, vec![("bell".to_string(), true, None)]);
    }

    #[test]
    fn bad_qasm_fails_only_its_slot() {
        let doc = format!(
            "{{\"version\": 1, \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 6, \
             \"num_atoms\": 16}}, \"circuits\": [{{\"name\": \"bad\", \"qasm\": \"qreg\"}}, \
             {{\"name\": \"bell\", \"qasm\": \"{}\"}}]}}",
            json_escape(BELL)
        );
        let response = CompileRequest::from_json(&doc)
            .expect("parses")
            .run()
            .expect("session builds");
        assert!(matches!(
            response.results[0].result,
            Err(CompileError::Request(RequestError::Qasm { .. }))
        ));
        assert!(response.results[1].result.is_ok());
    }

    #[test]
    fn handle_json_is_one_document_in_one_out() {
        let out = handle_json(&minimal_request("")).expect("handles");
        assert!(out.contains("\"ok\":true"));
        assert!(out.contains("\"metrics\""));
    }

    #[test]
    fn request_id_round_trips_and_is_echoed() {
        let doc = minimal_request(", \"request_id\": \"job-42\"");
        let req = CompileRequest::from_json(&doc).expect("parses");
        assert_eq!(req.request_id.as_deref(), Some("job-42"));
        let reparsed = CompileRequest::from_json(&req.to_json()).expect("re-parses");
        assert_eq!(req, reparsed);

        let response = req.run().expect("session builds");
        assert_eq!(response.request_id.as_deref(), Some("job-42"));
        let json = response.to_json();
        let summary = CompileResponse::summary_from_json(&json).expect("parses back");
        assert_eq!(summary.request_id.as_deref(), Some("job-42"));

        // A non-string request_id is rejected, not coerced.
        let bad = minimal_request(", \"request_id\": 7");
        assert!(matches!(
            CompileRequest::from_json(&bad),
            Err(RequestError::InvalidField { .. })
        ));
    }

    /// The splice helper is byte-exact: serializing with the id set
    /// equals splicing the id into the id-less document. This is what
    /// lets a response cache stay content-addressed.
    #[test]
    fn request_id_splice_matches_direct_emission() {
        let req = CompileRequest::from_json(&minimal_request("")).expect("parses");
        let mut response = req.run().expect("session builds");
        let without_id = response.to_json();
        response.request_id = Some("abc \"quoted\"".to_owned());
        let direct = response.to_json();
        assert_eq!(with_request_id(&without_id, "abc \"quoted\""), direct);
        // Error documents splice the same way.
        let err = error_to_json(&CompileError::Request(RequestError::MissingField {
            field: "circuits",
        }));
        let spliced = with_request_id(&err, "e-1");
        assert!(spliced.starts_with("{\n  \"request_id\": \"e-1\",\n  \"version\": 1"));
    }

    #[test]
    fn target_resolver_caches_by_content() {
        let mut resolver = TargetResolver::new();
        let doc = minimal_request("");
        let a = CompileRequest::from_json_with(&doc, &mut resolver).expect("parses");
        assert_eq!((resolver.hits(), resolver.misses()), (0, 1));
        // Same target written with different formatting/field order
        // still hits by content.
        let shuffled = "{\"version\": 1, \"target\": {\"num_atoms\": 16,   \
             \"lattice_side\": 6, \"preset\": \"mixed\"}, \"circuits\": []}";
        let b = CompileRequest::from_json_with(shuffled, &mut resolver).expect("parses");
        assert_eq!((resolver.hits(), resolver.misses()), (1, 1));
        assert_eq!(a.target, b.target);
        // A different target misses.
        let other = doc.replace("\"num_atoms\": 16", "\"num_atoms\": 18");
        CompileRequest::from_json_with(&other, &mut resolver).expect("parses");
        assert_eq!((resolver.hits(), resolver.misses()), (1, 2));
        assert_eq!(resolver.len(), 2);
    }

    #[test]
    fn error_documents_are_well_formed_json() {
        for (doc, kind) in [
            ("{not json", "request"),
            ("{\"version\": 99, \"circuits\": []}", "request"),
            (
                &minimal_request("").replace("\"lattice_side\": 6", "\"lattice_side\": 0"),
                "request",
            ),
        ] {
            let out = handle_json_document(doc);
            let parsed = json::parse(&out).expect("error document is valid JSON");
            assert_eq!(parsed.get("version").and_then(Value::as_u64), Some(1));
            assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(false));
            let error = parsed.get("error").expect("has error object");
            assert_eq!(error.get("kind").and_then(Value::as_str), Some(kind));
            assert!(!error
                .get("message")
                .and_then(Value::as_str)
                .expect("has message")
                .is_empty());
        }
        // A session-level (non-request) failure keeps its kind: an
        // invalid α is a config error.
        let bad_alpha = minimal_request(", \"mapping\": {\"mode\": \"hybrid\", \"alpha\": -1.0}");
        let out = handle_json_document(&bad_alpha);
        let parsed = json::parse(&out).expect("valid JSON");
        assert_eq!(
            parsed
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("config")
        );
    }

    /// `run_with` on a cached session + warm scratch produces the same
    /// response as the self-contained `run` (runtime stamps aside).
    #[test]
    fn run_with_matches_run() {
        let req = CompileRequest::from_json(&minimal_request("")).expect("parses");
        let via_run = req.run().expect("session builds");
        let compiler = req.build_session().expect("builds");
        let mut scratch = crate::CompileScratch::new();
        let via_run_with = req.run_with(&compiler, &mut scratch);
        assert_eq!(via_run.target, via_run_with.target);
        let a = via_run.results[0].result.as_ref().expect("compiles");
        let b = via_run_with.results[0].result.as_ref().expect("compiles");
        assert_eq!(a.mapped, b.mapped);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.aod_programs, b.aod_programs);
        assert_eq!(a.comparison, b.comparison);
    }
}
