//! A minimal hand-written JSON parser for the job layer.
//!
//! The vendored `serde` is a marker-only stub (no registry access in
//! this environment), so the job layer parses documents itself:
//! recursive descent over the full JSON grammar — objects, arrays,
//! strings with escapes, numbers, booleans, null — with byte-offset
//! error reporting. Sufficient for request/response documents; not a
//! general-purpose streaming parser.

use super::RequestError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order preserved; duplicate keys keep the
    /// last occurrence on lookup like most JSON consumers).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` on non-objects and missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a (possibly negative) integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(*x as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub(crate) fn parse(text: &str) -> Result<Value, RequestError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> RequestError {
        RequestError::Parse {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), RequestError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, RequestError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, RequestError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of document")),
        }
    }

    fn object(&mut self) -> Result<Value, RequestError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, RequestError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, RequestError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined; the job schema never emits them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("invalid \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape sequence")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, RequestError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -3.5e2 ").unwrap(), Value::Num(-350.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse("{\"a\": [1, {\"b\": false}], \"c\": \"x\"}").unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(
                matches!(parse(bad), Err(RequestError::Parse { .. })),
                "`{bad}` should fail"
            );
        }
    }

    #[test]
    fn integer_accessors_guard_domains() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_i64(), Some(-2));
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = parse("{\"a\": 1, \"a\": 2}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
    }
}
