//! Stable content hashes for cache keys: circuits, targets, options
//! and whole job requests.
//!
//! The service layer (`na-serve`) keys two caches off these values —
//! the per-target [`TargetSpec`] resolution cache and the
//! content-addressed artifact cache (response documents). Both caches
//! must agree on a key across processes and releases, so the hashes
//! here are **hand-rolled 64-bit FNV-1a** over *canonical
//! serializations* (the job layer's own JSON emission for targets and
//! options, a structural walk for circuits) rather than
//! [`std::hash::Hash`], whose output is explicitly unstable across
//! compiler releases.
//!
//! Unit tests pin exact hash values; a change to any canonical
//! serialization (or to the hash itself) fails those tests, so cache
//! keys cannot silently drift between a baseline and a fresh build.

use na_arch::{AodConstraints, Lattice, NativeGateSet, TargetSpec};
use na_circuit::{Circuit, GateKind};

use crate::compiler::{MappingOptions, SchedulingOptions};
use crate::job::{target_parts_to_json, CompileRequest};

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher with typed write helpers.
///
/// Multi-field writes are length/tag-delimited (strings are
/// length-prefixed, floats canonicalize `-0.0` to `0.0`), so two
/// different field sequences cannot collide by concatenation.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Feeds an `f64` by bit pattern, canonicalizing `-0.0` to `0.0`
    /// so numerically equal configurations hash equal.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        let bits = if v == 0.0 { 0u64 } else { v.to_bits() };
        self.write_u64(bits)
    }

    /// Feeds a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Content hash of a target description: everything that determines
/// compilation output — physics parameters, topology, AOD constraints
/// and native gate set — via the job layer's canonical target JSON.
///
/// Derived data ([`TargetSpec::interaction_table`], the region graph)
/// is a pure function of the hashed fields and deliberately not
/// hashed; two specs with equal descriptions hash equal even if one
/// was resolved and the other assembled by hand.
pub fn target_fingerprint(spec: &TargetSpec) -> u64 {
    target_parts_fingerprint(&spec.params, &spec.lattice, spec.aod, spec.gates)
}

/// [`target_fingerprint`] from pre-resolution parts — what the
/// [`TargetResolver`](crate::job::TargetResolver) hashes *before*
/// paying for CSR/region-graph resolution.
pub(crate) fn target_parts_fingerprint(
    params: &na_arch::HardwareParams,
    lattice: &Lattice,
    aod: AodConstraints,
    gates: NativeGateSet,
) -> u64 {
    fnv1a(target_parts_to_json(params, lattice, aod, gates).as_bytes())
}

/// Content hash of the mapping options (mode, α, layout override,
/// round-mode and eval-thread overrides), via their canonical JSON.
pub fn mapping_fingerprint(options: &MappingOptions) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str(&crate::job::mapping_to_json(options));
    // Round-mode/eval-thread overrides are not part of the v1 wire
    // schema but do change the compiled artifact stream — fold them in
    // so programmatic sessions key correctly too.
    match options.round_mode {
        None => h.write_u64(0),
        Some(na_mapper::RoundMode::Single) => h.write_u64(1),
        Some(na_mapper::RoundMode::Speculative) => h.write_u64(2),
        #[allow(unreachable_patterns)]
        Some(_) => h.write_u64(u64::MAX),
    };
    match options.eval_threads {
        None => h.write_u64(0),
        Some(t) => h.write_u64(1).write_u64(t as u64),
    };
    h.finish()
}

/// Content hash of one compiler session: target × mapping ×
/// scheduling × baseline — the key of the service layer's warm
/// [`Compiler`](crate::Compiler) cache.
pub fn session_fingerprint(
    target: &TargetSpec,
    mapping: &MappingOptions,
    scheduling: &SchedulingOptions,
    baseline: bool,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(target_fingerprint(target));
    h.write_u64(mapping_fingerprint(mapping));
    match scheduling.max_batch_moves {
        None => h.write_u64(0),
        Some(n) => h.write_u64(1).write_u64(n as u64),
    };
    h.write_u64(u64::from(baseline));
    h.finish()
}

/// Structural content hash of a circuit: qubit count plus the exact
/// operation sequence (gate kind, rotation angles by bit pattern,
/// operand order).
///
/// Two QASM sources that parse to the same operation stream hash
/// equal, so whitespace/formatting differences still hit the artifact
/// cache; any gate, angle or operand change misses it.
pub fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(u64::from(circuit.num_qubits()));
    h.write_u64(circuit.len() as u64);
    for op in circuit.iter() {
        let (tag, params): (u64, &[f64]) = match op.kind() {
            GateKind::H => (1, &[]),
            GateKind::X => (2, &[]),
            GateKind::Y => (3, &[]),
            GateKind::Z => (4, &[]),
            GateKind::Rx(t) => (5, std::slice::from_ref(t)),
            GateKind::Ry(t) => (6, std::slice::from_ref(t)),
            GateKind::Rz(t) => (7, std::slice::from_ref(t)),
            GateKind::U3(a, b, c) => {
                h.write_u64(8);
                h.write_f64(*a).write_f64(*b).write_f64(*c);
                for q in op.qubits() {
                    h.write_u64(q.index() as u64);
                }
                continue;
            }
            GateKind::Cz => (9, &[]),
            GateKind::Cp(t) => (10, std::slice::from_ref(t)),
            GateKind::Mcz => (11, &[]),
            GateKind::Mcx => (12, &[]),
            GateKind::Swap => (13, &[]),
            // `GateKind` is non-exhaustive within the workspace only;
            // a new kind must be given a stable tag here first (the
            // pinned-hash tests catch any accidental reuse).
            #[allow(unreachable_patterns)]
            other => unreachable!("unhandled gate kind {other:?}"),
        };
        h.write_u64(tag);
        for p in params {
            h.write_f64(*p);
        }
        h.write_u64(op.qubits().len() as u64);
        for q in op.qubits() {
            h.write_u64(q.index() as u64);
        }
    }
    h.finish()
}

/// The artifact-cache key of a whole request: session fingerprint plus
/// every circuit slot (name + structural circuit hash when the QASM
/// parses, name + raw source otherwise).
///
/// Deliberately **excluded**: `threads` (worker fan-out does not change
/// response content — batch results are input-ordered and artifacts
/// are thread-count independent), `request_id` (an echo field; the
/// service splices it into the cached document per response) and
/// `deadline_ms` (a wall-clock budget: a compile that finishes within
/// it produces bytes identical to one without it, and one that does
/// not never reaches the cache).
pub fn request_cache_key(request: &CompileRequest) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(session_fingerprint(
        &request.target,
        &request.mapping,
        &request.scheduling,
        request.baseline,
    ));
    h.write_u64(request.circuits.len() as u64);
    for job in &request.circuits {
        h.write_str(&job.name);
        match na_circuit::qasm::from_qasm(&job.qasm) {
            Ok(circuit) => h.write_u64(1).write_u64(circuit_fingerprint(&circuit)),
            // Unparseable sources fail deterministically at compile
            // time, so their (deterministic) error responses are keyed
            // by the raw text.
            Err(_) => h.write_u64(2).write_str(&job.qasm),
        };
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::HardwareParams;
    use na_circuit::generators::Qft;
    use na_schedule::export::json_escape;

    const BELL: &str =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";

    fn bell_request() -> CompileRequest {
        let doc = format!(
            "{{\"version\": 1, \"target\": {{\"preset\": \"mixed\", \"lattice_side\": 6, \
             \"num_atoms\": 16}}, \"circuits\": [{{\"name\": \"bell\", \"qasm\": \"{}\"}}]}}",
            json_escape(BELL)
        );
        CompileRequest::from_json(&doc).expect("parses")
    }

    /// The classic FNV-1a test vectors: the empty input hashes to the
    /// offset basis, and the canonical one-byte vectors match.
    #[test]
    fn fnv_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn typed_writes_are_delimited() {
        let mut ab_c = Fnv1a::new();
        ab_c.write_str("ab").write_str("c");
        let mut a_bc = Fnv1a::new();
        a_bc.write_str("a").write_str("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
        // -0.0 and 0.0 canonicalize to the same hash.
        let mut neg = Fnv1a::new();
        neg.write_f64(-0.0);
        let mut pos = Fnv1a::new();
        pos.write_f64(0.0);
        assert_eq!(neg.finish(), pos.finish());
    }

    /// Pinned hashes: these constants are the on-the-wire cache-key
    /// contract. If a canonical serialization changes shape, this test
    /// fails — bump the constants *knowingly* (stale artifact caches
    /// self-heal as misses, but a silent drift would split the key
    /// space).
    #[test]
    fn pinned_fingerprints_do_not_drift() {
        let req = bell_request();
        assert_eq!(target_fingerprint(&req.target), 0xba29_8300_9cb3_7a69);
        assert_eq!(mapping_fingerprint(&req.mapping), 0xdb04_7e05_2fd8_893e);
        assert_eq!(
            session_fingerprint(&req.target, &req.mapping, &req.scheduling, req.baseline),
            0x30d2_4322_e324_1e14
        );
        assert_eq!(request_cache_key(&req), 0x8f64_acc6_5167_f98d);
        assert_eq!(
            circuit_fingerprint(&Qft::new(4).build()),
            0x7491_dad0_b99a_c533
        );
    }

    #[test]
    fn structural_circuit_hash_ignores_formatting_only() {
        let spaced = BELL.replace('\n', "\n\n  ");
        let a = na_circuit::qasm::from_qasm(BELL).expect("parses");
        let b = na_circuit::qasm::from_qasm(&spaced).expect("parses");
        assert_eq!(circuit_fingerprint(&a), circuit_fingerprint(&b));
        // A real change (extra gate) moves the hash.
        let mut c = a.clone();
        c.h(0);
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&c));
    }

    #[test]
    fn cache_key_tracks_content_not_transport_fields() {
        let base = bell_request();
        let key = request_cache_key(&base);

        // threads, request_id and deadline_ms are transport concerns:
        // same key.
        let mut threaded = base.clone();
        threaded.threads = 4;
        threaded.request_id = Some("r-1".to_owned());
        threaded.deadline_ms = Some(5000);
        assert_eq!(request_cache_key(&threaded), key);

        // Whitespace-only QASM difference: same key.
        let mut spaced = base.clone();
        spaced.circuits[0].qasm = BELL.replace('\n', "\n\n");
        assert_eq!(request_cache_key(&spaced), key);

        // Renaming the circuit slot changes the response document, so
        // it must change the key.
        let mut renamed = base.clone();
        renamed.circuits[0].name = "other".to_owned();
        assert_ne!(request_cache_key(&renamed), key);

        // Different mapping options change the artifact: new key.
        let mut remapped = base.clone();
        remapped.mapping = MappingOptions::gate_only();
        assert_ne!(request_cache_key(&remapped), key);

        // Disabling the baseline changes the document too.
        let mut no_baseline = base;
        no_baseline.baseline = false;
        assert_ne!(request_cache_key(&no_baseline), key);
    }

    #[test]
    fn target_fingerprint_tracks_physics_and_topology() {
        let req = bell_request();
        let base = target_fingerprint(&req.target);
        let mut params = HardwareParams::mixed()
            .to_builder()
            .lattice(6, 3.0)
            .num_atoms(16)
            .build()
            .expect("valid");
        params.f_cz = 0.9;
        let spec = na_arch::Target::spec(&params);
        assert_ne!(target_fingerprint(&spec), base);
    }
}
