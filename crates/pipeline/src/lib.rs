//! The fused compile pipeline: map → schedule → lower → metrics as one
//! pass, one artifact, and a multi-threaded batch front-end.
//!
//! The paper's flow is four conceptual stages: hybrid mapping
//! (`na-mapper`), restriction-aware ASAP scheduling with AOD batching
//! (`na-schedule`), lowering of every AOD batch to native instructions
//! (`na_schedule::aod_program`), and the Eq. (1) fidelity metrics. The
//! [`Pipeline`] runs them as **one fused pass**: the mapper streams each
//! [`MappedOp`](na_mapper::MappedOp) through an
//! [`OpSink`](na_mapper::OpSink) into `na-schedule`'s
//! [`IncrementalScheduler`], so batching, restriction checks and metric
//! accumulation happen while routing is still in progress — no second
//! walk over the op stream on the hot path. Every lowered AOD batch is
//! re-validated against the replayed lattice occupancy and violations
//! surface as a typed [`PipelineError`] instead of silent success.
//!
//! ```text
//! circuit ──route──▶ OpSink ──┬──▶ MappedCircuit      (artifact)
//!                             └──▶ IncrementalScheduler
//!                                   │ restriction checks, AOD merging,
//!                                   │ Eq. (1) accumulators, op-by-op
//!                                   ▼
//!                        Schedule + ScheduleMetrics
//!                                   │ lower_batch + validate_program
//!                                   ▼
//!                            CompiledProgram
//! ```
//!
//! # Example
//!
//! ```
//! use na_arch::HardwareParams;
//! use na_circuit::generators::Qft;
//! use na_mapper::MapperConfig;
//! use na_pipeline::Pipeline;
//!
//! let params = HardwareParams::mixed()
//!     .to_builder()
//!     .lattice(6, 3.0)
//!     .num_atoms(16)
//!     .build()?;
//! let pipeline = Pipeline::new(params, MapperConfig::hybrid(1.0))?;
//! let program = pipeline.compile(&Qft::new(10).build())?;
//! assert_eq!(program.aod_programs.len(), program.schedule.batch_count());
//! assert!(program.metrics.makespan_us > 0.0);
//! println!("{}", program.to_json());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod error;
pub mod program;

pub use error::PipelineError;
pub use program::{CompileStats, CompiledProgram};

use std::time::Instant;

use na_arch::{HardwareParams, Lattice, Site};
use na_circuit::Circuit;
use na_mapper::{HybridMapper, MappedCircuit, MappedOp, MapperConfig, OpSink};
use na_schedule::aod_program::{lower_batch, validate_program};
use na_schedule::{
    AodProgram, ComparisonReport, IncrementalScheduler, Schedule, ScheduleMetrics, ScheduledItem,
    Scheduler,
};

/// The compile pipeline: one fused map→schedule→lower→metrics pass per
/// circuit, plus [`Pipeline::compile_batch`] for multi-threaded batch
/// throughput.
///
/// Construction validates the hardware once; the pipeline is then
/// immutable and `Sync`, so one instance serves any number of threads.
#[derive(Debug, Clone)]
pub struct Pipeline {
    mapper: HybridMapper,
    scheduler: Scheduler,
    with_baseline: bool,
}

/// Ops per scheduler block of the fused sink. Scheduling a block mid-map
/// evicts the router's hot caches, so blocks are large: circuits below
/// this size schedule in one drain right after routing (while the stream
/// is still warm), and only multi-hundred-µs compiles pay the (then
/// amortized) interleaving cost. Bounds the scheduling backlog on huge
/// circuits.
const FUSE_BLOCK: usize = 8192;

/// The fused sink: retains the op stream as the [`MappedCircuit`]
/// artifact and feeds it to the incremental scheduler in cache-warm
/// blocks — one pass, no clone, no cold re-walk. The retained stream
/// doubles as the block buffer (`scheduled` is the cursor of ops already
/// consumed by the scheduler).
struct FusedSink {
    mapped: MappedCircuit,
    scheduler: IncrementalScheduler,
    scheduled: usize,
}

impl FusedSink {
    fn drain_block(&mut self) {
        for op in &self.mapped.ops[self.scheduled..] {
            self.scheduler.push(op);
        }
        self.scheduled = self.mapped.ops.len();
    }
}

impl OpSink for FusedSink {
    fn accept(&mut self, op: MappedOp) {
        self.mapped.ops.push(op);
        if self.mapped.ops.len() - self.scheduled >= FUSE_BLOCK {
            self.drain_block();
        }
    }
}

impl Pipeline {
    /// Creates a pipeline after validating the hardware description.
    ///
    /// # Errors
    ///
    /// Propagates hardware validation failures as
    /// [`PipelineError::Map`].
    pub fn new(params: HardwareParams, config: MapperConfig) -> Result<Self, PipelineError> {
        let mapper = HybridMapper::new(params.clone(), config)?;
        let scheduler = Scheduler::new(params);
        Ok(Pipeline {
            mapper,
            scheduler,
            with_baseline: true,
        })
    }

    /// Disables (or re-enables) the ideal-baseline comparison.
    ///
    /// The baseline schedule of the *original* circuit is what the
    /// Table 1a `Δ` quantities are measured against; skipping it saves
    /// one (cheap, restriction-free) scheduling pass when only the
    /// mapped artifact matters.
    pub fn with_baseline(mut self, enabled: bool) -> Self {
        self.with_baseline = enabled;
        self
    }

    /// The hardware parameters.
    pub fn params(&self) -> &HardwareParams {
        self.mapper.params()
    }

    /// The mapper configuration.
    pub fn config(&self) -> &MapperConfig {
        self.mapper.config()
    }

    /// Compiles one circuit: fused map+schedule pass, AOD lowering with
    /// validation, Eq. (1) metrics, optional baseline comparison.
    ///
    /// # Errors
    ///
    /// * [`PipelineError::Map`] — mapping failed.
    /// * [`PipelineError::InvalidAodBatch`] — a lowered AOD batch
    ///   violated the shuttling protocol (library bug guard; surfaced
    ///   instead of silently accepted).
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, PipelineError> {
        let total_start = Instant::now();
        let params = self.mapper.params();
        let config = self.mapper.config();

        // (1)+(2) Fused map+schedule: one pass over the op stream.
        let mut sink = FusedSink {
            mapped: MappedCircuit::with_layout(
                circuit.num_qubits(),
                params.num_atoms,
                config.initial_layout,
            ),
            scheduler: IncrementalScheduler::new(
                params,
                circuit.num_qubits(),
                params.num_atoms,
                config.initial_layout,
            ),
            scheduled: 0,
        };
        let run = self.mapper.map_into(circuit, &mut sink)?;
        sink.drain_block();
        let FusedSink {
            mapped, scheduler, ..
        } = sink;
        let (schedule, metrics) = scheduler.finish_with_metrics();

        // (3) Lower every AOD batch and validate against the replayed
        // occupancy.
        let aod_programs = self.lower_and_validate(&schedule)?;

        // (4) Optional ideal-baseline comparison (Table 1a).
        let comparison = if self.with_baseline {
            let original = ScheduleMetrics::of(&self.scheduler.schedule_original(circuit), params);
            Some(ComparisonReport::between(&original, &metrics))
        } else {
            None
        };

        let stats = CompileStats {
            map: run.stats,
            map_runtime: run.runtime,
            total_runtime: total_start.elapsed(),
            aod_batches: aod_programs.len(),
            aod_moves: aod_programs.iter().map(|p| p.moves.len()).sum(),
        };
        Ok(CompiledProgram {
            mapped,
            schedule,
            aod_programs,
            metrics,
            comparison,
            stats,
        })
    }

    /// Lowers each AOD batch of `schedule` to native instructions and
    /// validates it against the lattice occupancy at its position in the
    /// stream.
    fn lower_and_validate(&self, schedule: &Schedule) -> Result<Vec<AodProgram>, PipelineError> {
        let params = self.mapper.params();
        let lattice = Lattice::new(params.lattice_side);
        let mut site_of_atom: Vec<Site> = self
            .mapper
            .config()
            .initial_layout
            .place(&lattice, params.num_atoms);
        let mut programs = Vec::new();
        for item in &schedule.items {
            if let ScheduledItem::AodBatch {
                moves, start_us, ..
            } = item
            {
                let program = lower_batch(moves);
                validate_program(&program, &lattice, &site_of_atom).map_err(|source| {
                    PipelineError::InvalidAodBatch {
                        batch_index: programs.len(),
                        start_us: *start_us,
                        source,
                    }
                })?;
                for m in moves {
                    site_of_atom[m.atom.index()] = m.to;
                }
                programs.push(program);
            }
        }
        Ok(programs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_circuit::generators::{GraphState, Qft};

    fn small(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
        preset
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .build()
            .expect("valid")
    }

    #[test]
    fn compile_produces_consistent_artifact() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let pipeline = Pipeline::new(p.clone(), MapperConfig::hybrid(1.0)).unwrap();
        let c = GraphState::new(18).edges(26).seed(3).build();
        let program = pipeline.compile(&c).unwrap();

        // The mapped stream verifies against the physics model.
        na_mapper::verify_mapping(&c, &program.mapped, &p).unwrap();
        // Fused schedule identical to re-walking the retained stream.
        let two_pass = Scheduler::new(p.clone()).schedule_mapped(&program.mapped);
        assert_eq!(program.schedule, two_pass);
        // Metrics bit-identical to the post-hoc computation.
        assert_eq!(program.metrics, ScheduleMetrics::of(&program.schedule, &p));
        // One validated AOD program per scheduled batch.
        assert_eq!(program.aod_programs.len(), program.schedule.batch_count());
        assert_eq!(program.stats.aod_batches, program.aod_programs.len());
        assert_eq!(program.stats.aod_moves, program.schedule.move_count());
        // Baseline comparison present by default.
        assert!(program.comparison.is_some());
        assert!(program.delta_f().unwrap() >= -1e-9);
    }

    #[test]
    fn baseline_can_be_disabled() {
        let p = small(HardwareParams::mixed(), 5, 12);
        let pipeline = Pipeline::new(p, MapperConfig::default())
            .unwrap()
            .with_baseline(false);
        let program = pipeline.compile(&Qft::new(8).build()).unwrap();
        assert!(program.comparison.is_none());
        assert!(program.delta_f().is_none());
    }

    #[test]
    fn map_errors_propagate_typed() {
        let p = small(HardwareParams::mixed(), 4, 8);
        let pipeline = Pipeline::new(p, MapperConfig::default()).unwrap();
        let too_wide = Circuit::new(9);
        assert!(matches!(
            pipeline.compile(&too_wide),
            Err(PipelineError::Map(
                na_mapper::MapError::CircuitTooWide { .. }
            ))
        ));
    }

    #[test]
    fn json_document_is_one_object() {
        let p = small(HardwareParams::shuttling(), 6, 20);
        let pipeline = Pipeline::new(p, MapperConfig::shuttle_only()).unwrap();
        let program = pipeline.compile(&Qft::new(10).build()).unwrap();
        let json = program.to_json();
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        for key in [
            "\"stats\"",
            "\"metrics\"",
            "\"comparison\"",
            "\"mapped\"",
            "\"schedule\"",
            "\"aod_programs\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        // Shuttle-only mapping must have lowered at least one program.
        assert!(!program.aod_programs.is_empty());
        assert!(json.contains("\"op\":\"translate\""));
    }
}
