//! The compile front-end: target-bound [`Compiler`] sessions running the
//! fused map → schedule → lower → metrics pass, a multi-threaded batch
//! interface, and a versioned JSON job layer.
//!
//! The paper's flow is four conceptual stages: hybrid mapping
//! (`na-mapper`), restriction-aware ASAP scheduling with AOD batching
//! (`na-schedule`), lowering of every AOD batch to native instructions
//! (`na_schedule::aod_program`), and the Eq. (1) fidelity metrics. A
//! [`Compiler`] runs them as **one fused pass**: the mapper streams each
//! [`MappedOp`](na_mapper::MappedOp) through an
//! [`OpSink`](na_mapper::OpSink) into `na-schedule`'s
//! [`IncrementalScheduler`](na_schedule::IncrementalScheduler), so
//! batching, restriction checks and metric accumulation happen while
//! routing is still in progress — no second walk over the op stream on
//! the hot path. Every lowered AOD batch is re-validated against the
//! replayed lattice occupancy and violations surface as a typed
//! [`CompileError`] instead of silent success.
//!
//! ```text
//! circuit ──route──▶ OpSink ──┬──▶ MappedCircuit      (artifact)
//!                             └──▶ IncrementalScheduler
//!                                   │ restriction checks, AOD merging,
//!                                   │ Eq. (1) accumulators, op-by-op
//!                                   ▼
//!                        Schedule + ScheduleMetrics
//!                                   │ lower_batch + validate_program
//!                                   ▼
//!                            CompiledProgram
//! ```
//!
//! # The session API
//!
//! A session binds one backend [`Target`](na_arch::Target) — the
//! paper's square-lattice machine ([`na_arch::HardwareParams`]), a
//! zoned storage/interaction layout ([`na_arch::ZonedTarget`]), or any
//! custom implementation — and validates every option at build time:
//!
//! ```
//! use na_arch::HardwareParams;
//! use na_circuit::generators::Qft;
//! use na_pipeline::{Compiler, MappingOptions};
//!
//! let target = HardwareParams::mixed()
//!     .to_builder()
//!     .lattice(6, 3.0)
//!     .num_atoms(16)
//!     .build()?;
//! let compiler = Compiler::for_target(&target)
//!     .mapping(MappingOptions::hybrid(1.0))
//!     .baseline(true)
//!     .build()?;
//! let program = compiler.compile(&Qft::new(10).build())?;
//! assert_eq!(program.aod_programs.len(), program.schedule.batch_count());
//! assert!(program.metrics.makespan_us > 0.0);
//! println!("{}", program.to_json());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! A service front-end can drive the same session from one JSON
//! document in and one out — see [`job`].
//!
//! The pre-redesign entry point [`Pipeline::new`] remains as a thin
//! deprecated shim over [`Compiler`]; it produces identical artifacts
//! on the square-lattice presets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod compiler;
pub mod error;
pub mod fingerprint;
pub mod job;
pub mod program;

pub use compiler::{CompileScratch, Compiler, CompilerBuilder, MappingOptions, SchedulingOptions};
pub use error::{CompileError, PipelineError};
pub use job::{
    error_to_json, handle_json, handle_json_document, with_request_id, CompileRequest,
    CompileResponse, JobCircuit, JobOutcome, RequestError, TargetResolver,
};
pub use program::{CompileStats, CompiledProgram};

use na_arch::HardwareParams;
use na_circuit::Circuit;
use na_mapper::MapperConfig;

/// The legacy compile pipeline: a thin shim over [`Compiler`] bound to
/// the full square lattice of its [`HardwareParams`].
///
/// Kept so existing callers and tests compile unchanged; new code
/// should use [`Compiler::for_target`], which supports arbitrary
/// backend targets and returns typed errors for every construction
/// failure.
#[derive(Debug, Clone)]
pub struct Pipeline {
    inner: Compiler,
}

impl Pipeline {
    /// Creates a pipeline after validating the hardware description.
    ///
    /// # Errors
    ///
    /// Propagates hardware validation failures as
    /// [`PipelineError::Map`] and configuration failures as
    /// [`PipelineError::Config`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Compiler::for_target(&params).mapping(MappingOptions::custom(config)).build()`"
    )]
    pub fn new(params: HardwareParams, config: MapperConfig) -> Result<Self, PipelineError> {
        let inner = Compiler::for_target(&params)
            .mapping(MappingOptions::custom(config))
            .build()
            .map_err(error::to_legacy)?;
        Ok(Pipeline { inner })
    }

    /// Disables (or re-enables) the ideal-baseline comparison.
    ///
    /// The baseline schedule of the *original* circuit is what the
    /// Table 1a `Δ` quantities are measured against; skipping it saves
    /// one (cheap, restriction-free) scheduling pass when only the
    /// mapped artifact matters.
    pub fn with_baseline(self, enabled: bool) -> Self {
        // Rebuild through the compiler builder to keep one source of
        // truth for session state.
        let inner = Compiler::for_target(self.inner.target())
            .mapping(MappingOptions::custom(self.inner.config().clone()))
            .baseline(enabled)
            .build()
            .expect("already-validated session stays valid");
        Pipeline { inner }
    }

    /// The hardware parameters.
    pub fn params(&self) -> &HardwareParams {
        self.inner.params()
    }

    /// The mapper configuration.
    pub fn config(&self) -> &MapperConfig {
        self.inner.config()
    }

    /// The underlying [`Compiler`] session.
    pub fn compiler(&self) -> &Compiler {
        &self.inner
    }

    /// Compiles one circuit: fused map+schedule pass, AOD lowering with
    /// validation, Eq. (1) metrics, optional baseline comparison.
    ///
    /// # Errors
    ///
    /// * [`PipelineError::Map`] — mapping failed.
    /// * [`PipelineError::InvalidAodBatch`] — a lowered AOD batch
    ///   violated the shuttling protocol (library bug guard; surfaced
    ///   instead of silently accepted).
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, PipelineError> {
        self.inner.compile(circuit).map_err(error::to_legacy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_circuit::generators::{GraphState, Qft};
    use na_mapper::MapError;
    use na_schedule::{ScheduleMetrics, Scheduler};

    fn small(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
        preset
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .build()
            .expect("valid")
    }

    #[allow(deprecated)]
    fn legacy(params: HardwareParams, config: MapperConfig) -> Pipeline {
        Pipeline::new(params, config).expect("valid")
    }

    #[test]
    fn compile_produces_consistent_artifact() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let pipeline = legacy(
            p.clone(),
            MapperConfig::try_hybrid(1.0).expect("valid alpha"),
        );
        let c = GraphState::new(18).edges(26).seed(3).build();
        let program = pipeline.compile(&c).unwrap();

        // The mapped stream verifies against the physics model.
        na_mapper::verify_mapping(&c, &program.mapped, &p).unwrap();
        // Fused schedule identical to re-walking the retained stream.
        let two_pass = Scheduler::new(p.clone()).schedule_mapped(&program.mapped);
        assert_eq!(program.schedule, two_pass);
        // Metrics bit-identical to the post-hoc computation.
        assert_eq!(program.metrics, ScheduleMetrics::of(&program.schedule, &p));
        // One validated AOD program per scheduled batch.
        assert_eq!(program.aod_programs.len(), program.schedule.batch_count());
        assert_eq!(program.stats.aod_batches, program.aod_programs.len());
        assert_eq!(program.stats.aod_moves, program.schedule.move_count());
        // Baseline comparison present by default.
        assert!(program.comparison.is_some());
        assert!(program.delta_f().unwrap() >= -1e-9);
    }

    #[test]
    fn baseline_can_be_disabled() {
        let p = small(HardwareParams::mixed(), 5, 12);
        let pipeline = legacy(p, MapperConfig::default()).with_baseline(false);
        let program = pipeline.compile(&Qft::new(8).build()).unwrap();
        assert!(program.comparison.is_none());
        assert!(program.delta_f().is_none());
    }

    #[test]
    fn map_errors_propagate_typed() {
        let p = small(HardwareParams::mixed(), 4, 8);
        let pipeline = legacy(p, MapperConfig::default());
        let too_wide = Circuit::new(9);
        assert!(matches!(
            pipeline.compile(&too_wide),
            Err(PipelineError::Map(MapError::CircuitTooWide { .. }))
        ));
    }

    #[test]
    fn json_document_is_one_object() {
        let p = small(HardwareParams::shuttling(), 6, 20);
        let pipeline = legacy(p, MapperConfig::shuttle_only());
        let program = pipeline.compile(&Qft::new(10).build()).unwrap();
        let json = program.to_json();
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        for key in [
            "\"stats\"",
            "\"metrics\"",
            "\"comparison\"",
            "\"mapped\"",
            "\"schedule\"",
            "\"aod_programs\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        // Shuttle-only mapping must have lowered at least one program.
        assert!(!program.aod_programs.is_empty());
        assert!(json.contains("\"op\":\"translate\""));
    }

    /// The legacy shim and the builder session produce identical
    /// artifacts on the square presets (runtime stamps aside, which are
    /// wall-clock measurements).
    #[test]
    fn legacy_shim_matches_builder_session() {
        let p = small(HardwareParams::mixed(), 6, 25);
        let c = Qft::new(14).build();
        let via_shim = legacy(p.clone(), MapperConfig::default())
            .compile(&c)
            .unwrap();
        let via_builder = Compiler::for_target(&p)
            .mapping(MappingOptions::custom(MapperConfig::default()))
            .build()
            .unwrap()
            .compile(&c)
            .unwrap();
        assert_eq!(via_shim.mapped, via_builder.mapped);
        assert_eq!(via_shim.schedule, via_builder.schedule);
        assert_eq!(via_shim.metrics, via_builder.metrics);
        assert_eq!(via_shim.aod_programs, via_builder.aod_programs);
        assert_eq!(via_shim.comparison, via_builder.comparison);
        // Byte-identical JSON once the wall-clock stamps are removed.
        let normalize = |mut p: CompiledProgram| {
            p.stats.map_runtime = std::time::Duration::ZERO;
            p.stats.total_runtime = std::time::Duration::ZERO;
            p.stats.map_phase = std::time::Duration::ZERO;
            p.stats.schedule_phase = std::time::Duration::ZERO;
            p.stats.lower_phase = std::time::Duration::ZERO;
            p.to_json()
        };
        assert_eq!(normalize(via_shim), normalize(via_builder));
    }

    #[test]
    fn invalid_params_surface_like_before_the_redesign() {
        let mut p = small(HardwareParams::mixed(), 6, 25);
        p.r_int = -1.0;
        #[allow(deprecated)]
        let err = Pipeline::new(p, MapperConfig::default()).unwrap_err();
        assert!(matches!(err, PipelineError::Map(MapError::Arch(_))));
    }
}
