//! The `Compiler` builder/session API: one compiler per backend
//! [`Target`], configured through validating option sets instead of
//! panicking constructors.
//!
//! ```text
//! Compiler::for_target(&target)      // any na_arch::Target
//!     .mapping(MappingOptions::hybrid(1.0))
//!     .scheduling(SchedulingOptions::default())
//!     .baseline(true)
//!     .build()?                      // -> Result<Compiler, CompileError>
//!     .compile(&circuit)?            // -> Result<CompiledProgram, CompileError>
//! ```
//!
//! All construction-time panics of the legacy API (`assert!` on a
//! non-finite α, layout placement aborting on an undersized lattice)
//! become typed [`CompileError`] cases here; the deprecated
//! [`Pipeline::new`](crate::Pipeline::new) shim delegates to this
//! builder.

use std::time::{Duration, Instant};

use na_arch::{AodConstraints, HardwareParams, Site, Target, TargetSpec};
use na_circuit::Circuit;
use na_mapper::{
    CancelReason, CancelToken, ConfigError, HybridMapper, InitialLayout, MapError, MapScratch,
    MappedCircuit, MappedOp, MapperConfig, OpSink, RoundMode,
};
use na_schedule::aod_program::{lower_batch, validate_program_with};
use na_schedule::{
    ComparisonReport, IncrementalScheduler, Schedule, ScheduleError, ScheduleMetrics,
    ScheduledItem, Scheduler,
};

use crate::error::CompileError;
use crate::program::{CompileStats, CompiledProgram};

/// Mapping options of a [`Compiler`] session: a deferred-validation
/// mirror of [`MapperConfig`] whose invalid states surface as
/// [`CompileError::Config`] from [`CompilerBuilder::build`] instead of
/// panicking at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingOptions {
    pub(crate) mode: MappingMode,
    pub(crate) initial_layout: Option<InitialLayout>,
    pub(crate) round_mode: Option<RoundMode>,
    pub(crate) eval_threads: Option<usize>,
}

/// The capability mode of a mapping session.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MappingMode {
    /// Hybrid routing with decision ratio `α = α_g/α_s` (validated at
    /// build time).
    Hybrid {
        /// The (unvalidated) ratio.
        alpha_ratio: f64,
    },
    /// Gate-based-only routing (paper mode (B)).
    GateOnly,
    /// Shuttling-only routing (paper mode (A)).
    ShuttleOnly,
    /// A fully explicit configuration (validated at build time).
    Custom(MapperConfig),
}

impl MappingOptions {
    /// Hybrid mode with decision ratio `α = α_g/α_s`. The ratio is
    /// validated by [`CompilerBuilder::build`], not here.
    pub fn hybrid(alpha_ratio: f64) -> Self {
        MappingOptions {
            mode: MappingMode::Hybrid { alpha_ratio },
            initial_layout: None,
            round_mode: None,
            eval_threads: None,
        }
    }

    /// Gate-based-only mode (`α_s = 0`).
    pub fn gate_only() -> Self {
        MappingOptions {
            mode: MappingMode::GateOnly,
            initial_layout: None,
            round_mode: None,
            eval_threads: None,
        }
    }

    /// Shuttling-only mode (`α_g = 0`).
    pub fn shuttle_only() -> Self {
        MappingOptions {
            mode: MappingMode::ShuttleOnly,
            initial_layout: None,
            round_mode: None,
            eval_threads: None,
        }
    }

    /// An explicit [`MapperConfig`] (validated at build time).
    pub fn custom(config: MapperConfig) -> Self {
        MappingOptions {
            mode: MappingMode::Custom(config),
            initial_layout: None,
            round_mode: None,
            eval_threads: None,
        }
    }

    /// Overrides the initial atom placement.
    pub fn with_initial_layout(mut self, layout: InitialLayout) -> Self {
        self.initial_layout = Some(layout);
        self
    }

    /// Overrides the routing round mode (single- vs multi-commit
    /// rounds, see [`RoundMode`]).
    pub fn with_round_mode(mut self, mode: RoundMode) -> Self {
        self.round_mode = Some(mode);
        self
    }

    /// Overrides the speculative evaluation thread count (`1` =
    /// evaluate on the caller thread; validated at build time).
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = Some(threads);
        self
    }

    /// Resolves into a validated [`MapperConfig`].
    pub(crate) fn resolve(&self) -> Result<MapperConfig, ConfigError> {
        let mut config = match &self.mode {
            MappingMode::Hybrid { alpha_ratio } => MapperConfig::try_hybrid(*alpha_ratio)?,
            MappingMode::GateOnly => MapperConfig::gate_only(),
            MappingMode::ShuttleOnly => MapperConfig::shuttle_only(),
            MappingMode::Custom(config) => {
                config.validate()?;
                config.clone()
            }
        };
        if let Some(layout) = self.initial_layout {
            config.initial_layout = layout;
        }
        if let Some(mode) = self.round_mode {
            config.round_mode = mode;
        }
        if let Some(threads) = self.eval_threads {
            config = config.with_eval_threads(threads);
            config.validate()?;
        }
        Ok(config)
    }
}

impl Default for MappingOptions {
    /// Hybrid mode with `α = 1` (the paper's default).
    fn default() -> Self {
        MappingOptions::hybrid(1.0)
    }
}

/// Scheduling options of a [`Compiler`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulingOptions {
    pub(crate) max_batch_moves: Option<usize>,
}

impl SchedulingOptions {
    /// Caps AOD transactions at `n` moves each, on top of (and at most
    /// as permissive as) the target's own
    /// [`AodConstraints`]. `n = 0` is rejected at build time.
    pub fn max_batch_moves(mut self, n: usize) -> Self {
        self.max_batch_moves = Some(n);
        self
    }

    /// Resolves against the target's constraint set: the stricter cap
    /// wins.
    pub(crate) fn resolve(&self, target: AodConstraints) -> Result<AodConstraints, ConfigError> {
        let merged = match (self.max_batch_moves, target.max_batch_moves) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        // A zero cap forbids every move regardless of whether the
        // options or the target description carried it.
        if merged == Some(0) {
            return Err(ConfigError::EmptyAodBatchCap);
        }
        Ok(AodConstraints {
            max_batch_moves: merged,
        })
    }
}

/// Builder for a [`Compiler`] session. Created by
/// [`Compiler::for_target`]; every option is validated in
/// [`CompilerBuilder::build`].
#[derive(Debug)]
pub struct CompilerBuilder {
    target: Result<TargetSpec, na_arch::ArchError>,
    mapping: MappingOptions,
    scheduling: SchedulingOptions,
    baseline: bool,
}

impl CompilerBuilder {
    /// Sets the mapping options (default: hybrid, `α = 1`).
    pub fn mapping(mut self, options: MappingOptions) -> Self {
        self.mapping = options;
        self
    }

    /// Sets the scheduling options (default: the target's AOD
    /// constraints unchanged).
    pub fn scheduling(mut self, options: SchedulingOptions) -> Self {
        self.scheduling = options;
        self
    }

    /// Enables or disables the ideal-baseline comparison (default: on).
    ///
    /// The baseline schedule of the *original* circuit is what the
    /// Table 1a `Δ` quantities are measured against; skipping it saves
    /// one (cheap, restriction-free) scheduling pass when only the
    /// mapped artifact matters.
    pub fn baseline(mut self, enabled: bool) -> Self {
        self.baseline = enabled;
        self
    }

    /// Validates everything and builds the session.
    ///
    /// # Errors
    ///
    /// * [`CompileError::Target`] — the target description is invalid
    ///   (bad physics, or more atoms than the topology holds traps).
    /// * [`CompileError::Config`] — invalid mapping/scheduling options
    ///   (non-finite or non-positive α, zero batch cap, shuttling
    ///   requested on a gate-only target).
    pub fn build(self) -> Result<Compiler, CompileError> {
        let target = self.target.map_err(CompileError::Target)?;
        let config = self.mapping.resolve().map_err(CompileError::Config)?;
        let aod = self
            .scheduling
            .resolve(target.aod)
            .map_err(CompileError::Config)?;
        // An undersized topology (fewer traps than atoms + 1) was
        // already rejected in `for_target` as
        // `CompileError::Target(ArchError::TooManyAtoms)` — the typed
        // replacement for the old layout placement abort.
        let mapper = HybridMapper::for_target(&target, config).map_err(|e| match e {
            // Configuration rejections (e.g. shuttling requested on a
            // gate-only target) are Config errors at this layer, per
            // the build() contract; only genuine mapping-layer
            // failures surface as Map.
            na_mapper::MapError::Config(e) => CompileError::Config(e),
            other => CompileError::Map(other),
        })?;
        let scheduler = Scheduler::for_target(&target).with_aod_constraints(aod);
        Ok(Compiler {
            mapper,
            scheduler,
            target,
            with_baseline: self.baseline,
        })
    }
}

/// A compile session bound to one backend target: one fused
/// map→schedule→lower→metrics pass per circuit, plus
/// [`Compiler::compile_batch`] for multi-threaded batch throughput.
///
/// Construction ([`Compiler::for_target`] → [`CompilerBuilder::build`])
/// validates the target and every option once; the session is then
/// immutable and `Sync`, so one instance serves any number of threads.
///
/// # Example
///
/// ```
/// use na_arch::HardwareParams;
/// use na_circuit::generators::Qft;
/// use na_pipeline::{Compiler, MappingOptions};
///
/// let target = HardwareParams::mixed()
///     .to_builder()
///     .lattice(6, 3.0)
///     .num_atoms(16)
///     .build()?;
/// let compiler = Compiler::for_target(&target)
///     .mapping(MappingOptions::hybrid(1.0))
///     .build()?;
/// let program = compiler.compile(&Qft::new(10).build())?;
/// assert_eq!(program.aod_programs.len(), program.schedule.batch_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
/// Session state is deliberately single-sourced: the routing topology
/// lives in the mapper, the effective (merged) AOD constraint set in
/// the scheduler, and `target` only records the resolved description
/// the session was built from.
#[derive(Debug, Clone)]
pub struct Compiler {
    mapper: HybridMapper,
    scheduler: Scheduler,
    target: TargetSpec,
    with_baseline: bool,
}

/// Reusable working memory of one compile thread: the mapper's routing
/// arena (journal, distance-cache pools, dense router tables) plus room
/// for future per-stage buffers.
///
/// [`Compiler::compile`] creates one per call;
/// [`Compiler::compile_with`] lets a caller keep it alive so arenas
/// stay warm across circuits — [`Compiler::compile_batch`] gives each
/// worker thread exactly one. Scratch carries buffer capacity only,
/// never decisions: results are identical either way.
#[derive(Debug, Default)]
pub struct CompileScratch {
    map: MapScratch,
}

impl CompileScratch {
    /// An empty scratch; buffers grow on first use and stay warm.
    pub fn new() -> Self {
        CompileScratch::default()
    }

    /// The mapper scratch (exposed for benchmarks/diagnostics).
    pub fn map(&self) -> &MapScratch {
        &self.map
    }
}

/// Ops per scheduler block of the fused sink. Scheduling a block mid-map
/// evicts the router's hot caches, so blocks are large: circuits below
/// this size schedule in one drain right after routing (while the stream
/// is still warm), and only multi-hundred-µs compiles pay the (then
/// amortized) interleaving cost. Bounds the scheduling backlog on huge
/// circuits.
const FUSE_BLOCK: usize = 8192;

/// The fused sink: retains the op stream as the [`MappedCircuit`]
/// artifact and feeds it to the incremental scheduler in cache-warm
/// blocks — one pass, no clone, no cold re-walk. The retained stream
/// doubles as the block buffer (`scheduled` is the cursor of ops already
/// consumed by the scheduler).
struct FusedSink {
    mapped: MappedCircuit,
    scheduler: IncrementalScheduler,
    scheduled: usize,
    /// Wall-clock spent inside scheduler drains — the scheduling share
    /// of the fused pass, attributed separately from mapping in
    /// [`CompileStats`].
    sched_time: Duration,
}

impl FusedSink {
    fn drain_block(&mut self) {
        if self.scheduled == self.mapped.ops.len() {
            return;
        }
        let block_start = Instant::now();
        for op in &self.mapped.ops[self.scheduled..] {
            self.scheduler.push(op);
        }
        self.scheduled = self.mapped.ops.len();
        self.sched_time += block_start.elapsed();
    }
}

impl OpSink for FusedSink {
    fn accept(&mut self, op: MappedOp) {
        self.mapped.ops.push(op);
        if self.mapped.ops.len() - self.scheduled >= FUSE_BLOCK {
            self.drain_block();
        }
    }
}

impl Compiler {
    /// Starts a compiler session for `target` — any backend description
    /// implementing [`Target`] ([`HardwareParams`] for the paper's
    /// square-lattice machine, [`na_arch::ZonedTarget`] for a zoned
    /// storage/interaction layout, or a pre-resolved [`TargetSpec`]).
    ///
    /// Target validation errors are deferred to
    /// [`CompilerBuilder::build`], so this call never panics on an
    /// invalid description.
    pub fn for_target(target: &dyn Target) -> CompilerBuilder {
        let resolved = target.validate().map(|()| target.spec());
        CompilerBuilder {
            target: resolved,
            mapping: MappingOptions::default(),
            scheduling: SchedulingOptions::default(),
            baseline: true,
        }
    }

    /// The resolved target this session compiles for.
    pub fn target(&self) -> &TargetSpec {
        &self.target
    }

    /// The hardware parameters.
    pub fn params(&self) -> &HardwareParams {
        self.mapper.params()
    }

    /// The resolved mapper configuration.
    pub fn config(&self) -> &MapperConfig {
        self.mapper.config()
    }

    /// Whether the ideal-baseline comparison is computed.
    pub fn baseline_enabled(&self) -> bool {
        self.with_baseline
    }

    /// Compiles one circuit: fused map+schedule pass, AOD lowering with
    /// validation, Eq. (1) metrics, optional baseline comparison.
    ///
    /// # Errors
    ///
    /// * [`CompileError::Map`] — mapping failed.
    /// * [`CompileError::Schedule`] — a lowered AOD batch violated the
    ///   shuttling protocol (library bug guard; surfaced instead of
    ///   silently accepted).
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        self.compile_with(circuit, &mut CompileScratch::new())
    }

    /// [`Compiler::compile`] with caller-provided working memory: the
    /// routing arena stays warm for the next circuit compiled with the
    /// same scratch. This is the per-worker hot path of
    /// [`Compiler::compile_batch`]; results are identical to
    /// [`Compiler::compile`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Compiler::compile`].
    pub fn compile_with(
        &self,
        circuit: &Circuit,
        scratch: &mut CompileScratch,
    ) -> Result<CompiledProgram, CompileError> {
        self.compile_impl(circuit, scratch, None)
    }

    /// [`Compiler::compile_with`] under a cooperative [`CancelToken`]:
    /// the token threads into the mapper round loop, the scheduler's
    /// flush waves and the per-batch lowering loop as cheap checkpoint
    /// polls (a relaxed atomic load each), so multi-second compiles
    /// observe a tripped token within one routing round.
    ///
    /// Polls are pure reads: with an untripped token the artifact is
    /// byte-identical to [`Compiler::compile_with`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Compiler::compile`], plus
    /// [`CompileError::DeadlineExceeded`] when the token's deadline
    /// passes and [`CompileError::Cancelled`] when it is cancelled
    /// explicitly.
    pub fn compile_with_cancel(
        &self,
        circuit: &Circuit,
        scratch: &mut CompileScratch,
        cancel: &CancelToken,
    ) -> Result<CompiledProgram, CompileError> {
        self.compile_impl(circuit, scratch, Some(cancel))
    }

    fn compile_impl(
        &self,
        circuit: &Circuit,
        scratch: &mut CompileScratch,
        cancel: Option<&CancelToken>,
    ) -> Result<CompiledProgram, CompileError> {
        let total_start = Instant::now();
        let params = self.mapper.params();
        let config = self.mapper.config();

        // (1)+(2) Fused map+schedule: one pass over the op stream.
        let mut sink = FusedSink {
            mapped: MappedCircuit::with_layout(
                circuit.num_qubits(),
                params.num_atoms,
                config.initial_layout,
            ),
            scheduler: IncrementalScheduler::with_topology(
                params,
                self.mapper.lattice(),
                self.scheduler.aod_constraints(),
                circuit.num_qubits(),
                params.num_atoms,
                config.initial_layout,
            ),
            scheduled: 0,
            sched_time: Duration::ZERO,
        };
        if let Some(token) = cancel {
            sink.scheduler.set_cancel(token.clone());
        }
        let run = match cancel {
            Some(token) => self
                .mapper
                .map_into_cancel(circuit, &mut sink, &mut scratch.map, token),
            None => self
                .mapper
                .map_into_scratch(circuit, &mut sink, &mut scratch.map),
        }
        .map_err(|e| match e {
            MapError::Cancelled { reason } => cancel_error(reason),
            other => CompileError::Map(other),
        })?;
        // Scheduler drains that ran *inside* the mapping pass count
        // toward the schedule phase, not the map phase.
        let sched_during_map = sink.sched_time;
        sink.drain_block();
        let FusedSink {
            mapped,
            scheduler,
            sched_time,
            ..
        } = sink;
        // A tripped token can latch inside the scheduler between mapper
        // polls, turning later flushes into no-ops — the schedule is
        // then incomplete and must be discarded, never returned.
        if let Some(reason) = scheduler.cancelled() {
            return Err(cancel_error(reason));
        }
        let finish_start = Instant::now();
        let (schedule, metrics) = scheduler.finish_with_metrics();
        let schedule_phase = sched_time + finish_start.elapsed();
        let map_phase = run.runtime.saturating_sub(sched_during_map);

        // (3) Lower every AOD batch and validate against the replayed
        // occupancy, polling the token once per batch.
        let lower_start = Instant::now();
        let aod_programs =
            self.lower_and_validate_cancel(&schedule, cancel)
                .map_err(|e| match e {
                    LowerStop::Schedule(e) => CompileError::Schedule(e),
                    LowerStop::Cancelled(reason) => cancel_error(reason),
                })?;
        let lower_phase = lower_start.elapsed();

        // (4) Optional ideal-baseline comparison (Table 1a), preceded by
        // one last checkpoint — the baseline pass is a full scheduling
        // run of the original circuit.
        if let Some(token) = cancel {
            if let Err(reason) = token.check() {
                return Err(cancel_error(reason));
            }
        }
        let comparison = if self.with_baseline {
            let original = ScheduleMetrics::of(&self.scheduler.schedule_original(circuit), params);
            Some(ComparisonReport::between(&original, &metrics))
        } else {
            None
        };

        let stats = CompileStats {
            map: run.stats,
            map_runtime: run.runtime,
            total_runtime: total_start.elapsed(),
            map_phase,
            schedule_phase,
            lower_phase,
            aod_batches: aod_programs.len(),
            aod_moves: aod_programs.iter().map(|p| p.moves.len()).sum(),
            route_cache: scratch.map.route().distance_cache().snapshot(),
        };
        Ok(CompiledProgram {
            mapped,
            schedule,
            aod_programs,
            metrics,
            comparison,
            stats,
        })
    }

    /// Lowers each AOD batch of `schedule` to native instructions and
    /// validates it against the lattice occupancy at its position in the
    /// stream. Occupancy is replayed as a per-site bitmap updated on
    /// each committed move, so every ghost-spot probe is an O(1) lookup
    /// instead of a scan over all stored atoms. Polls the optional
    /// token once per batch.
    fn lower_and_validate_cancel(
        &self,
        schedule: &Schedule,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<na_schedule::AodProgram>, LowerStop> {
        let params = self.mapper.params();
        let lattice = self.mapper.lattice();
        let site_of_atom: Vec<Site> = self
            .mapper
            .config()
            .initial_layout
            .place(&lattice, params.num_atoms);
        let mut occupied = vec![false; lattice.num_sites()];
        for site in &site_of_atom {
            occupied[lattice.index(*site)] = true;
        }
        let mut programs = Vec::new();
        for item in &schedule.items {
            if let ScheduledItem::AodBatch {
                moves, start_us, ..
            } = item
            {
                if let Some(token) = cancel {
                    if let Err(reason) = token.check() {
                        return Err(LowerStop::Cancelled(reason));
                    }
                }
                let program = lower_batch(moves);
                validate_program_with(&program, &lattice, |site| occupied[lattice.index(site)])
                    .map_err(|source| {
                        LowerStop::Schedule(ScheduleError::InvalidAodBatch {
                            batch_index: programs.len(),
                            start_us: *start_us,
                            source,
                        })
                    })?;
                for m in moves {
                    occupied[lattice.index(m.from)] = false;
                    occupied[lattice.index(m.to)] = true;
                }
                programs.push(program);
            }
        }
        Ok(programs)
    }
}

/// Why the lowering loop stopped early (internal to `compile_impl`).
enum LowerStop {
    Schedule(ScheduleError),
    Cancelled(CancelReason),
}

/// Maps a checkpoint trip to the typed compile error.
fn cancel_error(reason: CancelReason) -> CompileError {
    match reason {
        CancelReason::Explicit => CompileError::Cancelled,
        CancelReason::DeadlineExceeded => CompileError::DeadlineExceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::ZonedTarget;
    use na_circuit::generators::{GraphState, Qft};
    use na_mapper::verify_mapping_on;

    fn small(preset: HardwareParams, side: u32, atoms: u32) -> HardwareParams {
        preset
            .to_builder()
            .lattice(side, 3.0)
            .num_atoms(atoms)
            .build()
            .expect("valid")
    }

    #[test]
    fn builder_rejects_bad_alpha() {
        let t = small(HardwareParams::mixed(), 6, 25);
        for bad in [0.0, -2.0, f64::NAN] {
            let err = Compiler::for_target(&t)
                .mapping(MappingOptions::hybrid(bad))
                .build()
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    CompileError::Config(ConfigError::InvalidAlphaRatio { .. })
                ),
                "alpha {bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn builder_rejects_zero_batch_cap() {
        let t = small(HardwareParams::mixed(), 6, 25);
        let err = Compiler::for_target(&t)
            .scheduling(SchedulingOptions::default().max_batch_moves(0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CompileError::Config(ConfigError::EmptyAodBatchCap)
        ));
        // A zero cap in the *target description* is rejected the same
        // way, not silently clamped.
        let mut spec = na_arch::Target::spec(&t);
        spec.aod = AodConstraints::capped(0);
        assert!(matches!(
            Compiler::for_target(&spec).build().unwrap_err(),
            CompileError::Config(ConfigError::EmptyAodBatchCap)
        ));
    }

    /// The overfull zoned description used by the undersized-target
    /// rejection test: 200 atoms on a 150-trap zoned topology.
    fn overfull_zoned_spec() -> TargetSpec {
        let params = HardwareParams::mixed();
        let lattice = na_arch::Lattice::zoned(params.lattice_side, 2, 1).expect("valid banding");
        TargetSpec::resolve(
            "zoned2+1/test".into(),
            params,
            lattice,
            AodConstraints::default(),
            na_arch::NativeGateSet::default(),
        )
    }

    #[test]
    fn builder_rejects_undersized_target() {
        // Rejected with a typed error, not a placement abort.
        let err = Compiler::for_target(&overfull_zoned_spec())
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            CompileError::Target(na_arch::ArchError::TooManyAtoms { .. })
        ));
    }

    #[test]
    fn compiles_on_square_and_zoned_targets() {
        let c = GraphState::new(14).edges(18).seed(3).build();
        // Square.
        let square = small(HardwareParams::mixed(), 6, 25);
        let program = Compiler::for_target(&square)
            .build()
            .unwrap()
            .compile(&c)
            .unwrap();
        verify_mapping_on(&c, &program.mapped, &square, square.lattice()).unwrap();
        // Zoned: same physics, banded topology.
        let zoned = ZonedTarget::new(small(HardwareParams::mixed(), 8, 25), 2, 1).expect("fits");
        let compiler = Compiler::for_target(&zoned).build().unwrap();
        let program = compiler.compile(&c).unwrap();
        verify_mapping_on(&c, &program.mapped, zoned.params(), zoned.lattice()).unwrap();
        assert_eq!(program.aod_programs.len(), program.schedule.batch_count());
    }

    #[test]
    fn warm_scratch_reuse_is_artifact_identical() {
        // One scratch across heterogeneous circuits must produce exactly
        // the artifacts of per-call fresh scratch — arenas carry
        // capacity, never decisions.
        let t = small(HardwareParams::mixed(), 6, 25);
        let compiler = Compiler::for_target(&t).build().unwrap();
        let circuits = [
            Qft::new(14).build(),
            GraphState::new(18).edges(24).seed(7).build(),
            Qft::new(10).build(),
        ];
        let mut scratch = CompileScratch::new();
        for c in &circuits {
            let warm = compiler.compile_with(c, &mut scratch).unwrap();
            let cold = compiler.compile(c).unwrap();
            assert_eq!(warm.mapped, cold.mapped);
            assert_eq!(warm.schedule, cold.schedule);
            assert_eq!(warm.metrics, cold.metrics);
            assert_eq!(warm.aod_programs, cold.aod_programs);
        }
    }

    #[test]
    fn cancelled_token_surfaces_typed_compile_errors() {
        let t = small(HardwareParams::mixed(), 6, 25);
        let compiler = Compiler::for_target(&t).build().unwrap();
        let c = Qft::new(14).build();
        // Explicit cancellation.
        let token = CancelToken::never();
        token.cancel();
        let err = compiler
            .compile_with_cancel(&c, &mut CompileScratch::new(), &token)
            .unwrap_err();
        assert!(matches!(err, CompileError::Cancelled), "got {err:?}");
        // Expired deadline.
        let token = CancelToken::with_deadline(Duration::ZERO);
        let err = compiler
            .compile_with_cancel(&c, &mut CompileScratch::new(), &token)
            .unwrap_err();
        assert!(matches!(err, CompileError::DeadlineExceeded), "got {err:?}");
    }

    #[test]
    fn untripped_token_is_artifact_identical() {
        let t = small(HardwareParams::mixed(), 6, 25);
        let compiler = Compiler::for_target(&t).build().unwrap();
        let c = GraphState::new(18).edges(24).seed(7).build();
        let plain = compiler.compile(&c).unwrap();
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        let watched = compiler
            .compile_with_cancel(&c, &mut CompileScratch::new(), &token)
            .unwrap();
        assert_eq!(plain.mapped, watched.mapped);
        assert_eq!(plain.schedule, watched.schedule);
        assert_eq!(plain.metrics, watched.metrics);
        assert_eq!(plain.aod_programs, watched.aod_programs);
        assert_eq!(plain.comparison, watched.comparison);
    }

    #[test]
    fn scheduling_cap_carries_into_compiled_schedule() {
        let t = small(HardwareParams::shuttling(), 6, 20);
        let compiler = Compiler::for_target(&t)
            .mapping(MappingOptions::shuttle_only())
            .scheduling(SchedulingOptions::default().max_batch_moves(1))
            .build()
            .unwrap();
        let program = compiler.compile(&Qft::new(10).build()).unwrap();
        assert_eq!(
            program.schedule.batch_count(),
            program.schedule.move_count()
        );
    }
}
