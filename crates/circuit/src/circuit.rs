//! The [`Circuit`] container and gate statistics.

use na_arch::HardwareParams;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::CircuitError;
use crate::gate::{GateKind, Operation, Qubit};

/// An ordered list of operations on `num_qubits` circuit qubits.
///
/// Convenience gate methods panic on invalid operands (they are intended
/// for statically-known indices in generators and tests); use
/// [`Circuit::push`] for fallible insertion of untrusted input.
///
/// # Example
///
/// ```
/// use na_circuit::Circuit;
/// let mut c = Circuit::new(3);
/// c.h(0).cz(0, 1).ccz(0, 1, 2);
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.stats().cz_family_count(3), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: u32,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Circuit width.
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the circuit has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in program order.
    #[inline]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// Appends a validated operation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] when an operand exceeds
    /// the circuit width.
    pub fn push(&mut self, op: Operation) -> Result<(), CircuitError> {
        for q in op.qubits() {
            if q.0 >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.0,
                    num_qubits: self.num_qubits,
                });
            }
        }
        self.ops.push(op);
        Ok(())
    }

    fn push_unchecked(&mut self, kind: GateKind, qubits: Vec<Qubit>) -> &mut Self {
        let op = Operation::new(kind, qubits).expect("valid gate operands");
        self.push(op).expect("qubit indices in range");
        self
    }

    /// Appends a Hadamard on `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range (also applies to the other
    /// convenience gate methods below).
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(GateKind::H, vec![Qubit(q)])
    }

    /// Appends a Pauli-X on `q`.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(GateKind::X, vec![Qubit(q)])
    }

    /// Appends a Pauli-Z on `q`.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.push_unchecked(GateKind::Z, vec![Qubit(q)])
    }

    /// Appends `RZ(theta)` on `q`.
    pub fn rz(&mut self, theta: f64, q: u32) -> &mut Self {
        self.push_unchecked(GateKind::Rz(theta), vec![Qubit(q)])
    }

    /// Appends `U3(theta, phi, lambda)` on `q`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: u32) -> &mut Self {
        self.push_unchecked(GateKind::U3(theta, phi, lambda), vec![Qubit(q)])
    }

    /// Appends a CZ between `a` and `b`.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.push_unchecked(GateKind::Cz, vec![Qubit(a), Qubit(b)])
    }

    /// Appends a controlled-phase `CP(theta)` between `a` and `b`.
    pub fn cp(&mut self, theta: f64, a: u32, b: u32) -> &mut Self {
        self.push_unchecked(GateKind::Cp(theta), vec![Qubit(a), Qubit(b)])
    }

    /// Appends a CCZ on three qubits.
    pub fn ccz(&mut self, a: u32, b: u32, c: u32) -> &mut Self {
        self.push_unchecked(GateKind::Mcz, vec![Qubit(a), Qubit(b), Qubit(c)])
    }

    /// Appends a `CᵐZ` on the given qubits (3 ≤ qubits ≤ hardware limit).
    pub fn mcz(&mut self, qubits: &[u32]) -> &mut Self {
        self.push_unchecked(GateKind::Mcz, qubits.iter().map(|&q| Qubit(q)).collect())
    }

    /// Appends a CNOT with control `c` and target `t` (a 2-qubit `Mcx`).
    pub fn cx(&mut self, c: u32, t: u32) -> &mut Self {
        self.push_unchecked(GateKind::Mcx, vec![Qubit(c), Qubit(t)])
    }

    /// Appends a `CᵐX`; the last element of `qubits` is the target.
    pub fn mcx(&mut self, qubits: &[u32]) -> &mut Self {
        self.push_unchecked(GateKind::Mcx, qubits.iter().map(|&q| Qubit(q)).collect())
    }

    /// Appends a SWAP between `a` and `b`.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.push_unchecked(GateKind::Swap, vec![Qubit(a), Qubit(b)])
    }

    /// Appends all operations of `other` (must have the same width).
    ///
    /// # Panics
    ///
    /// Panics if `other` is wider than `self`.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot append a wider circuit"
        );
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// Gate statistics in the shape of the paper's Table 1b.
    pub fn stats(&self) -> GateStats {
        let mut stats = GateStats::new(self.num_qubits);
        for op in &self.ops {
            stats.total += 1;
            if op.arity() == 1 {
                stats.single_qubit += 1;
            } else if op.kind().is_cz_family() {
                let a = op.arity();
                if a < GateStats::MAX_ARITY {
                    stats.cz_family[a] += 1;
                } else {
                    stats.cz_family_overflow += 1;
                }
            } else {
                stats.other_multi += 1;
            }
        }
        stats
    }

    /// Count of native CZ-family entangling operations (any arity) — the
    /// paper's `nCZ`-style accounting after decomposition.
    pub fn entangling_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| op.kind().is_cz_family())
            .count()
    }

    /// Returns `true` if every operation is NA-native.
    pub fn is_native(&self) -> bool {
        self.ops.iter().all(|op| op.kind().is_native())
    }

    /// Sum of individual operation durations (no parallelism), in µs.
    /// Useful as a normalization baseline for schedules.
    pub fn serial_duration_us(&self, params: &HardwareParams) -> f64 {
        self.ops.iter().map(|op| op.duration_us(params)).sum()
    }

    /// Product of operation log-fidelities: `Σ ln F_O` over all gates.
    pub fn log_fidelity(&self, params: &HardwareParams) -> f64 {
        self.ops.iter().map(|op| op.fidelity(params).ln()).sum()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.num_qubits)?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

/// Gate counts in the shape of the paper's Table 1b.
///
/// `cz_family[a]` counts CZ-class gates of arity `a` (so `cz_family[2]` is
/// `nCZ`, `cz_family[3]` is `nC2Z`, `cz_family[4]` is `nC3Z`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateStats {
    /// Circuit width.
    pub num_qubits: u32,
    /// Total operation count.
    pub total: usize,
    /// Single-qubit gate count.
    pub single_qubit: usize,
    /// CZ-family counts indexed by arity (index 0 and 1 unused).
    pub cz_family: [usize; GateStats::MAX_ARITY],
    /// CZ-family gates of arity ≥ `MAX_ARITY`.
    pub cz_family_overflow: usize,
    /// Non-native multi-qubit gates (`Mcx`, `Swap`) still present.
    pub other_multi: usize,
}

impl GateStats {
    /// Largest tracked arity (exclusive).
    pub const MAX_ARITY: usize = 8;

    fn new(num_qubits: u32) -> Self {
        GateStats {
            num_qubits,
            total: 0,
            single_qubit: 0,
            cz_family: [0; GateStats::MAX_ARITY],
            cz_family_overflow: 0,
            other_multi: 0,
        }
    }

    /// CZ-family gates of exactly `arity` qubits.
    pub fn cz_family_count(&self, arity: usize) -> usize {
        if arity < GateStats::MAX_ARITY {
            self.cz_family[arity]
        } else {
            0
        }
    }

    /// All CZ-family entangling gates regardless of arity.
    pub fn entangling_total(&self) -> usize {
        self.cz_family.iter().sum::<usize>() + self.cz_family_overflow
    }
}

impl fmt::Display for GateStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} nCZ={} nC2Z={} nC3Z={} (1q={}, total={})",
            self.num_qubits,
            self.cz_family[2],
            self.cz_family[3],
            self.cz_family[4],
            self.single_qubit,
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).ccz(1, 2, 3).mcx(&[0, 1, 2, 3]).swap(0, 3);
        assert_eq!(c.len(), 5);
        assert!(!c.is_native());
    }

    #[test]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let op = Operation::new(GateKind::Cz, vec![Qubit(0), Qubit(5)]).unwrap();
        assert_eq!(
            c.push(op),
            Err(CircuitError::QubitOutOfRange {
                qubit: 5,
                num_qubits: 2
            })
        );
    }

    #[test]
    #[should_panic(expected = "range")]
    fn convenience_method_panics_out_of_range() {
        Circuit::new(2).h(7);
    }

    #[test]
    fn stats_match_gate_mix() {
        let mut c = Circuit::new(5);
        c.h(0)
            .h(1)
            .cz(0, 1)
            .cp(0.3, 1, 2)
            .ccz(0, 1, 2)
            .mcz(&[0, 1, 2, 3]);
        let s = c.stats();
        assert_eq!(s.single_qubit, 2);
        assert_eq!(s.cz_family_count(2), 2); // cz + cp
        assert_eq!(s.cz_family_count(3), 1);
        assert_eq!(s.cz_family_count(4), 1);
        assert_eq!(s.entangling_total(), 4);
        assert_eq!(s.total, 6);
    }

    #[test]
    fn entangling_count_ignores_single_qubit() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cz(0, 1);
        assert_eq!(c.entangling_count(), 1);
    }

    #[test]
    fn serial_duration_sums_ops() {
        let p = HardwareParams::mixed();
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1);
        assert!((c.serial_duration_us(&p) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn log_fidelity_is_negative_for_imperfect_gates() {
        let p = HardwareParams::mixed();
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        assert!(c.log_fidelity(&p) < 0.0);
        assert!((c.log_fidelity(&p) - p.f_cz.ln()).abs() < 1e-12);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(3);
        b.cz(1, 2);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1);
        let text = c.to_string();
        assert!(text.contains("h q0"));
        assert!(text.contains("cz q0, q1"));
    }
}
