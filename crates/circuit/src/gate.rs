//! Gates and operations.
//!
//! The NA-native gate set consists of arbitrary single-qubit rotations
//! (addressed laser pulses) and the `CᵐZ` family realized through the
//! Rydberg blockade (paper §2.1). Controlled-phase `CP(θ)` is counted as a
//! CZ-class entangling operation, matching the paper's `nCZ` accounting.
//! Non-native gates (`CᵐX`, `SWAP`) carry decompositions in
//! [`crate::decompose`].

use na_arch::HardwareParams;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::CircuitError;

/// A circuit (logical) qubit index.
///
/// Circuit qubits `q_i` are distinct from hardware atoms and from trap
/// coordinates; the mapper maintains the assignments between the three
/// (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Qubit(pub u32);

impl Qubit {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(i: u32) -> Self {
        Qubit(i)
    }
}

/// The kind of a gate, excluding its qubit operands.
///
/// Rotation angles are in radians.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GateKind {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (diagonal).
    Z,
    /// X rotation.
    Rx(f64),
    /// Y rotation.
    Ry(f64),
    /// Z rotation (diagonal).
    Rz(f64),
    /// General single-qubit rotation `U3(θ, φ, λ)`.
    U3(f64, f64, f64),
    /// Controlled-Z (diagonal, 2 qubits, native).
    Cz,
    /// Controlled-phase `CP(θ)` (diagonal, 2 qubits, native CZ-class).
    Cp(f64),
    /// Multi-controlled Z, `Cᵐ⁻¹Z` on `m ≥ 3` qubits (diagonal, native).
    Mcz,
    /// Multi-controlled X (Toffoli family); last operand is the target.
    /// Non-native: decomposes to `H · CᵐZ · H`.
    Mcx,
    /// SWAP; non-native: decomposes to 3 CZ + 6 H (paper §2.2).
    Swap,
}

impl GateKind {
    /// Short lowercase mnemonic (e.g. `"cz"`, `"u3"`).
    pub fn name(&self) -> &'static str {
        match self {
            GateKind::H => "h",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::Rx(_) => "rx",
            GateKind::Ry(_) => "ry",
            GateKind::Rz(_) => "rz",
            GateKind::U3(..) => "u3",
            GateKind::Cz => "cz",
            GateKind::Cp(_) => "cp",
            GateKind::Mcz => "mcz",
            GateKind::Mcx => "mcx",
            GateKind::Swap => "swap",
        }
    }

    /// Returns `true` if the gate is diagonal in the computational basis.
    ///
    /// Diagonal gates mutually commute — the property exploited by the
    /// commutation-aware layer construction (paper §3.2 (1)).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            GateKind::Z | GateKind::Rz(_) | GateKind::Cz | GateKind::Cp(_) | GateKind::Mcz
        )
    }

    /// Returns `true` if the gate is an X-axis rotation (these mutually
    /// commute on the same qubit).
    pub fn is_x_axis(&self) -> bool {
        matches!(self, GateKind::X | GateKind::Rx(_))
    }

    /// Returns `true` if the gate belongs to the NA-native set
    /// (single-qubit rotations and the CZ family).
    pub fn is_native(&self) -> bool {
        !matches!(self, GateKind::Mcx | GateKind::Swap)
    }

    /// Returns `true` for CZ-family entangling gates (`CZ`, `CP`, `CᵐZ`).
    pub fn is_cz_family(&self) -> bool {
        matches!(self, GateKind::Cz | GateKind::Cp(_) | GateKind::Mcz)
    }

    /// Expected operand count: `None` for variadic gates (`Mcz`, `Mcx`),
    /// otherwise the exact arity.
    pub fn fixed_arity(&self) -> Option<usize> {
        match self {
            GateKind::H
            | GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::Rx(_)
            | GateKind::Ry(_)
            | GateKind::Rz(_)
            | GateKind::U3(..) => Some(1),
            GateKind::Cz | GateKind::Cp(_) | GateKind::Swap => Some(2),
            GateKind::Mcz | GateKind::Mcx => None,
        }
    }
}

/// A gate applied to a concrete list of qubits.
///
/// # Example
///
/// ```
/// use na_circuit::{GateKind, Operation, Qubit};
/// let op = Operation::new(GateKind::Cz, vec![Qubit(0), Qubit(1)])?;
/// assert!(op.is_entangling());
/// assert_eq!(op.arity(), 2);
/// # Ok::<(), na_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    kind: GateKind,
    qubits: Vec<Qubit>,
}

impl Operation {
    /// Creates a validated operation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ArityMismatch`] if the operand count does
    /// not match the gate kind (for `Mcz`/`Mcx` at least 2 and 3 qubits
    /// respectively are required — use [`GateKind::Cz`] for the 2-qubit
    /// case), or [`CircuitError::DuplicateQubit`] if a qubit repeats.
    pub fn new(kind: GateKind, qubits: Vec<Qubit>) -> Result<Self, CircuitError> {
        match kind.fixed_arity() {
            Some(n) if qubits.len() != n => {
                return Err(CircuitError::ArityMismatch {
                    gate: kind.name(),
                    expected: n,
                    got: qubits.len(),
                })
            }
            None => {
                let min = match kind {
                    GateKind::Mcz => 3,
                    _ => 2,
                };
                if qubits.len() < min {
                    return Err(CircuitError::ArityMismatch {
                        gate: kind.name(),
                        expected: min,
                        got: qubits.len(),
                    });
                }
            }
            _ => {}
        }
        let mut seen = qubits.clone();
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0] == w[1] {
                return Err(CircuitError::DuplicateQubit { qubit: w[0].0 });
            }
        }
        Ok(Operation { kind, qubits })
    }

    /// The gate kind.
    #[inline]
    pub fn kind(&self) -> &GateKind {
        &self.kind
    }

    /// The operand qubits in gate order (for `Mcx` the target is last).
    #[inline]
    pub fn qubits(&self) -> &[Qubit] {
        &self.qubits
    }

    /// Number of operand qubits.
    #[inline]
    pub fn arity(&self) -> usize {
        self.qubits.len()
    }

    /// Returns `true` for gates on two or more qubits.
    #[inline]
    pub fn is_entangling(&self) -> bool {
        self.arity() >= 2
    }

    /// Returns `true` if the operation acts on `q`.
    #[inline]
    pub fn acts_on(&self, q: Qubit) -> bool {
        self.qubits.contains(&q)
    }

    /// Returns `true` if the two operations share at least one qubit.
    pub fn overlaps(&self, other: &Operation) -> bool {
        self.qubits.iter().any(|q| other.acts_on(*q))
    }

    /// Commutation test used for dependency construction.
    ///
    /// Two operations commute when they act on disjoint qubits, when both
    /// are diagonal in the computational basis, or when both are X-axis
    /// rotations on the same single qubit. This is conservative: gates
    /// that commute for subtler reasons are treated as ordered.
    pub fn commutes_with(&self, other: &Operation) -> bool {
        if !self.overlaps(other) {
            return true;
        }
        if self.kind.is_diagonal() && other.kind.is_diagonal() {
            return true;
        }
        self.arity() == 1 && other.arity() == 1 && self.kind.is_x_axis() && other.kind.is_x_axis()
    }

    /// Execution time on the given hardware, in µs.
    ///
    /// Native single-qubit gates take `t_U3`; the CZ family follows the
    /// Table 1c arity progression. Non-native gates report the duration of
    /// their native decomposition (critical path).
    pub fn duration_us(&self, params: &HardwareParams) -> f64 {
        match self.kind {
            GateKind::Mcx => 2.0 * params.t_single_us + params.cz_family_time_us(self.arity()),
            GateKind::Swap => params.swap_time_us(),
            _ if self.kind.is_cz_family() => params.cz_family_time_us(self.arity()),
            _ => params.t_single_us,
        }
    }

    /// Average fidelity on the given hardware.
    ///
    /// Non-native gates report the product fidelity of their
    /// decomposition.
    pub fn fidelity(&self, params: &HardwareParams) -> f64 {
        match self.kind {
            GateKind::Mcx => params.f_single.powi(2) * params.cz_family_fidelity(self.arity()),
            GateKind::Swap => params.swap_fidelity(),
            _ if self.kind.is_cz_family() => params.cz_family_fidelity(self.arity()),
            _ => params.f_single,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.name())?;
        for (i, q) in self.qubits.iter().enumerate() {
            write!(f, "{}{q}", if i == 0 { " " } else { ", " })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cz(a: u32, b: u32) -> Operation {
        Operation::new(GateKind::Cz, vec![Qubit(a), Qubit(b)]).unwrap()
    }

    fn h(q: u32) -> Operation {
        Operation::new(GateKind::H, vec![Qubit(q)]).unwrap()
    }

    #[test]
    fn arity_validation() {
        assert!(Operation::new(GateKind::Cz, vec![Qubit(0)]).is_err());
        assert!(Operation::new(GateKind::H, vec![Qubit(0), Qubit(1)]).is_err());
        assert!(Operation::new(GateKind::Mcz, vec![Qubit(0), Qubit(1)]).is_err());
        assert!(Operation::new(GateKind::Mcz, vec![Qubit(0), Qubit(1), Qubit(2)]).is_ok());
    }

    #[test]
    fn duplicate_qubits_rejected() {
        let err = Operation::new(GateKind::Cz, vec![Qubit(3), Qubit(3)]).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQubit { qubit: 3 });
    }

    #[test]
    fn diagonal_gates_commute() {
        let a = cz(0, 1);
        let b = cz(1, 2);
        assert!(a.commutes_with(&b));
        let rz = Operation::new(GateKind::Rz(0.3), vec![Qubit(1)]).unwrap();
        assert!(a.commutes_with(&rz));
    }

    #[test]
    fn h_blocks_cz() {
        assert!(!cz(0, 1).commutes_with(&h(1)));
        assert!(cz(0, 1).commutes_with(&h(2)));
    }

    #[test]
    fn x_axis_rotations_commute() {
        let x = Operation::new(GateKind::X, vec![Qubit(0)]).unwrap();
        let rx = Operation::new(GateKind::Rx(0.7), vec![Qubit(0)]).unwrap();
        assert!(x.commutes_with(&rx));
        let ry = Operation::new(GateKind::Ry(0.7), vec![Qubit(0)]).unwrap();
        assert!(!x.commutes_with(&ry));
    }

    #[test]
    fn commutation_is_symmetric() {
        let ops = [
            cz(0, 1),
            h(0),
            Operation::new(GateKind::Rz(1.0), vec![Qubit(0)]).unwrap(),
            Operation::new(GateKind::Mcz, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap(),
        ];
        for a in &ops {
            for b in &ops {
                assert_eq!(a.commutes_with(b), b.commutes_with(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn durations_follow_table1c() {
        let p = HardwareParams::mixed();
        assert_eq!(h(0).duration_us(&p), 0.5);
        assert_eq!(cz(0, 1).duration_us(&p), 0.2);
        let ccz = Operation::new(GateKind::Mcz, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap();
        assert_eq!(ccz.duration_us(&p), 0.4);
        let swap = Operation::new(GateKind::Swap, vec![Qubit(0), Qubit(1)]).unwrap();
        assert_eq!(swap.duration_us(&p), p.swap_time_us());
    }

    #[test]
    fn fidelity_of_swap_matches_decomposition() {
        let p = HardwareParams::gate_based();
        let swap = Operation::new(GateKind::Swap, vec![Qubit(0), Qubit(1)]).unwrap();
        assert!((swap.fidelity(&p) - p.f_cz.powi(3) * p.f_single.powi(6)).abs() < 1e-15);
    }

    #[test]
    fn display_contains_operands() {
        assert_eq!(cz(0, 5).to_string(), "cz q0, q5");
    }

    #[test]
    fn cp_is_cz_family_and_diagonal() {
        let cp = Operation::new(GateKind::Cp(0.4), vec![Qubit(0), Qubit(1)]).unwrap();
        assert!(cp.kind().is_cz_family());
        assert!(cp.kind().is_diagonal());
        assert!(cp.kind().is_native());
    }
}
