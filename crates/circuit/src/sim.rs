//! A small dense statevector simulator.
//!
//! Used as the strongest test oracle in the workspace: a mapped circuit
//! (original gates + routing SWAPs) must implement exactly the same
//! unitary as the input circuit up to the final qubit permutation. The
//! simulator is deliberately simple — dense `2ⁿ` amplitudes, no
//! parallelism — and intended for circuits up to ~20 qubits in tests.

use std::fmt;

use crate::circuit::Circuit;
use crate::gate::{GateKind, Operation};

/// A complex amplitude (no external dependency needed for the test
/// oracle).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex number `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);
    /// One.
    pub const ONE: Complex = Complex::new(1.0, 0.0);

    /// `e^{iθ}`.
    pub fn from_phase(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}{:+.4}i", self.re, self.im)
    }
}

/// A dense statevector over `n` qubits (little-endian: qubit 0 is the
/// least significant bit of the basis index).
///
/// # Example
///
/// ```
/// use na_circuit::{sim::Statevector, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1); // Bell pair
/// let psi = Statevector::simulate(&c);
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// assert!(psi.probability(0b01) < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    num_qubits: u32,
    amps: Vec<Complex>,
}

impl Statevector {
    /// The all-zeros state `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics for more than 24 qubits (the dense vector would exceed
    /// testing-scale memory).
    pub fn zero(num_qubits: u32) -> Self {
        assert!(num_qubits <= 24, "dense simulation capped at 24 qubits");
        let mut amps = vec![Complex::ZERO; 1usize << num_qubits];
        amps[0] = Complex::ONE;
        Statevector { num_qubits, amps }
    }

    /// Simulates `circuit` from `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is too wide (see [`Statevector::zero`]).
    pub fn simulate(circuit: &Circuit) -> Self {
        let mut psi = Statevector::zero(circuit.num_qubits());
        for op in circuit.iter() {
            psi.apply(op);
        }
        psi
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The raw amplitudes (little-endian basis order).
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Probability of basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sq()
    }

    /// Applies one operation in place.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range qubits.
    pub fn apply(&mut self, op: &Operation) {
        let qs: Vec<usize> = op.qubits().iter().map(|q| q.index()).collect();
        for &q in &qs {
            assert!((q as u32) < self.num_qubits, "qubit {q} out of range");
        }
        match *op.kind() {
            GateKind::H => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                self.apply_1q(
                    qs[0],
                    [
                        [Complex::new(s, 0.0), Complex::new(s, 0.0)],
                        [Complex::new(s, 0.0), Complex::new(-s, 0.0)],
                    ],
                );
            }
            GateKind::X => self.apply_1q(
                qs[0],
                [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
            ),
            GateKind::Y => self.apply_1q(
                qs[0],
                [
                    [Complex::ZERO, Complex::new(0.0, -1.0)],
                    [Complex::new(0.0, 1.0), Complex::ZERO],
                ],
            ),
            GateKind::Z => self.apply_1q(
                qs[0],
                [
                    [Complex::ONE, Complex::ZERO],
                    [Complex::ZERO, Complex::new(-1.0, 0.0)],
                ],
            ),
            GateKind::Rx(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                self.apply_1q(
                    qs[0],
                    [
                        [Complex::new(c, 0.0), Complex::new(0.0, -s)],
                        [Complex::new(0.0, -s), Complex::new(c, 0.0)],
                    ],
                );
            }
            GateKind::Ry(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                self.apply_1q(
                    qs[0],
                    [
                        [Complex::new(c, 0.0), Complex::new(-s, 0.0)],
                        [Complex::new(s, 0.0), Complex::new(c, 0.0)],
                    ],
                );
            }
            GateKind::Rz(t) => {
                let m = Complex::from_phase(-t / 2.0);
                let p = Complex::from_phase(t / 2.0);
                self.apply_1q(qs[0], [[m, Complex::ZERO], [Complex::ZERO, p]]);
            }
            GateKind::U3(theta, phi, lam) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                self.apply_1q(
                    qs[0],
                    [
                        [Complex::new(c, 0.0), Complex::from_phase(lam) * (-s)],
                        [
                            Complex::from_phase(phi) * s,
                            Complex::from_phase(phi + lam) * c,
                        ],
                    ],
                );
            }
            GateKind::Cz | GateKind::Mcz => {
                self.apply_phase_on_all_ones(&qs, Complex::new(-1.0, 0.0));
            }
            GateKind::Cp(t) => {
                self.apply_phase_on_all_ones(&qs, Complex::from_phase(t));
            }
            GateKind::Mcx => {
                let (controls, target) = qs.split_at(qs.len() - 1);
                let mask: usize = controls.iter().map(|&q| 1usize << q).sum();
                let tbit = 1usize << target[0];
                for i in 0..self.amps.len() {
                    if i & mask == mask && i & tbit == 0 {
                        self.amps.swap(i, i | tbit);
                    }
                }
            }
            GateKind::Swap => {
                let (a, b) = (1usize << qs[0], 1usize << qs[1]);
                for i in 0..self.amps.len() {
                    if i & a != 0 && i & b == 0 {
                        self.amps.swap(i, (i & !a) | b);
                    }
                }
            }
            #[allow(unreachable_patterns)] // future GateKind variants
            _ => unimplemented!("gate {} not simulated", op.kind().name()),
        }
    }

    fn apply_1q(&mut self, q: usize, u: [[Complex; 2]; 2]) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let (a0, a1) = (self.amps[i], self.amps[j]);
                self.amps[i] = u[0][0] * a0 + u[0][1] * a1;
                self.amps[j] = u[1][0] * a0 + u[1][1] * a1;
            }
        }
    }

    fn apply_phase_on_all_ones(&mut self, qs: &[usize], phase: Complex) {
        let mask: usize = qs.iter().map(|&q| 1usize << q).sum();
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask == mask {
                *amp = *amp * phase;
            }
        }
    }

    /// Embeds this state into a wider register: the added qubits
    /// (indices `n..num_qubits`) are `|0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is smaller than the current width or
    /// exceeds the simulation cap.
    pub fn embed_into(&self, num_qubits: u32) -> Statevector {
        assert!(num_qubits >= self.num_qubits, "cannot shrink a state");
        let mut out = Statevector::zero(num_qubits);
        out.amps[0] = Complex::ZERO;
        for (i, &amp) in self.amps.iter().enumerate() {
            out.amps[i] = amp;
        }
        out
    }

    /// Permutes qubit labels: qubit `i` of `self` becomes qubit `perm[i]`
    /// of the result. `perm` must be a permutation of `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a valid permutation.
    pub fn permute_qubits(&self, perm: &[u32]) -> Statevector {
        assert_eq!(perm.len(), self.num_qubits as usize, "permutation length");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(
                (p as usize) < perm.len() && !seen[p as usize],
                "invalid permutation"
            );
            seen[p as usize] = true;
        }
        let mut out = vec![Complex::ZERO; self.amps.len()];
        for (i, &amp) in self.amps.iter().enumerate() {
            let mut j = 0usize;
            for (src, &dst) in perm.iter().enumerate() {
                if i & (1 << src) != 0 {
                    j |= 1 << dst;
                }
            }
            out[j] = amp;
        }
        Statevector {
            num_qubits: self.num_qubits,
            amps: out,
        }
    }

    /// `|⟨self|other⟩|²` — 1.0 iff the states are identical up to global
    /// phase.
    pub fn fidelity_with(&self, other: &Statevector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        let mut overlap = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            overlap = overlap + a.conj() * *b;
        }
        overlap.norm_sq()
    }

    /// Total probability (should be 1 for any unitary circuit).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sq()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_to_native;
    use crate::generators::{Qft, RandomCircuit};
    use proptest::prelude::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn bell_pair() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let psi = Statevector::simulate(&c);
        assert!((psi.probability(0) - 0.5).abs() < EPS);
        assert!((psi.probability(3) - 0.5).abs() < EPS);
        assert!(psi.norm() - 1.0 < EPS);
    }

    #[test]
    fn ghz_state() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let psi = Statevector::simulate(&c);
        assert!((psi.probability(0b0000) - 0.5).abs() < EPS);
        assert!((psi.probability(0b1111) - 0.5).abs() < EPS);
    }

    #[test]
    fn toffoli_truth_table() {
        // |110⟩ -> |111⟩ (controls = qubits 0, 1; target = 2).
        let mut c = Circuit::new(3);
        c.x(0).x(1).mcx(&[0, 1, 2]);
        let psi = Statevector::simulate(&c);
        assert!((psi.probability(0b111) - 1.0).abs() < EPS);
        // |100⟩ stays |100⟩.
        let mut c = Circuit::new(3);
        c.x(0).mcx(&[0, 1, 2]);
        let psi = Statevector::simulate(&c);
        assert!((psi.probability(0b001) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_exchanges_basis_states() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let psi = Statevector::simulate(&c);
        assert!((psi.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn cz_is_symmetric_phase() {
        let mut a = Circuit::new(2);
        a.h(0).h(1).cz(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).h(1).cz(1, 0);
        let pa = Statevector::simulate(&a);
        let pb = Statevector::simulate(&b);
        assert!((pa.fidelity_with(&pb) - 1.0).abs() < EPS);
    }

    #[test]
    fn cp_pi_equals_cz() {
        let mut a = Circuit::new(2);
        a.h(0).h(1).cz(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).h(1).cp(std::f64::consts::PI, 0, 1);
        let pa = Statevector::simulate(&a);
        let pb = Statevector::simulate(&b);
        assert!((pa.fidelity_with(&pb) - 1.0).abs() < EPS);
    }

    #[test]
    fn decomposition_preserves_unitary() {
        for seed in 0..5 {
            let c = RandomCircuit::new(6)
                .layers(6)
                .multi_qubit_fraction(0.3)
                .seed(seed)
                .build();
            let mut with_nonnative = Circuit::new(6);
            with_nonnative.extend_from(&c);
            with_nonnative.mcx(&[0, 2, 4]).swap(1, 5);
            let native = decompose_to_native(&with_nonnative);
            let pa = Statevector::simulate(&with_nonnative);
            let pb = Statevector::simulate(&native);
            assert!(
                (pa.fidelity_with(&pb) - 1.0).abs() < 1e-9,
                "seed {seed}: decomposition changed the unitary"
            );
        }
    }

    #[test]
    fn qft_on_basis_state_is_uniform() {
        let c = Qft::new(4).build();
        let psi = Statevector::simulate(&c);
        for i in 0..16 {
            assert!((psi.probability(i) - 1.0 / 16.0).abs() < 1e-9);
        }
    }

    #[test]
    fn permute_qubits_roundtrip() {
        let c = RandomCircuit::new(5).layers(4).seed(9).build();
        let psi = Statevector::simulate(&c);
        let perm = [2u32, 0, 4, 1, 3];
        let mut inverse = [0u32; 5];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p as usize] = i as u32;
        }
        let back = psi.permute_qubits(&perm).permute_qubits(&inverse);
        assert!((psi.fidelity_with(&back) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_equals_relabeling() {
        // SWAP(a, b) followed by nothing == permuting the labels.
        let mut c = Circuit::new(3);
        c.h(0).x(1).rz(0.7, 2).cz(0, 2);
        let base = Statevector::simulate(&c);
        let mut swapped = Circuit::new(3);
        swapped.extend_from(&c);
        swapped.swap(0, 2);
        let via_gate = Statevector::simulate(&swapped);
        let via_perm = base.permute_qubits(&[2, 1, 0]);
        assert!((via_gate.fidelity_with(&via_perm) - 1.0).abs() < EPS);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn norm_preserved_by_random_circuits(seed in 0u64..500, layers in 1usize..6) {
            let c = RandomCircuit::new(6)
                .layers(layers)
                .multi_qubit_fraction(0.25)
                .seed(seed)
                .build();
            let psi = Statevector::simulate(&c);
            prop_assert!((psi.norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn diagonal_gates_commute_in_simulation(seed in 0u64..100) {
            use rand::{RngExt, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Build two circuits with the same diagonal gates in
            // different orders; states must match.
            let mut gates = vec![];
            for _ in 0..6 {
                let a = rng.random_range(0..5u32);
                let b = rng.random_range(0..5u32);
                if a != b {
                    gates.push((a, b, rng.random_range(0.0..std::f64::consts::TAU)));
                }
            }
            let mut fwd = Circuit::new(5);
            let mut rev = Circuit::new(5);
            for q in 0..5 { fwd.h(q); rev.h(q); }
            for &(a, b, t) in &gates { fwd.cp(t, a, b); }
            for &(a, b, t) in gates.iter().rev() { rev.cp(t, a, b); }
            let pf = Statevector::simulate(&fwd);
            let pr = Statevector::simulate(&rev);
            prop_assert!((pf.fidelity_with(&pr) - 1.0).abs() < 1e-9);
        }
    }
}
