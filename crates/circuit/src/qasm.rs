//! OpenQASM 2.0 subset import/export.
//!
//! Supports the gate vocabulary of this workspace: `h x y z rx ry rz u3
//! cx cz cp/cu1 ccx swap` plus the non-standard extensions `mcz`/`mcx`
//! for the NA-native multi-qubit gates (emitted with a defining comment
//! so other tools can ignore them). `creg`, `measure` and `barrier` lines
//! are accepted on import and skipped; a single quantum register is
//! assumed.
//!
//! # Example
//!
//! ```
//! use na_circuit::{qasm, Circuit};
//! let mut c = Circuit::new(3);
//! c.h(0).cz(0, 1).ccz(0, 1, 2);
//! let text = qasm::to_qasm(&c);
//! let back = qasm::from_qasm(&text)?;
//! assert_eq!(c, back);
//! # Ok::<(), na_circuit::qasm::QasmError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::{GateKind, Operation, Qubit};

/// Errors raised while parsing QASM text.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QasmError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A gate name outside the supported subset.
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// The gate name.
        gate: String,
    },
    /// No `qreg` declaration before the first gate.
    MissingRegister,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::Syntax { line, reason } => write!(f, "line {line}: {reason}"),
            QasmError::UnsupportedGate { line, gate } => {
                write!(f, "line {line}: unsupported gate `{gate}`")
            }
            QasmError::MissingRegister => write!(f, "no qreg declared before first gate"),
        }
    }
}

impl Error for QasmError {}

/// Serializes a circuit as OpenQASM 2.0 text.
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str("// mcz/mcx: multi-controlled Z/X (neutral-atom native extension)\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for op in circuit.iter() {
        let operands = op
            .qubits()
            .iter()
            .map(|q| format!("q[{}]", q.0))
            .collect::<Vec<_>>()
            .join(",");
        let line = match *op.kind() {
            GateKind::H => format!("h {operands};"),
            GateKind::X => format!("x {operands};"),
            GateKind::Y => format!("y {operands};"),
            GateKind::Z => format!("z {operands};"),
            GateKind::Rx(t) => format!("rx({t}) {operands};"),
            GateKind::Ry(t) => format!("ry({t}) {operands};"),
            GateKind::Rz(t) => format!("rz({t}) {operands};"),
            GateKind::U3(a, b, c) => format!("u3({a},{b},{c}) {operands};"),
            GateKind::Cz => format!("cz {operands};"),
            GateKind::Cp(t) => format!("cp({t}) {operands};"),
            GateKind::Mcz => format!("mcz {operands};"),
            GateKind::Mcx => {
                if op.arity() == 2 {
                    format!("cx {operands};")
                } else if op.arity() == 3 {
                    format!("ccx {operands};")
                } else {
                    format!("mcx {operands};")
                }
            }
            GateKind::Swap => format!("swap {operands};"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses OpenQASM 2.0 text (the subset documented at module level).
///
/// # Errors
///
/// Returns [`QasmError`] for malformed lines, unsupported gates, missing
/// registers, or operand problems.
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split("//").next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        for part in stmt.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            parse_statement(part, line, &mut circuit)?;
        }
    }
    circuit.ok_or(QasmError::MissingRegister)
}

fn parse_statement(
    stmt: &str,
    line: usize,
    circuit: &mut Option<Circuit>,
) -> Result<(), QasmError> {
    let lower = stmt.to_ascii_lowercase();
    if lower.starts_with("openqasm") || lower.starts_with("include") {
        return Ok(());
    }
    if let Some(rest) = lower.strip_prefix("qreg") {
        let size = rest
            .trim()
            .split('[')
            .nth(1)
            .and_then(|s| s.split(']').next())
            .and_then(|s| s.trim().parse::<u32>().ok())
            .ok_or_else(|| QasmError::Syntax {
                line,
                reason: "malformed qreg declaration".into(),
            })?;
        match circuit {
            Some(_) => {
                return Err(QasmError::Syntax {
                    line,
                    reason: "multiple qreg declarations are not supported".into(),
                })
            }
            None => *circuit = Some(Circuit::new(size)),
        }
        return Ok(());
    }
    if lower.starts_with("creg") || lower.starts_with("barrier") || lower.starts_with("measure") {
        return Ok(());
    }

    // Gate application: name[(params)] operand[,operand...]
    let (head, operands_text) = match stmt.find(char::is_whitespace) {
        Some(pos) => stmt.split_at(pos),
        None => {
            return Err(QasmError::Syntax {
                line,
                reason: format!("cannot parse statement `{stmt}`"),
            })
        }
    };
    let (name, params) = parse_head(head.trim(), line)?;
    let qubits = parse_operands(operands_text.trim(), line)?;
    let circuit = circuit.as_mut().ok_or(QasmError::MissingRegister)?;

    let kind = match (name.as_str(), params.as_slice()) {
        ("h", []) => GateKind::H,
        ("x", []) => GateKind::X,
        ("y", []) => GateKind::Y,
        ("z", []) => GateKind::Z,
        ("rx", [t]) => GateKind::Rx(*t),
        ("ry", [t]) => GateKind::Ry(*t),
        ("rz", [t]) | ("u1", [t]) | ("p", [t]) => GateKind::Rz(*t),
        ("u3", [a, b, c]) | ("u", [a, b, c]) => GateKind::U3(*a, *b, *c),
        ("cz", []) => GateKind::Cz,
        ("cp", [t]) | ("cu1", [t]) => GateKind::Cp(*t),
        ("cx", []) | ("cnot", []) | ("ccx", []) | ("mcx", []) => GateKind::Mcx,
        ("mcz", []) if qubits.len() == 2 => GateKind::Cz,
        ("mcz", []) => GateKind::Mcz,
        ("swap", []) => GateKind::Swap,
        _ => {
            return Err(QasmError::UnsupportedGate {
                line,
                gate: name.clone(),
            })
        }
    };
    let op = Operation::new(kind, qubits).map_err(|e| QasmError::Syntax {
        line,
        reason: e.to_string(),
    })?;
    circuit.push(op).map_err(|e| QasmError::Syntax {
        line,
        reason: e.to_string(),
    })
}

fn parse_head(head: &str, line: usize) -> Result<(String, Vec<f64>), QasmError> {
    match head.find('(') {
        None => Ok((head.to_ascii_lowercase(), Vec::new())),
        Some(open) => {
            let name = head[..open].to_ascii_lowercase();
            let inner = head[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| QasmError::Syntax {
                    line,
                    reason: "unbalanced parentheses".into(),
                })?;
            let params = inner
                .split(',')
                .map(|p| parse_angle(p.trim()))
                .collect::<Option<Vec<f64>>>()
                .ok_or_else(|| QasmError::Syntax {
                    line,
                    reason: format!("cannot parse parameters `{inner}`"),
                })?;
            Ok((name, params))
        }
    }
}

/// Parses an angle expression: a float, `pi`, `-pi`, `pi/k`, `-pi/k`,
/// `k*pi`, `k*pi/m`.
fn parse_angle(text: &str) -> Option<f64> {
    if let Ok(v) = text.parse::<f64>() {
        return Some(v);
    }
    let (sign, rest) = match text.strip_prefix('-') {
        Some(r) => (-1.0, r.trim()),
        None => (1.0, text),
    };
    let (num, den) = match rest.split_once('/') {
        Some((n, d)) => (n.trim(), d.trim().parse::<f64>().ok()?),
        None => (rest, 1.0),
    };
    let numerator = if num.eq_ignore_ascii_case("pi") {
        std::f64::consts::PI
    } else if let Some((k, p)) = num.split_once('*') {
        if !p.trim().eq_ignore_ascii_case("pi") {
            return None;
        }
        k.trim().parse::<f64>().ok()? * std::f64::consts::PI
    } else {
        return None;
    };
    Some(sign * numerator / den)
}

fn parse_operands(text: &str, line: usize) -> Result<Vec<Qubit>, QasmError> {
    text.split(',')
        .map(|operand| {
            operand
                .trim()
                .split('[')
                .nth(1)
                .and_then(|s| s.split(']').next())
                .and_then(|s| s.trim().parse::<u32>().ok())
                .map(Qubit)
                .ok_or_else(|| QasmError::Syntax {
                    line,
                    reason: format!("cannot parse operand `{operand}`"),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Qft, RandomCircuit, Reversible};

    #[test]
    fn roundtrip_simple_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .x(1)
            .rz(0.5, 2)
            .u3(0.1, 0.2, 0.3, 3)
            .cz(0, 1)
            .cp(1.25, 1, 2)
            .ccz(0, 1, 2)
            .mcx(&[0, 1, 2, 3])
            .swap(0, 3);
        let text = to_qasm(&c);
        let back = from_qasm(&text).expect("parses");
        assert_eq!(c, back);
    }

    #[test]
    fn roundtrip_generators() {
        for circuit in [
            Qft::new(6).build(),
            Reversible::new(8).counts(&[(2, 5), (3, 4)]).seed(1).build(),
            RandomCircuit::new(6).layers(4).seed(2).build(),
        ] {
            let back = from_qasm(&to_qasm(&circuit)).expect("parses");
            assert_eq!(circuit, back);
        }
    }

    #[test]
    fn parses_external_style_qasm() {
        let text = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];
            cx q[0], q[1];
            cu1(pi/2) q[1], q[2];
            rz(-pi/4) q[0];
            u1(3.14) q[2];
            barrier q;
            measure q[0] -> c[0];
        "#;
        let c = from_qasm(text).expect("parses");
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.len(), 5); // barrier and measure skipped
        assert!(
            matches!(c.ops()[2].kind(), GateKind::Cp(t) if (t - std::f64::consts::FRAC_PI_2).abs() < 1e-12)
        );
        assert!(
            matches!(c.ops()[3].kind(), GateKind::Rz(t) if (t + std::f64::consts::FRAC_PI_4).abs() < 1e-12)
        );
    }

    #[test]
    fn angle_expressions() {
        assert_eq!(parse_angle("1.5"), Some(1.5));
        assert!((parse_angle("pi").unwrap() - std::f64::consts::PI).abs() < 1e-12);
        assert!((parse_angle("pi/2").unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((parse_angle("-pi/4").unwrap() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((parse_angle("3*pi/2").unwrap() - 3.0 * std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(parse_angle("two"), None);
    }

    #[test]
    fn error_on_unknown_gate() {
        let text = "qreg q[2];\nfredkin q[0],q[1];";
        assert!(matches!(
            from_qasm(text),
            Err(QasmError::UnsupportedGate { line: 2, .. })
        ));
    }

    #[test]
    fn error_on_missing_register() {
        assert_eq!(from_qasm("h q[0];"), Err(QasmError::MissingRegister));
        assert_eq!(from_qasm(""), Err(QasmError::MissingRegister));
    }

    #[test]
    fn error_on_out_of_range_operand() {
        let text = "qreg q[2];\ncz q[0],q[5];";
        assert!(matches!(
            from_qasm(text),
            Err(QasmError::Syntax { line: 2, .. })
        ));
    }

    #[test]
    fn multiple_statements_per_line() {
        let c = from_qasm("qreg q[2]; h q[0]; cz q[0],q[1];").expect("parses");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn comments_stripped() {
        let c = from_qasm("qreg q[1]; // register\nh q[0]; // hadamard").expect("parses");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unitary_preserved_through_roundtrip() {
        use crate::sim::Statevector;
        let c = RandomCircuit::new(5)
            .layers(5)
            .multi_qubit_fraction(0.3)
            .seed(7)
            .build();
        let back = from_qasm(&to_qasm(&c)).expect("parses");
        let pa = Statevector::simulate(&c);
        let pb = Statevector::simulate(&back);
        assert!((pa.fidelity_with(&pb) - 1.0).abs() < 1e-9);
    }
}
