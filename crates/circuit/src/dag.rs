//! Commutation-aware dependency DAG and dynamic layer tracking.
//!
//! The hybrid mapping process starts from a *frontier layer* `f` of gates
//! executable next, plus a *lookahead layer* `l` of gates following the
//! frontier up to a configurable depth (paper §3.2 (1)). Both layers take
//! commutation rules into account: gates that commute are left unordered,
//! so e.g. the controlled-phase ladder of a QFT exposes all its mutually
//! commuting gates to the router at once.
//!
//! # Construction
//!
//! Per qubit the builder maintains the *previous group* and the *current
//! group* of operations: the current group is a maximal run of mutually
//! commuting gates touching that qubit; every member of the current group
//! depends on every member of the previous group. A new gate that commutes
//! with the whole current group joins it (inheriting edges from the
//! previous group only); a gate that conflicts with any member closes the
//! group and starts a new one. This is conservative (it may order a gate
//! after one it commutes with across a group boundary) but never unsound.

use std::collections::VecDeque;

use crate::circuit::Circuit;

/// Dependency DAG over the operations of a [`Circuit`].
///
/// Node `i` is `circuit.ops()[i]`; edges point from earlier to later
/// operations that must stay ordered.
///
/// # Example
///
/// ```
/// use na_circuit::{Circuit, CircuitDag};
/// let mut c = Circuit::new(3);
/// c.cz(0, 1).cz(1, 2).h(1);
/// let dag = CircuitDag::new(&c);
/// // The two CZs commute: both are initially available.
/// assert_eq!(dag.initial_front(), vec![0, 1]);
/// // The H conflicts with both.
/// assert_eq!(dag.predecessors(2), &[0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl CircuitDag {
    /// Builds the commutation-aware DAG of `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Per qubit: (previous group, current group) of op indices.
        let width = circuit.num_qubits() as usize;
        let mut prev_group: Vec<Vec<usize>> = vec![Vec::new(); width];
        let mut cur_group: Vec<Vec<usize>> = vec![Vec::new(); width];

        let ops = circuit.ops();
        for (i, op) in ops.iter().enumerate() {
            for q in op.qubits() {
                let qi = q.index();
                let commutes_with_group = cur_group[qi].iter().all(|&j| ops[j].commutes_with(op));
                if commutes_with_group {
                    for &j in &prev_group[qi] {
                        preds[i].push(j);
                    }
                } else {
                    // Close the current group; it becomes the previous one.
                    let closed = std::mem::take(&mut cur_group[qi]);
                    for &j in &closed {
                        preds[i].push(j);
                    }
                    prev_group[qi] = closed;
                }
                cur_group[qi].push(i);
            }
            preds[i].sort_unstable();
            preds[i].dedup();
            for &j in &preds[i] {
                succs[j].push(i);
            }
        }
        for s in &mut succs {
            s.sort_unstable();
            s.dedup();
        }
        CircuitDag { preds, succs }
    }

    /// Number of nodes (operations).
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Returns `true` for an empty DAG.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Direct predecessors of op `i` (sorted).
    #[inline]
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of op `i` (sorted).
    #[inline]
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Operations with no predecessors — the initial frontier layer.
    pub fn initial_front(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// A topological order (ties broken by program order). Mostly useful
    /// for testing; the mapper consumes the DAG via [`LayerTracker`].
    pub fn topological_order(&self) -> Vec<usize> {
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: VecDeque<usize> = self.initial_front().into();
        let mut order = Vec::with_capacity(self.len());
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &s in &self.succs[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        debug_assert_eq!(order.len(), self.len(), "DAG must be acyclic");
        order
    }
}

/// Dynamic frontier/lookahead tracking over a [`CircuitDag`].
///
/// The mapper repeatedly executes frontier gates and asks for the updated
/// layers; `LayerTracker` maintains remaining-predecessor counts so each
/// update is O(out-degree).
///
/// # Example
///
/// ```
/// use na_circuit::{Circuit, CircuitDag, LayerTracker};
/// let mut c = Circuit::new(3);
/// c.h(0).cz(0, 1).cz(1, 2);
/// let dag = CircuitDag::new(&c);
/// let mut layers = LayerTracker::new(&dag);
/// // h q0 and cz q1,q2 are ready; cz q0,q1 waits on the Hadamard.
/// assert_eq!(layers.front(), &[0, 2]);
/// layers.mark_executed(&dag, 0);
/// assert!(layers.front().contains(&1));
/// ```
#[derive(Debug, Clone)]
pub struct LayerTracker {
    remaining: Vec<usize>,
    executed: Vec<bool>,
    front: Vec<usize>,
    num_executed: usize,
}

impl LayerTracker {
    /// Initializes tracking with the DAG's initial frontier.
    pub fn new(dag: &CircuitDag) -> Self {
        let remaining: Vec<usize> = (0..dag.len()).map(|i| dag.predecessors(i).len()).collect();
        let front = dag.initial_front();
        LayerTracker {
            remaining,
            executed: vec![false; dag.len()],
            front,
            num_executed: 0,
        }
    }

    /// The current frontier layer (sorted op indices).
    pub fn front(&self) -> &[usize] {
        &self.front
    }

    /// Returns `true` once every operation has been executed.
    pub fn is_done(&self) -> bool {
        self.num_executed == self.executed.len()
    }

    /// Number of executed operations.
    pub fn num_executed(&self) -> usize {
        self.num_executed
    }

    /// Returns `true` if op `i` has been executed.
    pub fn is_executed(&self, i: usize) -> bool {
        self.executed[i]
    }

    /// Marks frontier op `i` as executed and promotes newly-ready
    /// successors into the frontier. Returns the newly-ready ops.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not currently in the frontier (executing a gate
    /// whose dependencies are unmet would be unsound).
    pub fn mark_executed(&mut self, dag: &CircuitDag, i: usize) -> Vec<usize> {
        let pos = self
            .front
            .iter()
            .position(|&g| g == i)
            .unwrap_or_else(|| panic!("op {i} is not in the frontier"));
        self.front.swap_remove(pos);
        self.executed[i] = true;
        self.num_executed += 1;
        let mut ready = Vec::new();
        for &s in dag.successors(i) {
            self.remaining[s] -= 1;
            if self.remaining[s] == 0 {
                ready.push(s);
            }
        }
        self.front.extend(ready.iter().copied());
        self.front.sort_unstable();
        ready
    }

    /// Partitions the current frontier into qubit-disjoint gate groups.
    ///
    /// Greedy first-fit over the frontier in sorted op-index order: each
    /// gate lands in the earliest group in which none of its qubits is
    /// already used. Group 0 is therefore the maximal greedy prefix of
    /// mutually qubit-disjoint frontier gates — the commit-eligible set of
    /// a speculative multi-commit routing round (every gate in it can be
    /// serviced without touching another group-0 gate's logical qubits).
    ///
    /// The partition is deterministic and covers the whole frontier:
    /// concatenating the groups yields `front()` reordered, and every
    /// group is internally qubit-disjoint.
    ///
    /// # Example
    ///
    /// ```
    /// use na_circuit::{Circuit, CircuitDag, LayerTracker};
    /// let mut c = Circuit::new(3);
    /// c.cz(0, 1).cz(1, 2); // commute: both are frontier gates
    /// let dag = CircuitDag::new(&c);
    /// let layers = LayerTracker::new(&dag);
    /// let groups = layers.front_disjoint_groups(&c);
    /// // They share qubit 1, so they split into two groups.
    /// assert_eq!(groups, vec![vec![0], vec![1]]);
    /// ```
    pub fn front_disjoint_groups(&self, circuit: &Circuit) -> Vec<Vec<usize>> {
        // First group index in which each qubit is still unused.
        let mut next_group = vec![0usize; circuit.num_qubits() as usize];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let ops = circuit.ops();
        for &i in &self.front {
            let g = ops[i]
                .qubits()
                .iter()
                .map(|q| next_group[q.index()])
                .max()
                .unwrap_or(0);
            if g == groups.len() {
                groups.push(Vec::new());
            }
            groups[g].push(i);
            for q in ops[i].qubits() {
                next_group[q.index()] = g + 1;
            }
        }
        groups
    }

    /// The lookahead layer: operations reachable from the frontier within
    /// `depth` dependency steps, capped at `max_gates`, in BFS order.
    ///
    /// `depth = 0` or `max_gates = 0` yields an empty layer.
    pub fn lookahead(&self, dag: &CircuitDag, depth: usize, max_gates: usize) -> Vec<usize> {
        if depth == 0 || max_gates == 0 {
            return Vec::new();
        }
        let mut seen = vec![false; dag.len()];
        for &i in &self.front {
            seen[i] = true;
        }
        let mut layer = Vec::new();
        let mut current: Vec<usize> = self.front.clone();
        for _ in 0..depth {
            let mut next = Vec::new();
            for &i in &current {
                for &s in dag.successors(i) {
                    if !seen[s] && !self.executed[s] {
                        seen[s] = true;
                        next.push(s);
                        layer.push(s);
                        if layer.len() >= max_gates {
                            return layer;
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            current = next;
        }
        layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::generators::Qft;
    use proptest::prelude::*;

    /// The central DAG example: cz(0,1) and cz(1,2) commute (both
    /// diagonal) so the QFT-style ladder is fully exposed.
    #[test]
    fn commuting_cz_chain_all_front() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(1, 2).cz(2, 3).cz(0, 3);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.initial_front(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn h_creates_barrier() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).h(0).cz(0, 1);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
    }

    /// Soundness regression: X, CZ, Z on the same qubit. Z commutes with
    /// CZ but not with X; the group construction must still order Z after
    /// X (via the CZ barrier).
    #[test]
    fn cross_group_ordering_is_sound() {
        let mut c = Circuit::new(2);
        c.x(0).cz(0, 1).z(0);
        let dag = CircuitDag::new(&c);
        // z depends on the previous group [x] and is unordered w.r.t. cz.
        assert_eq!(dag.predecessors(2), &[0]);
        assert_eq!(dag.predecessors(1), &[0]);
    }

    #[test]
    fn disjoint_gates_independent() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3);
        let dag = CircuitDag::new(&c);
        assert!(dag.predecessors(1).is_empty());
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).h(1).cz(1, 2).h(2);
        let dag = CircuitDag::new(&c);
        let order = dag.topological_order();
        assert_eq!(order.len(), c.len());
        let mut pos = vec![0usize; c.len()];
        for (p, &i) in order.iter().enumerate() {
            pos[i] = p;
        }
        for i in 0..c.len() {
            for &p in dag.predecessors(i) {
                assert!(pos[p] < pos[i]);
            }
        }
    }

    #[test]
    fn tracker_executes_whole_circuit() {
        let c = Qft::new(5).build();
        let dag = CircuitDag::new(&c);
        let mut layers = LayerTracker::new(&dag);
        let mut executed = 0;
        while !layers.is_done() {
            let i = layers.front()[0];
            layers.mark_executed(&dag, i);
            executed += 1;
        }
        assert_eq!(executed, c.len());
    }

    #[test]
    #[should_panic(expected = "not in the frontier")]
    fn tracker_rejects_non_front_execution() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1);
        let dag = CircuitDag::new(&c);
        let mut layers = LayerTracker::new(&dag);
        layers.mark_executed(&dag, 1);
    }

    #[test]
    fn lookahead_respects_depth_and_cap() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cz(0, 1).h(0).cz(0, 1);
        let dag = CircuitDag::new(&c);
        let layers = LayerTracker::new(&dag);
        assert!(layers.lookahead(&dag, 0, 10).is_empty());
        let one = layers.lookahead(&dag, 1, 10);
        assert!(one.contains(&2));
        assert!(!one.contains(&3)); // h q0 is two dependency steps away
        let deep = layers.lookahead(&dag, 5, 10);
        assert!(deep.contains(&3) && deep.contains(&4));
        assert_eq!(layers.lookahead(&dag, 5, 2).len(), 2);
    }

    #[test]
    fn disjoint_groups_split_shared_qubits() {
        let mut c = Circuit::new(4);
        // All four CZs commute; 0 and 1 share q1, 2 shares q2 with 1.
        c.cz(0, 1).cz(1, 2).cz(2, 3).cz(0, 3);
        let dag = CircuitDag::new(&c);
        let layers = LayerTracker::new(&dag);
        let groups = layers.front_disjoint_groups(&c);
        // Greedy first-fit: op0 {0,1} → g0; op1 {1,2} → g1; op2 {2,3} → g2
        // (q2 used in g1... next_group[2]=2), op3 {0,3} → g3? op3 qubits
        // q0 (next 1) and q3 (next 3) → g3.
        assert_eq!(groups[0], vec![0]);
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, layers.front());
        // Every group is internally qubit-disjoint.
        for group in &groups {
            let mut used = [false; 4];
            for &i in group {
                for q in c.ops()[i].qubits() {
                    assert!(!used[q.index()], "group shares qubit {q:?}");
                    used[q.index()] = true;
                }
            }
        }
    }

    #[test]
    fn disjoint_groups_keep_independent_gates_together() {
        let mut c = Circuit::new(6);
        c.cz(0, 1).cz(2, 3).cz(4, 5);
        let dag = CircuitDag::new(&c);
        let layers = LayerTracker::new(&dag);
        let groups = layers.front_disjoint_groups(&c);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    proptest! {
        /// The partition covers the frontier exactly and every group is
        /// qubit-disjoint, for arbitrary circuits.
        #[test]
        fn disjoint_groups_partition_is_sound(ops in proptest::collection::vec((0u32..6, 0u32..6, 0u8..3), 1..40)) {
            let mut c = Circuit::new(6);
            for (a, b, kind) in ops {
                match kind {
                    0 => { c.h(a); }
                    1 => { if a != b { c.cz(a, b); } }
                    _ => { c.rz(0.25, a); }
                }
            }
            let dag = CircuitDag::new(&c);
            let layers = LayerTracker::new(&dag);
            let groups = layers.front_disjoint_groups(&c);
            let mut flat: Vec<usize> = groups.iter().flatten().copied().collect();
            flat.sort_unstable();
            prop_assert_eq!(flat, layers.front().to_vec());
            for group in &groups {
                prop_assert!(!group.is_empty());
                let mut used = [false; 6];
                for &i in group {
                    for q in c.ops()[i].qubits() {
                        prop_assert!(!used[q.index()]);
                        used[q.index()] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn lookahead_excludes_front_and_executed() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1).h(1);
        let dag = CircuitDag::new(&c);
        let mut layers = LayerTracker::new(&dag);
        layers.mark_executed(&dag, 0);
        let la = layers.lookahead(&dag, 3, 10);
        assert!(!la.contains(&0));
        assert!(!la.contains(&1)); // now in front
        assert!(la.contains(&2));
    }

    proptest! {
        /// Any DAG built from a random circuit is acyclic and orders every
        /// pair of non-commuting overlapping gates.
        #[test]
        fn dag_orders_all_conflicts(ops in proptest::collection::vec((0u32..5, 0u32..5, 0u8..3), 1..40)) {
            let mut c = Circuit::new(5);
            for (a, b, kind) in ops {
                match kind {
                    0 => { c.h(a); }
                    1 => { if a != b { c.cz(a, b); } }
                    _ => { c.rz(0.5, a); }
                }
            }
            let dag = CircuitDag::new(&c);
            let order = dag.topological_order();
            prop_assert_eq!(order.len(), c.len());
            let mut pos = vec![0usize; c.len()];
            for (p, &i) in order.iter().enumerate() { pos[i] = p; }
            // Reachability closure over the DAG.
            let n = c.len();
            let mut reach = vec![vec![false; n]; n];
            for &i in order.iter().rev() {
                for &s in dag.successors(i) {
                    reach[i][s] = true;
                    let row = reach[s].clone();
                    for (k, v) in row.into_iter().enumerate() {
                        if v { reach[i][k] = true; }
                    }
                }
            }
            #[allow(clippy::needless_range_loop)] // paired indices
            for i in 0..n {
                for j in (i + 1)..n {
                    let (a, b) = (&c.ops()[i], &c.ops()[j]);
                    if a.overlaps(b) && !a.commutes_with(b) {
                        prop_assert!(reach[i][j], "ops {} and {} unordered", i, j);
                    }
                }
            }
        }
    }
}
