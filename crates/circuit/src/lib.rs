//! Quantum circuit intermediate representation for neutral-atom mapping.
//!
//! The crate provides:
//!
//! * a gate set covering the NA-native operations (arbitrary single-qubit
//!   rotations, `CZ`/`CP`, multi-controlled `CᵐZ`) plus common
//!   non-native gates (`CᵐX`, `SWAP`) with [`decompose`] passes to the
//!   native set,
//! * a [`Circuit`] container with validation and gate statistics,
//! * a commutation-aware dependency [`dag`] producing the *front layer*
//!   and *lookahead layer* that drive the hybrid mapper (paper §3.2 (1)),
//! * seeded benchmark [`generators`] reproducing the workloads of the
//!   paper's Table 1b (QFT, QPE, graph state, reversible-function
//!   circuits).
//!
//! # Example
//!
//! ```
//! use na_circuit::generators::Qft;
//!
//! let qft = Qft::new(8).build();
//! assert_eq!(qft.num_qubits(), 8);
//! let stats = qft.stats();
//! assert_eq!(stats.cz_family_count(2), 8 * 7 / 2); // full CP ladder
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod circuit;
pub mod dag;
pub mod decompose;
pub mod error;
pub mod gate;
pub mod generators;
pub mod qasm;
pub mod sim;

pub use analysis::StructureMetrics;
pub use circuit::{Circuit, GateStats};
pub use dag::{CircuitDag, LayerTracker};
pub use decompose::decompose_to_native;
pub use error::CircuitError;
pub use gate::{GateKind, Operation, Qubit};
