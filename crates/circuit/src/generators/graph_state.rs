//! Graph-state preparation circuit generator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::circuit::Circuit;

/// Builds a graph-state preparation circuit: one Hadamard per qubit
/// followed by a CZ for every edge of a seeded random simple graph.
///
/// The paper's `graph` benchmark uses 200 qubits and 215 CZ gates — a
/// sparse graph with average degree ≈ 2.15. The generated graph is a
/// Hamiltonian-path backbone (guaranteeing connectivity) plus random
/// chords up to the requested edge count.
///
/// # Example
///
/// ```
/// use na_circuit::generators::GraphState;
/// let c = GraphState::new(20).edges(25).seed(1).build();
/// assert_eq!(c.stats().cz_family_count(2), 25);
/// assert_eq!(c.stats().single_qubit, 20);
/// ```
#[derive(Debug, Clone)]
pub struct GraphState {
    num_qubits: u32,
    edges: usize,
    seed: u64,
}

impl GraphState {
    /// A graph state on `num_qubits` qubits (≥ 2) with a default edge
    /// count scaled like the paper's benchmark (≈ 1.075 edges per qubit).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits < 2`.
    pub fn new(num_qubits: u32) -> Self {
        assert!(num_qubits >= 2, "graph state needs at least 2 qubits");
        GraphState {
            num_qubits,
            edges: ((f64::from(num_qubits) * 215.0 / 200.0).round() as usize)
                .max(num_qubits as usize - 1),
            seed: 0,
        }
    }

    /// Sets the exact number of edges (clamped to the simple-graph
    /// maximum `n(n−1)/2`, and at least `n − 1` to keep the backbone).
    pub fn edges(mut self, edges: usize) -> Self {
        self.edges = edges;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the circuit.
    pub fn build(&self) -> Circuit {
        let n = self.num_qubits;
        let max_edges = (n as usize) * (n as usize - 1) / 2;
        let target = self.edges.min(max_edges).max(n as usize - 1);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut chosen: Vec<(u32, u32)> = Vec::with_capacity(target);
        let mut used = std::collections::HashSet::new();
        // Backbone path.
        for i in 0..n - 1 {
            chosen.push((i, i + 1));
            used.insert((i, i + 1));
        }
        // Random chords.
        while chosen.len() < target {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a == b {
                continue;
            }
            let e = (a.min(b), a.max(b));
            if used.insert(e) {
                chosen.push(e);
            }
        }

        let mut c = Circuit::new(n);
        for i in 0..n {
            c.h(i);
        }
        for (a, b) in chosen {
            c.cz(a, b);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_profile() {
        let c = GraphState::new(200).edges(215).seed(7).build();
        let s = c.stats();
        assert_eq!(s.num_qubits, 200);
        assert_eq!(s.cz_family_count(2), 215);
        assert_eq!(s.single_qubit, 200);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GraphState::new(30).edges(40).seed(5).build();
        let b = GraphState::new(30).edges(40).seed(5).build();
        assert_eq!(a, b);
        let c = GraphState::new(30).edges(40).seed(6).build();
        assert_ne!(a, c);
    }

    #[test]
    fn edges_are_unique_pairs() {
        let c = GraphState::new(25).edges(60).seed(3).build();
        let mut seen = std::collections::HashSet::new();
        for op in c.iter().filter(|op| op.is_entangling()) {
            let q = op.qubits();
            let e = (q[0].0.min(q[1].0), q[0].0.max(q[1].0));
            assert!(seen.insert(e), "duplicate edge {e:?}");
        }
    }

    #[test]
    fn edge_count_clamped_to_simple_graph() {
        let c = GraphState::new(5).edges(1000).seed(0).build();
        assert_eq!(c.stats().cz_family_count(2), 10);
    }

    #[test]
    fn backbone_guarantees_minimum_edges() {
        let c = GraphState::new(10).edges(0).seed(0).build();
        assert_eq!(c.stats().cz_family_count(2), 9);
    }

    #[test]
    fn default_density_near_paper() {
        let g = GraphState::new(200);
        assert_eq!(g.edges, 215);
    }
}
