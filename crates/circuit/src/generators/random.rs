//! Layered random circuits for tests, fuzzing and micro-benchmarks.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::circuit::Circuit;

/// Builds layered random circuits: each layer pairs up random disjoint
/// qubits with entangling gates and fills the rest with random
/// single-qubit gates.
///
/// # Example
///
/// ```
/// use na_circuit::generators::RandomCircuit;
/// let c = RandomCircuit::new(10).layers(4).seed(42).build();
/// assert_eq!(c.num_qubits(), 10);
/// assert!(c.is_native());
/// ```
#[derive(Debug, Clone)]
pub struct RandomCircuit {
    num_qubits: u32,
    layers: usize,
    two_qubit_fraction: f64,
    multi_qubit_fraction: f64,
    seed: u64,
}

impl RandomCircuit {
    /// A random circuit on `num_qubits` qubits (≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits < 2`.
    pub fn new(num_qubits: u32) -> Self {
        assert!(num_qubits >= 2, "random circuits need at least 2 qubits");
        RandomCircuit {
            num_qubits,
            layers: 10,
            two_qubit_fraction: 0.5,
            multi_qubit_fraction: 0.0,
            seed: 0,
        }
    }

    /// Sets the number of layers.
    pub fn layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Fraction of qubits per layer participating in CZ gates (clamped to
    /// `[0, 1]`).
    pub fn two_qubit_fraction(mut self, f: f64) -> Self {
        self.two_qubit_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Fraction of entangling gates upgraded to CCZ (requires ≥ 3 qubits;
    /// clamped to `[0, 1]`).
    pub fn multi_qubit_fraction(mut self, f: f64) -> Self {
        self.multi_qubit_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the circuit.
    pub fn build(&self) -> Circuit {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_qubits;
        let mut c = Circuit::new(n);
        for _ in 0..self.layers {
            // Random permutation of qubits.
            let mut perm: Vec<u32> = (0..n).collect();
            for i in (1..perm.len()).rev() {
                let j = rng.random_range(0..=i);
                perm.swap(i, j);
            }
            let paired = ((f64::from(n) * self.two_qubit_fraction) as usize / 2) * 2;
            let mut i = 0;
            while i < paired {
                let want_ccz = n >= 3
                    && i + 3 <= paired
                    && rng.random_range(0.0..1.0) < self.multi_qubit_fraction;
                if want_ccz {
                    c.ccz(perm[i], perm[i + 1], perm[i + 2]);
                    i += 3;
                } else if i + 2 <= paired {
                    c.cz(perm[i], perm[i + 1]);
                    i += 2;
                } else {
                    break;
                }
            }
            for &q in &perm[paired..] {
                match rng.random_range(0..3) {
                    0 => c.h(q),
                    1 => c.x(q),
                    _ => c.rz(rng.random_range(0.0..std::f64::consts::TAU), q),
                };
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = RandomCircuit::new(8).layers(5).seed(1).build();
        let b = RandomCircuit::new(8).layers(5).seed(1).build();
        assert_eq!(a, b);
    }

    #[test]
    fn qubits_in_range() {
        let c = RandomCircuit::new(6).layers(20).seed(3).build();
        for op in c.iter() {
            for q in op.qubits() {
                assert!(q.0 < 6);
            }
        }
    }

    #[test]
    fn two_qubit_fraction_controls_density() {
        let sparse = RandomCircuit::new(20)
            .layers(10)
            .two_qubit_fraction(0.2)
            .seed(5)
            .build();
        let dense = RandomCircuit::new(20)
            .layers(10)
            .two_qubit_fraction(1.0)
            .seed(5)
            .build();
        assert!(dense.entangling_count() > sparse.entangling_count());
    }

    #[test]
    fn multi_qubit_fraction_emits_ccz() {
        let c = RandomCircuit::new(12)
            .layers(10)
            .multi_qubit_fraction(0.8)
            .seed(2)
            .build();
        assert!(c.stats().cz_family_count(3) > 0);
    }

    #[test]
    fn zero_layers_empty() {
        let c = RandomCircuit::new(4).layers(0).build();
        assert!(c.is_empty());
    }
}
