//! Synthetic reversible-function circuits (`CᵐX` networks).
//!
//! The paper evaluates three circuits (`bn`, `call`, `gray`) synthesized
//! from classical reversible functions by the SyReC synthesizer, using
//! `CᵐX` gates with `m ≤ 4`. SyReC itself and its input specifications are
//! not available here; this generator produces seeded `CᵐX` networks with
//! the *exact* gate-count profile of Table 1b and the locality statistics
//! typical of reversible synthesis: consecutive gates share target lines
//! and control sets overlap (see DESIGN.md §4.2 for why this preserves the
//! mapper-relevant structure).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::circuit::Circuit;

/// Builder for synthetic reversible-function circuits.
///
/// # Example
///
/// ```
/// use na_circuit::generators::Reversible;
/// use na_circuit::decompose_to_native;
/// // The paper's `call` profile: 192 CCX + 56 CCCX on 25 lines.
/// let call = Reversible::new(25).counts(&[(3, 192), (4, 56)]).seed(13).build();
/// let native = decompose_to_native(&call);
/// assert_eq!(native.stats().cz_family_count(3), 192);
/// assert_eq!(native.stats().cz_family_count(4), 56);
/// ```
#[derive(Debug, Clone)]
pub struct Reversible {
    num_qubits: u32,
    /// `(arity, count)` pairs: arity includes the target (2 = CX).
    counts: Vec<(usize, usize)>,
    seed: u64,
    window: u32,
}

impl Reversible {
    /// A reversible circuit on `num_qubits` lines (≥ 2) with an empty
    /// gate profile.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits < 2`.
    pub fn new(num_qubits: u32) -> Self {
        assert!(num_qubits >= 2, "reversible circuits need at least 2 lines");
        Reversible {
            num_qubits,
            counts: Vec::new(),
            seed: 0,
            window: (num_qubits / 3).max(4),
        }
    }

    /// Sets the gate profile as `(arity, count)` pairs; arity counts all
    /// operands including the target, so `(2, k)` adds `k` CX gates and
    /// `(3, k)` adds `k` Toffolis.
    ///
    /// # Panics
    ///
    /// Panics if an arity is below 2 or exceeds the line count.
    pub fn counts(mut self, counts: &[(usize, usize)]) -> Self {
        for &(arity, _) in counts {
            assert!(arity >= 2, "CᵐX arity must be at least 2");
            assert!(
                arity <= self.num_qubits as usize,
                "arity {arity} exceeds {} lines",
                self.num_qubits
            );
        }
        self.counts = counts.to_vec();
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the locality window: gate operands are drawn from a window of
    /// this many lines around a drifting center, mimicking the
    /// line-locality of synthesized reversible netlists.
    pub fn window(mut self, window: u32) -> Self {
        self.window = window.max(2);
        self
    }

    /// Generates the `CᵐX` circuit (call
    /// [`decompose_to_native`](crate::decompose_to_native) afterwards for
    /// the mapped form).
    pub fn build(&self) -> Circuit {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_qubits;

        // Bag of arities, shuffled so large and small gates interleave the
        // way synthesis output does.
        let mut bag: Vec<usize> = Vec::new();
        for &(arity, count) in &self.counts {
            bag.extend(std::iter::repeat_n(arity, count));
        }
        for i in (1..bag.len()).rev() {
            let j = rng.random_range(0..=i);
            bag.swap(i, j);
        }

        let mut c = Circuit::new(n);
        // Drifting locality center: reversible netlists touch nearby lines
        // in runs, with the occasional long jump.
        let mut center: u32 = rng.random_range(0..n);
        let w = self.window.min(n);
        for arity in bag {
            if rng.random_range(0..100) < 15 {
                center = rng.random_range(0..n);
            } else {
                let drift: u32 = rng.random_range(0..=2);
                center = (center + drift).min(n - 1);
            }
            let lo = center.saturating_sub(w / 2);
            let hi = (lo + w).min(n);
            let lo = hi.saturating_sub(w);
            let mut lines: Vec<u32> = Vec::with_capacity(arity);
            while lines.len() < arity {
                let q = rng.random_range(lo..hi);
                if !lines.contains(&q) {
                    lines.push(q);
                }
            }
            c.mcx(&lines);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_to_native;

    #[test]
    fn profile_counts_exact() {
        let c = Reversible::new(48)
            .counts(&[(2, 133), (3, 87)])
            .seed(11)
            .build();
        let native = decompose_to_native(&c);
        let s = native.stats();
        assert_eq!(s.cz_family_count(2), 133);
        assert_eq!(s.cz_family_count(3), 87);
        // Each CᵐX contributes two H gates.
        assert_eq!(s.single_qubit, 2 * (133 + 87));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Reversible::new(20).counts(&[(3, 30)]).seed(4).build();
        let b = Reversible::new(20).counts(&[(3, 30)]).seed(4).build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_circuit() {
        let a = Reversible::new(20).counts(&[(3, 30)]).seed(4).build();
        let b = Reversible::new(20).counts(&[(3, 30)]).seed(5).build();
        assert_ne!(a, b);
    }

    #[test]
    fn operands_within_line_range() {
        let c = Reversible::new(12).counts(&[(4, 50)]).seed(9).build();
        for op in c.iter() {
            assert_eq!(op.arity(), 4);
            for q in op.qubits() {
                assert!(q.0 < 12);
            }
        }
    }

    #[test]
    fn window_bounds_operand_spread() {
        let c = Reversible::new(40)
            .counts(&[(3, 60)])
            .window(6)
            .seed(2)
            .build();
        for op in c.iter() {
            let min = op.qubits().iter().map(|q| q.0).min().unwrap();
            let max = op.qubits().iter().map(|q| q.0).max().unwrap();
            assert!(max - min < 6, "operands {min}..{max} exceed window");
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_arity_above_width() {
        Reversible::new(3).counts(&[(5, 1)]);
    }

    #[test]
    fn empty_profile_gives_empty_circuit() {
        let c = Reversible::new(8).build();
        assert!(c.is_empty());
    }
}
