//! Seeded benchmark circuit generators.
//!
//! These reproduce the workload structure of the paper's Table 1b:
//!
//! * [`Qft`] — Quantum Fourier Transform (controlled-phase ladder),
//! * [`Qpe`] — Quantum Phase Estimation (controlled powers + inverse QFT),
//! * [`GraphState`] — graph-state preparation (`H`⊗ⁿ + one CZ per edge),
//! * [`Reversible`] — synthetic reversible-function circuits built from
//!   `CᵐX` gates matching the `bn`, `call`, `gray` gate-count profiles
//!   (substitute for SyReC-synthesized circuits; see DESIGN.md §4.2),
//! * [`RandomCircuit`] — layered random circuits for tests and fuzzing,
//! * [`Qaoa`] — QAOA MaxCut ansatz over seeded random graphs,
//! * [`ghz`] / [`cuccaro_adder`] — structured workloads (nearest-neighbour
//!   chain; deep Toffoli ladder stressing multi-qubit position finding).
//!
//! All generators are deterministic given their seed.

mod arithmetic;
mod graph_state;
mod qaoa;
mod qft;
mod qpe;
mod random;
mod reversible;

pub use arithmetic::{cuccaro_adder, ghz};
pub use graph_state::GraphState;
pub use qaoa::Qaoa;
pub use qft::Qft;
pub use qpe::Qpe;
pub use random::RandomCircuit;
pub use reversible::Reversible;

use crate::circuit::Circuit;
use crate::decompose::decompose_to_native;

/// The six benchmarks of the paper's Table 1b at native gate level,
/// scaled by `scale ∈ (0, 1]` (1.0 = paper size: 200-qubit QFT/QPE/graph,
/// full bn/call/gray profiles).
///
/// Returns `(name, circuit)` pairs in table order. Multi-qubit `CᵐX`
/// benchmarks are decomposed to `CᵐZ` as in the paper (§4.1).
///
/// # Panics
///
/// Panics if `scale` is not in `(0, 1]`.
pub fn table1b_suite(scale: f64) -> Vec<(&'static str, Circuit)> {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let n = |full: u32| -> u32 { ((f64::from(full) * scale).round() as u32).max(5) };
    let c = |full: usize| -> usize { ((full as f64) * scale).round() as usize };

    let graph = GraphState::new(n(200)).edges(c(215)).seed(7).build();
    // The paper's MQT-Bench exports report ~10k entangling gates for the
    // 200-qubit QFT/QPE — an approximate QFT. Cutoff 59 reproduces that
    // count at full scale (59·200 − 59·60/2 = 10030) and scales linearly.
    let cutoff = ((f64::from(n(200)) * 59.0 / 200.0).round() as u32).max(3);
    let qft = Qft::new(n(200)).approximate(cutoff).build();
    let qpe = Qpe::new(n(200)).approximate(cutoff).build();
    let bn = Reversible::new(n(48))
        .counts(&[(2, c(133)), (3, c(87))])
        .seed(11)
        .build();
    let call = Reversible::new(n(25))
        .counts(&[(3, c(192)), (4, c(56))])
        .seed(13)
        .build();
    let gray = Reversible::new(n(33))
        .counts(&[(3, c(62))])
        .seed(17)
        .build();

    vec![
        ("graph", decompose_to_native(&graph)),
        ("qft", decompose_to_native(&qft)),
        ("qpe", decompose_to_native(&qpe)),
        ("bn", decompose_to_native(&bn)),
        ("call", decompose_to_native(&call)),
        ("gray", decompose_to_native(&gray)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_benchmarks() {
        let suite = table1b_suite(0.1);
        assert_eq!(suite.len(), 6);
        let names: Vec<_> = suite.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["graph", "qft", "qpe", "bn", "call", "gray"]);
        for (_, c) in &suite {
            assert!(c.is_native());
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn full_scale_matches_table1b_profiles() {
        let suite = table1b_suite(1.0);
        let by_name: std::collections::HashMap<_, _> =
            suite.iter().map(|(n, c)| (*n, c.stats())).collect();
        assert_eq!(by_name["graph"].num_qubits, 200);
        assert_eq!(by_name["graph"].cz_family_count(2), 215);
        // Approximate QFT/QPE match the paper's ~10k entangling gates
        // (9998 and 10340 in Table 1b) within a few percent.
        assert_eq!(by_name["qft"].cz_family_count(2), 10030);
        assert_eq!(by_name["qpe"].cz_family_count(2), 10170);
        assert_eq!(by_name["bn"].num_qubits, 48);
        assert_eq!(by_name["bn"].cz_family_count(2), 133);
        assert_eq!(by_name["bn"].cz_family_count(3), 87);
        assert_eq!(by_name["call"].num_qubits, 25);
        assert_eq!(by_name["call"].cz_family_count(3), 192);
        assert_eq!(by_name["call"].cz_family_count(4), 56);
        assert_eq!(by_name["gray"].num_qubits, 33);
        assert_eq!(by_name["gray"].cz_family_count(3), 62);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn suite_rejects_zero_scale() {
        table1b_suite(0.0);
    }

    #[test]
    fn suite_is_deterministic() {
        let a = table1b_suite(0.2);
        let b = table1b_suite(0.2);
        for ((_, ca), (_, cb)) in a.iter().zip(&b) {
            assert_eq!(ca, cb);
        }
    }
}
