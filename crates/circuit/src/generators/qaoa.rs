//! QAOA MaxCut circuit generator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::circuit::Circuit;

/// Builds a depth-`p` QAOA MaxCut ansatz over a seeded random graph:
/// per layer, one `RZZ`-style phase separator per edge (compiled as
/// `CZ`-conjugated `RZ`, i.e. `CX·RZ·CX` in the H-free diagonal form
/// `CP`-equivalent) followed by the `RX` mixer on every qubit.
///
/// The phase separator `e^{-iγ Z⊗Z/2}` is emitted as
/// `CX(a,b) · RZ(γ, b) · CX(a,b)`, matching standard transpilation; after
/// native decomposition each edge costs two CZ-class gates.
///
/// # Example
///
/// ```
/// use na_circuit::generators::Qaoa;
/// let c = Qaoa::new(12).layers(2).edges(18).seed(5).build();
/// assert_eq!(c.num_qubits(), 12);
/// // Two CX per edge per layer.
/// assert_eq!(c.iter().filter(|op| op.is_entangling()).count(), 2 * 18 * 2);
/// ```
#[derive(Debug, Clone)]
pub struct Qaoa {
    num_qubits: u32,
    layers: usize,
    edges: usize,
    seed: u64,
}

impl Qaoa {
    /// A QAOA ansatz on `num_qubits` qubits (≥ 2), one layer, 3-regular-ish
    /// edge count by default.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits < 2`.
    pub fn new(num_qubits: u32) -> Self {
        assert!(num_qubits >= 2, "QAOA needs at least 2 qubits");
        Qaoa {
            num_qubits,
            layers: 1,
            edges: (num_qubits as usize * 3) / 2,
            seed: 0,
        }
    }

    /// Sets the number of QAOA layers `p`.
    pub fn layers(mut self, p: usize) -> Self {
        self.layers = p;
        self
    }

    /// Sets the number of graph edges (clamped to the simple-graph
    /// maximum).
    pub fn edges(mut self, edges: usize) -> Self {
        self.edges = edges;
        self
    }

    /// Sets the RNG seed (graph structure and angles).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the circuit.
    pub fn build(&self) -> Circuit {
        let n = self.num_qubits;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let max_edges = (n as usize) * (n as usize - 1) / 2;
        let target = self.edges.min(max_edges).max(1);
        let mut edges = Vec::with_capacity(target);
        let mut used = std::collections::HashSet::new();
        while edges.len() < target {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a == b {
                continue;
            }
            let e = (a.min(b), a.max(b));
            if used.insert(e) {
                edges.push(e);
            }
        }

        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for _ in 0..self.layers {
            let gamma: f64 = rng.random_range(0.1..std::f64::consts::PI);
            let beta: f64 = rng.random_range(0.1..std::f64::consts::FRAC_PI_2);
            for &(a, b) in &edges {
                c.cx(a, b).rz(gamma, b).cx(a, b);
            }
            for q in 0..n {
                c.push(
                    crate::gate::Operation::new(
                        crate::gate::GateKind::Rx(2.0 * beta),
                        vec![crate::gate::Qubit(q)],
                    )
                    .expect("valid rx"),
                )
                .expect("in range");
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Statevector;

    #[test]
    fn structure_per_layer() {
        let c = Qaoa::new(8).layers(3).edges(10).seed(2).build();
        let entangling = c.iter().filter(|op| op.is_entangling()).count();
        assert_eq!(entangling, 3 * 10 * 2);
        // Mixers: 8 RX per layer plus initial 8 H.
        let single = c.iter().filter(|op| op.arity() == 1).count();
        assert_eq!(single, 8 + 3 * (10 + 8)); // rz per edge + rx per qubit
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Qaoa::new(10).layers(2).seed(4).build();
        let b = Qaoa::new(10).layers(2).seed(4).build();
        assert_eq!(a, b);
    }

    #[test]
    fn preserves_norm() {
        let c = Qaoa::new(6).layers(2).seed(1).build();
        let psi = Statevector::simulate(&c);
        assert!((psi.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edge_count_clamped() {
        let c = Qaoa::new(4).edges(100).seed(0).build();
        let entangling = c.iter().filter(|op| op.is_entangling()).count();
        assert_eq!(entangling, 6 * 2); // K4 has 6 edges
    }
}
