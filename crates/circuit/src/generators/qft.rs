//! Quantum Fourier Transform generator.

use std::f64::consts::PI;

use crate::circuit::Circuit;

/// Builds the textbook QFT: for each qubit `i` a Hadamard followed by
/// controlled-phase gates `CP(π/2^{j−i})` from every later qubit `j`.
///
/// The optional [`Qft::approximate`] cutoff drops rotations with
/// `j − i > k` (the *approximate QFT*), which both reduces gate count and
/// matches how toolchains prune numerically irrelevant small-angle
/// rotations on large instances (the paper's 200-qubit QFT reports
/// ~10k entangling gates rather than the full 19 900).
///
/// # Example
///
/// ```
/// use na_circuit::generators::Qft;
/// let full = Qft::new(10).build();
/// assert_eq!(full.stats().cz_family_count(2), 45);
/// let approx = Qft::new(10).approximate(3).build();
/// assert_eq!(approx.stats().cz_family_count(2), 3 * 10 - 6);
/// ```
#[derive(Debug, Clone)]
pub struct Qft {
    num_qubits: u32,
    cutoff: Option<u32>,
    final_swaps: bool,
}

impl Qft {
    /// A full QFT on `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Qft {
            num_qubits,
            cutoff: None,
            final_swaps: false,
        }
    }

    /// Keeps only controlled-phase gates between qubits at distance
    /// ≤ `k` (approximate QFT).
    pub fn approximate(mut self, k: u32) -> Self {
        self.cutoff = Some(k);
        self
    }

    /// Appends the bit-reversal SWAP network (off by default — most
    /// mapping studies treat the reversal as a relabeling).
    pub fn with_final_swaps(mut self) -> Self {
        self.final_swaps = true;
        self
    }

    /// Generates the circuit.
    pub fn build(&self) -> Circuit {
        let n = self.num_qubits;
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.h(i);
            for j in (i + 1)..n {
                let dist = j - i;
                if let Some(k) = self.cutoff {
                    if dist > k {
                        break;
                    }
                }
                let theta = PI / f64::from(1u32 << dist.min(30));
                c.cp(theta, j, i);
            }
        }
        if self.final_swaps {
            for i in 0..n / 2 {
                c.swap(i, n - 1 - i);
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_qft_gate_count() {
        let c = Qft::new(8).build();
        let s = c.stats();
        assert_eq!(s.single_qubit, 8);
        assert_eq!(s.cz_family_count(2), 28);
        assert_eq!(c.num_qubits(), 8);
    }

    #[test]
    fn approximate_cutoff_reduces_count() {
        let full = Qft::new(16).build().len();
        let approx = Qft::new(16).approximate(4).build().len();
        assert!(approx < full);
    }

    #[test]
    fn cutoff_count_formula() {
        // k·n − k(k+1)/2 CP gates for cutoff k ≤ n.
        let (n, k) = (20u32, 5u32);
        let c = Qft::new(n).approximate(k).build();
        let expect = (k * n - k * (k + 1) / 2) as usize;
        assert_eq!(c.stats().cz_family_count(2), expect);
    }

    #[test]
    fn angles_halve_with_distance() {
        let c = Qft::new(3).build();
        // Ops: h0, cp(pi/2, 1, 0), cp(pi/4, 2, 0), h1, cp(pi/2, 2, 1), h2
        use crate::gate::GateKind;
        let angles: Vec<f64> = c
            .iter()
            .filter_map(|op| match op.kind() {
                GateKind::Cp(t) => Some(*t),
                _ => None,
            })
            .collect();
        assert_eq!(angles.len(), 3);
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] - PI / 4.0).abs() < 1e-12);
        assert!((angles[2] - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn final_swaps_added_when_requested() {
        let c = Qft::new(6).with_final_swaps().build();
        let swaps = c
            .iter()
            .filter(|op| matches!(op.kind(), crate::gate::GateKind::Swap))
            .count();
        assert_eq!(swaps, 3);
    }

    #[test]
    fn all_cp_gates_commute_pairwise() {
        // Structural property behind the DAG's wide QFT frontier.
        let c = Qft::new(5).build();
        let cps: Vec<_> = c.iter().filter(|op| op.kind().is_cz_family()).collect();
        for a in &cps {
            for b in &cps {
                assert!(a.commutes_with(b));
            }
        }
    }
}
