//! Arithmetic circuits: GHZ ladders and the Cuccaro ripple-carry adder.
//!
//! Both exercise mapper behaviours the random benchmarks do not: GHZ is a
//! pure nearest-neighbour chain (the easiest possible routing), while the
//! Cuccaro adder is a deep Toffoli ladder whose `CCX` gates stress the
//! multi-qubit position finding of §3.1.3.

use crate::circuit::Circuit;

/// Builds an `n`-qubit GHZ preparation: `H(0)` followed by a CNOT chain.
///
/// # Example
///
/// ```
/// use na_circuit::generators::ghz;
/// let c = ghz(5);
/// assert_eq!(c.len(), 5); // 1 H + 4 CX
/// ```
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ghz(n: u32) -> Circuit {
    assert!(n >= 2, "GHZ needs at least 2 qubits");
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 0..n - 1 {
        c.cx(i, i + 1);
    }
    c
}

/// Builds a Cuccaro ripple-carry adder computing `b += a` on two
/// `bits`-bit registers with one ancilla carry qubit (`2·bits + 2`
/// qubits total: `cin, a₀, b₀, a₁, b₁, …, cout`).
///
/// Layout follows Cuccaro et al. (quant-ph/0410184): a MAJ ladder, the
/// carry-out CNOT, and the UMA ladder.
///
/// # Example
///
/// ```
/// use na_circuit::generators::cuccaro_adder;
/// let c = cuccaro_adder(4);
/// assert_eq!(c.num_qubits(), 10);
/// assert!(c.iter().any(|op| op.arity() == 3)); // Toffolis
/// ```
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn cuccaro_adder(bits: u32) -> Circuit {
    assert!(bits > 0, "adder needs at least one bit");
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n);
    // Qubit roles: 0 = cin; a_i = 1 + 2i; b_i = 2 + 2i; cout = n - 1.
    let a = |i: u32| 1 + 2 * i;
    let b = |i: u32| 2 + 2 * i;
    let cin = 0u32;
    let cout = n - 1;

    let maj = |c: &mut Circuit, x: u32, y: u32, z: u32| {
        c.cx(z, y);
        c.cx(z, x);
        c.mcx(&[x, y, z]);
    };
    let uma = |c: &mut Circuit, x: u32, y: u32, z: u32| {
        c.mcx(&[x, y, z]);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(bits - 1), cout);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Statevector;

    #[test]
    fn ghz_entangles_all_qubits() {
        let psi = Statevector::simulate(&ghz(5));
        assert!((psi.probability(0) - 0.5).abs() < 1e-10);
        assert!((psi.probability((1 << 5) - 1) - 0.5).abs() < 1e-10);
    }

    /// Exhaustive functional check of the 2-bit adder: for all inputs
    /// a, b ∈ {0..3}, the b register must end as (a + b) mod 4 and the
    /// carry-out must hold the overflow bit.
    #[test]
    fn two_bit_adder_truth_table() {
        let bits = 2u32;
        for a_val in 0u32..4 {
            for b_val in 0u32..4 {
                let mut c = Circuit::new(2 * bits + 2);
                // Prepare inputs: a_i at qubit 1+2i, b_i at 2+2i.
                for i in 0..bits {
                    if a_val >> i & 1 == 1 {
                        c.x(1 + 2 * i);
                    }
                    if b_val >> i & 1 == 1 {
                        c.x(2 + 2 * i);
                    }
                }
                c.extend_from(&cuccaro_adder(bits));
                let psi = Statevector::simulate(&c);
                // Find the (unique) basis state with probability 1.
                let idx = psi
                    .amplitudes()
                    .iter()
                    .position(|amp| amp.norm_sq() > 0.99)
                    .expect("classical output");
                let sum = a_val + b_val;
                // Decode: b bits at 2+2i, carry at the last qubit.
                let mut b_out = 0u32;
                for i in 0..bits {
                    if idx >> (2 + 2 * i) & 1 == 1 {
                        b_out |= 1 << i;
                    }
                }
                let carry = (idx >> (2 * bits + 1)) & 1;
                assert_eq!(b_out, sum % 4, "a={a_val} b={b_val}");
                assert_eq!(carry as u32, sum / 4, "a={a_val} b={b_val}");
                // The a register must be restored.
                let mut a_out = 0u32;
                for i in 0..bits {
                    if idx >> (1 + 2 * i) & 1 == 1 {
                        a_out |= 1 << i;
                    }
                }
                assert_eq!(a_out, a_val, "a register not restored");
            }
        }
    }

    #[test]
    fn adder_gate_counts_scale_linearly() {
        let small = cuccaro_adder(2).len();
        let large = cuccaro_adder(4).len();
        assert!(large > small);
        let toffolis = |c: &Circuit| c.iter().filter(|op| op.arity() == 3).count();
        assert_eq!(toffolis(&cuccaro_adder(3)), 2 * 3); // MAJ + UMA per bit
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn ghz_rejects_single_qubit() {
        ghz(1);
    }
}
