//! Quantum Phase Estimation generator.

use std::f64::consts::PI;

use crate::circuit::Circuit;

/// Builds a Quantum Phase Estimation circuit on `n` qubits: `n − 1`
/// counting qubits estimating the phase of a diagonal unitary applied to
/// one target qubit (the last).
///
/// Structure: Hadamards on the counting register, controlled phase
/// rotations `CP(φ·2^j)` from counting qubit `j` to the target, then the
/// inverse QFT on the counting register. The eigenphase `φ` defaults to
/// `2π·(1/3)` (an intentionally non-dyadic value).
///
/// # Example
///
/// ```
/// use na_circuit::generators::Qpe;
/// let c = Qpe::new(6).build();
/// assert_eq!(c.num_qubits(), 6);
/// // 5 controlled powers + inverse QFT ladder on 5 qubits.
/// assert_eq!(c.stats().cz_family_count(2), 5 + 10);
/// ```
#[derive(Debug, Clone)]
pub struct Qpe {
    num_qubits: u32,
    phase: f64,
    cutoff: Option<u32>,
}

impl Qpe {
    /// A QPE circuit on `num_qubits` total qubits (≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits < 2`.
    pub fn new(num_qubits: u32) -> Self {
        assert!(num_qubits >= 2, "QPE needs at least 2 qubits");
        Qpe {
            num_qubits,
            phase: 2.0 * PI / 3.0,
            cutoff: None,
        }
    }

    /// Keeps only inverse-QFT rotations between counting qubits at
    /// distance ≤ `k` (approximate QPE — mirrors
    /// [`Qft::approximate`](crate::generators::Qft::approximate)).
    pub fn approximate(mut self, k: u32) -> Self {
        self.cutoff = Some(k);
        self
    }

    /// Sets the eigenphase of the estimated unitary (radians).
    pub fn phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Generates the circuit.
    pub fn build(&self) -> Circuit {
        let n = self.num_qubits;
        let counting = n - 1;
        let target = n - 1;
        let mut c = Circuit::new(n);

        // Superposition over the counting register.
        for i in 0..counting {
            c.h(i);
        }
        // Controlled-U^(2^j): U diagonal, so each is a single CP.
        for j in 0..counting {
            let pow = f64::from(1u32 << j.min(30));
            let theta = (self.phase * pow) % (2.0 * PI);
            c.cp(theta, j, target);
        }
        // Inverse QFT on the counting register.
        for i in (0..counting).rev() {
            for j in (i + 1..counting).rev() {
                let dist = j - i;
                if let Some(k) = self.cutoff {
                    if dist > k {
                        continue;
                    }
                }
                let theta = -PI / f64::from(1u32 << dist.min(30));
                c.cp(theta, j, i);
            }
            c.h(i);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_scale_quadratically() {
        let c = Qpe::new(10).build();
        let s = c.stats();
        let counting = 9usize;
        assert_eq!(s.single_qubit, 2 * counting); // H layers before and inside iQFT
        assert_eq!(
            s.cz_family_count(2),
            counting + counting * (counting - 1) / 2
        );
    }

    #[test]
    fn target_participates_in_controlled_powers() {
        let c = Qpe::new(5).build();
        use crate::gate::Qubit;
        let target = Qubit(4);
        let on_target = c.iter().filter(|op| op.acts_on(target)).count();
        assert_eq!(on_target, 4); // one CP per counting qubit
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_qubit() {
        Qpe::new(1);
    }

    #[test]
    fn custom_phase_changes_angles() {
        use crate::gate::GateKind;
        let a = Qpe::new(4).phase(0.1).build();
        let b = Qpe::new(4).phase(0.2).build();
        let angle = |c: &Circuit| -> f64 {
            c.iter()
                .find_map(|op| match op.kind() {
                    GateKind::Cp(t) => Some(*t),
                    _ => None,
                })
                .unwrap()
        };
        assert!((2.0 * angle(&a) - angle(&b)).abs() < 1e-12);
    }

    #[test]
    fn qpe_structure_ends_with_h() {
        let c = Qpe::new(4).build();
        let last = c.ops().last().unwrap();
        assert_eq!(last.kind().name(), "h");
    }
}
