//! Decomposition of non-native gates to the NA-native set.
//!
//! Neutral atoms natively support arbitrary single-qubit rotations and the
//! Rydberg `CᵐZ` family (paper §2.1). The paper's benchmarks use `CᵐX`
//! gates which "have been decomposed to natively supported CᵐZ gates"
//! (§4.1), and every routing SWAP is ultimately realized as 3 CZ plus
//! single-qubit rotations (§2.2, §3.2 (5)).

use crate::circuit::Circuit;
use crate::gate::{GateKind, Operation, Qubit};

/// Rewrites `circuit` so that every operation is NA-native.
///
/// * `CᵐX(controls…, target)` → `H(target) · CᵐZ(all) · H(target)`
/// * `SWAP(a, b)` → `CNOT(a,b)·CNOT(b,a)·CNOT(a,b)` with each CNOT
///   expanded to `H(t) · CZ · H(t)`: 3 CZ + 6 H in total.
/// * Native gates pass through unchanged.
///
/// # Example
///
/// ```
/// use na_circuit::{Circuit, decompose_to_native};
/// let mut c = Circuit::new(3);
/// c.mcx(&[0, 1, 2]); // Toffoli
/// let native = decompose_to_native(&c);
/// assert!(native.is_native());
/// assert_eq!(native.len(), 3); // H, CCZ, H
/// ```
pub fn decompose_to_native(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.iter() {
        match op.kind() {
            GateKind::Mcx => {
                let qubits = op.qubits();
                let target = *qubits.last().expect("mcx has operands");
                push(&mut out, GateKind::H, vec![target]);
                if qubits.len() == 2 {
                    push(&mut out, GateKind::Cz, qubits.to_vec());
                } else {
                    push(&mut out, GateKind::Mcz, qubits.to_vec());
                }
                push(&mut out, GateKind::H, vec![target]);
            }
            GateKind::Swap => {
                let (a, b) = (op.qubits()[0], op.qubits()[1]);
                for target in [b, a, b] {
                    push(&mut out, GateKind::H, vec![target]);
                    push(&mut out, GateKind::Cz, vec![a, b]);
                    push(&mut out, GateKind::H, vec![target]);
                }
            }
            _ => {
                out.push(op.clone()).expect("same width");
            }
        }
    }
    out
}

fn push(circuit: &mut Circuit, kind: GateKind, qubits: Vec<Qubit>) {
    let op = Operation::new(kind, qubits).expect("decomposition emits valid gates");
    circuit.push(op).expect("decomposition stays in range");
}

#[cfg(test)]
mod tests {
    use super::*;
    use na_arch::HardwareParams;

    #[test]
    fn cx_becomes_h_cz_h() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let native = decompose_to_native(&c);
        let names: Vec<_> = native.iter().map(|op| op.kind().name()).collect();
        assert_eq!(names, ["h", "cz", "h"]);
        // H applied on the target qubit.
        assert_eq!(native.ops()[0].qubits(), &[Qubit(1)]);
    }

    #[test]
    fn toffoli_keeps_arity() {
        let mut c = Circuit::new(4);
        c.mcx(&[0, 1, 2, 3]);
        let native = decompose_to_native(&c);
        let stats = native.stats();
        assert_eq!(stats.cz_family_count(4), 1);
        assert_eq!(stats.single_qubit, 2);
    }

    #[test]
    fn swap_costs_three_cz_six_h() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let native = decompose_to_native(&c);
        let stats = native.stats();
        assert_eq!(stats.cz_family_count(2), 3);
        assert_eq!(stats.single_qubit, 6);
        assert!(native.is_native());
    }

    #[test]
    fn swap_decomposition_fidelity_matches_params_model() {
        let p = HardwareParams::mixed();
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let native = decompose_to_native(&c);
        let log_f: f64 = native.log_fidelity(&p);
        assert!((log_f.exp() - p.swap_fidelity()).abs() < 1e-12);
    }

    #[test]
    fn native_ops_unchanged() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).ccz(0, 1, 2).cp(0.2, 1, 2).rz(0.4, 0);
        let native = decompose_to_native(&c);
        assert_eq!(&c, &native);
    }

    #[test]
    fn mixed_circuit_fully_native() {
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 1).mcx(&[1, 2, 3]).swap(3, 4).ccz(0, 2, 4);
        let native = decompose_to_native(&c);
        assert!(native.is_native());
        // Entangling count: cx→1, mcx→1, swap→3, ccz→1.
        assert_eq!(native.entangling_count(), 6);
    }
}
