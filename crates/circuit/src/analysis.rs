//! Structural circuit metrics.
//!
//! The paper closes by observing that "the optimal ratio α between gate-
//! and shuttling-mapping varies for different circuits, indicating a
//! connection between circuit structure and preferred mapping capability"
//! and leaves the systematic study as future work (§4.2). This module
//! provides the structural quantities such a study needs; see
//! `examples/structure_study.rs` for the study itself.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::circuit::Circuit;
use crate::dag::CircuitDag;

/// Structural metrics of a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureMetrics {
    /// Circuit width.
    pub num_qubits: u32,
    /// Total operation count.
    pub num_ops: usize,
    /// Dependency depth (longest path in the commutation-aware DAG).
    pub depth: usize,
    /// Dependency depth counting only entangling operations.
    pub entangling_depth: usize,
    /// Average available parallelism: `num_ops / depth`.
    pub parallelism: f64,
    /// Number of distinct interacting qubit pairs.
    pub interaction_pairs: usize,
    /// Average degree of the interaction graph.
    pub interaction_degree_avg: f64,
    /// Maximum degree of the interaction graph.
    pub interaction_degree_max: usize,
    /// Mean qubit-index distance of entangling gates — a proxy for how
    /// far apart partners start under the identity layout.
    pub index_locality_avg: f64,
    /// Fraction of entangling gates with three or more operands.
    pub multi_qubit_fraction: f64,
}

impl StructureMetrics {
    /// Computes all metrics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let dag = CircuitDag::new(circuit);
        let ops = circuit.ops();

        // Longest paths over the DAG (overall and entangling-only).
        let order = dag.topological_order();
        let mut level = vec![0usize; ops.len()];
        let mut ent_level = vec![0usize; ops.len()];
        let mut depth = 0usize;
        let mut entangling_depth = 0usize;
        for &i in &order {
            let own = 1;
            let ent_own = usize::from(ops[i].is_entangling());
            let (mut best, mut ent_best) = (0, 0);
            for &p in dag.predecessors(i) {
                best = best.max(level[p]);
                ent_best = ent_best.max(ent_level[p]);
            }
            level[i] = best + own;
            ent_level[i] = ent_best + ent_own;
            depth = depth.max(level[i]);
            entangling_depth = entangling_depth.max(ent_level[i]);
        }

        // Interaction graph over qubit pairs.
        let mut degree: HashMap<u32, usize> = HashMap::new();
        let mut pairs: HashMap<(u32, u32), usize> = HashMap::new();
        let mut index_dist_sum = 0.0;
        let mut entangling = 0usize;
        let mut multi = 0usize;
        for op in ops {
            if !op.is_entangling() {
                continue;
            }
            entangling += 1;
            if op.arity() >= 3 {
                multi += 1;
            }
            let qs = op.qubits();
            let mut op_dist = 0.0;
            let mut op_pairs = 0usize;
            for (i, a) in qs.iter().enumerate() {
                for b in &qs[i + 1..] {
                    let key = (a.0.min(b.0), a.0.max(b.0));
                    if *pairs.entry(key).or_insert(0) == 0 {
                        *degree.entry(key.0).or_insert(0) += 1;
                        *degree.entry(key.1).or_insert(0) += 1;
                    }
                    *pairs.get_mut(&key).expect("just inserted") += 1;
                    op_dist += f64::from(key.1 - key.0);
                    op_pairs += 1;
                }
            }
            if op_pairs > 0 {
                index_dist_sum += op_dist / op_pairs as f64;
            }
        }

        let degree_max = degree.values().copied().max().unwrap_or(0);
        let degree_avg = if circuit.num_qubits() > 0 {
            2.0 * pairs.len() as f64 / f64::from(circuit.num_qubits())
        } else {
            0.0
        };

        StructureMetrics {
            num_qubits: circuit.num_qubits(),
            num_ops: ops.len(),
            depth,
            entangling_depth,
            parallelism: if depth > 0 {
                ops.len() as f64 / depth as f64
            } else {
                0.0
            },
            interaction_pairs: pairs.len(),
            interaction_degree_avg: degree_avg,
            interaction_degree_max: degree_max,
            index_locality_avg: if entangling > 0 {
                index_dist_sum / entangling as f64
            } else {
                0.0
            },
            multi_qubit_fraction: if entangling > 0 {
                multi as f64 / entangling as f64
            } else {
                0.0
            },
        }
    }
}

impl std::fmt::Display for StructureMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} ops={} depth={} (2q-depth {}) par={:.2} pairs={} deg(avg/max)={:.2}/{} \
             idx-dist={:.1} multiq={:.0}%",
            self.num_qubits,
            self.num_ops,
            self.depth,
            self.entangling_depth,
            self.parallelism,
            self.interaction_pairs,
            self.interaction_degree_avg,
            self.interaction_degree_max,
            self.index_locality_avg,
            100.0 * self.multi_qubit_fraction
        )
    }
}

/// The interaction multigraph of a circuit: edge `(a, b) → count` of
/// entangling gate pairs coupling qubits `a < b`.
pub fn interaction_graph(circuit: &Circuit) -> HashMap<(u32, u32), usize> {
    let mut pairs = HashMap::new();
    for op in circuit.iter().filter(|op| op.is_entangling()) {
        let qs = op.qubits();
        for (i, a) in qs.iter().enumerate() {
            for b in &qs[i + 1..] {
                *pairs.entry((a.0.min(b.0), a.0.max(b.0))).or_insert(0) += 1;
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{ghz, GraphState, Qft};

    #[test]
    fn ghz_is_deep_and_serial() {
        let m = StructureMetrics::of(&ghz(8));
        // CNOT chain: every gate depends on the previous one.
        assert_eq!(m.depth, 8); // h + 7 cx
        assert!(m.parallelism < 1.5);
        assert_eq!(m.interaction_pairs, 7);
        assert!((m.index_locality_avg - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qft_ladder_is_wide() {
        let m = StructureMetrics::of(&Qft::new(10).build());
        // Commuting CPs expose large frontiers: parallelism well above 1.
        assert!(m.parallelism > 2.0, "parallelism = {}", m.parallelism);
        assert_eq!(m.interaction_pairs, 45); // all-to-all
        assert_eq!(m.interaction_degree_max, 9);
    }

    #[test]
    fn graph_state_is_shallow() {
        let m = StructureMetrics::of(&GraphState::new(30).edges(35).seed(1).build());
        assert!(m.depth < 35);
        assert_eq!(m.multi_qubit_fraction, 0.0);
        assert_eq!(m.interaction_pairs, 35);
    }

    #[test]
    fn multi_qubit_fraction_counts_ccz() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).ccz(1, 2, 3);
        let m = StructureMetrics::of(&c);
        assert!((m.multi_qubit_fraction - 0.5).abs() < 1e-12);
        // CCZ contributes 3 pairs.
        assert_eq!(m.interaction_pairs, 4);
    }

    #[test]
    fn interaction_graph_counts_multiplicity() {
        let mut c = Circuit::new(3);
        c.cz(0, 1).cz(1, 0).cz(1, 2);
        let g = interaction_graph(&c);
        assert_eq!(g[&(0, 1)], 2);
        assert_eq!(g[&(1, 2)], 1);
    }

    #[test]
    fn empty_circuit_has_zero_metrics() {
        let m = StructureMetrics::of(&Circuit::new(5));
        assert_eq!(m.depth, 0);
        assert_eq!(m.interaction_pairs, 0);
        assert_eq!(m.parallelism, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let text = StructureMetrics::of(&ghz(4)).to_string();
        assert!(text.contains("n=4"));
        assert!(text.contains("depth="));
    }
}
