//! Error types for circuit construction.

use std::error::Error;
use std::fmt;

/// Errors raised while building or validating circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit index beyond the circuit width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// The circuit width.
        num_qubits: u32,
    },
    /// A gate listed the same qubit more than once.
    DuplicateQubit {
        /// The repeated qubit index.
        qubit: u32,
    },
    /// A gate was constructed with the wrong number of qubits.
    ArityMismatch {
        /// Gate name.
        gate: &'static str,
        /// Expected qubit count (minimum for variadic gates).
        expected: usize,
        /// Provided qubit count.
        got: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} listed more than once in one gate")
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                got,
            } => {
                write!(f, "gate {gate} expects {expected} qubits, got {got}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = CircuitError::ArityMismatch {
            gate: "cz",
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("cz"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
