//! QASM round-trip property tests: import→export→import must be the
//! identity on the parsed circuit, across every generator family and
//! random rotation angles.

use na_circuit::generators::{
    cuccaro_adder, ghz, GraphState, Qaoa, Qft, Qpe, RandomCircuit, Reversible,
};
use na_circuit::{decompose_to_native, qasm, Circuit};
use proptest::prelude::*;

/// A random circuit from any generator family (pre- or post-decompose,
/// so both the `mcz`/`mcx` extension path and the plain-QASM subset are
/// exercised).
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (0u8..8, 0u64..400, proptest::bool::ANY).prop_map(|(kind, seed, native)| {
        let c = match kind {
            0 => GraphState::new(8 + (seed % 8) as u32)
                .edges(10 + (seed % 10) as usize)
                .seed(seed)
                .build(),
            1 => Qft::new(5 + (seed % 8) as u32).build(),
            2 => Qpe::new(5 + (seed % 6) as u32).build(),
            3 => Qaoa::new(6 + (seed % 8) as u32)
                .edges(8 + (seed % 6) as usize)
                .layers(1 + (seed % 3) as usize)
                .seed(seed)
                .build(),
            4 => RandomCircuit::new(10)
                .layers(2 + (seed % 5) as usize)
                .multi_qubit_fraction(0.3)
                .seed(seed)
                .build(),
            5 => Reversible::new(8 + (seed % 6) as u32)
                .counts(&[(2, 10), (3, 5), (4, 2)])
                .seed(seed)
                .build(),
            6 => ghz(6 + (seed % 10) as u32),
            _ => cuccaro_adder(3 + (seed % 3) as u32),
        };
        if native {
            decompose_to_native(&c)
        } else {
            c
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `from_qasm(to_qasm(c))` reproduces `c` exactly (gate kinds,
    /// operand order, full-precision angles), and a second
    /// export→import cycle is the identity on the re-imported circuit.
    #[test]
    fn import_export_import_roundtrip(circuit in arb_circuit()) {
        let qasm1 = qasm::to_qasm(&circuit);
        let back1 = qasm::from_qasm(&qasm1).expect("exported text parses");
        prop_assert_eq!(&back1, &circuit, "first round-trip diverged");

        let qasm2 = qasm::to_qasm(&back1);
        prop_assert_eq!(&qasm2, &qasm1, "export is not deterministic");
        let back2 = qasm::from_qasm(&qasm2).expect("re-exported text parses");
        prop_assert_eq!(&back2, &back1, "second round-trip diverged");
    }

    /// Angles survive text round-trips bit-exactly (shortest-roundtrip
    /// float formatting).
    #[test]
    fn rotation_angles_bit_exact(theta in -10.0f64..10.0, q in 0u32..4) {
        let mut c = Circuit::new(4);
        c.rz(theta, q).cp(theta * 0.5, q, (q + 1) % 4).u3(theta, -theta, 0.25, q);
        let back = qasm::from_qasm(&qasm::to_qasm(&c)).expect("parses");
        prop_assert_eq!(back, c);
    }
}
