//! The bounded MPMC work queue between admission control and the
//! worker pool.
//!
//! A plain `Mutex<VecDeque>` + `Condvar` pair: producers never block
//! ([`BoundedQueue::try_push`] rejects at capacity — that rejection *is*
//! the service's backpressure signal), consumers block in
//! [`BoundedQueue::pop`] until an item or shutdown arrives. Closing the
//! queue lets already-queued items drain: `pop` keeps returning work
//! until the queue is both closed **and** empty, which is exactly the
//! graceful-shutdown contract the worker pool needs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused an item. The item is handed
/// back so the caller can reply to the submitter instead of dropping
/// the job on the floor.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue sits at capacity; admission control should surface a
    /// typed "busy" rejection.
    Full(T),
    /// The queue was closed; the service is shutting down.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue holding at most `capacity` items
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking. Returns the queue depth *after* the
    /// push on success.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the item.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available and dequeues it. Returns
    /// `None` only once the queue is closed **and** drained — the
    /// worker-pool exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail, consumers drain the
    /// backlog and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Removes and returns every queued item without blocking — the
    /// shutdown path uses this to reply to jobs no worker will take.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("queue lock");
        state.items.drain(..).collect()
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn rejects_at_capacity_with_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Full(item)) => assert_eq!(item, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot again.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.try_push("c").unwrap(), 2);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert!(matches!(q.try_push(12), Err(PushError::Closed(12))));
        // Backlog still drains after close...
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        // ...and only then does pop signal exit.
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            })
        };
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![7, 8]);
    }

    #[test]
    fn drain_empties_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.drain(), vec![1, 2]);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.pop(), None);
    }
}
