//! Client-side retry with deterministic jittered exponential backoff.
//!
//! When admission control sheds a request (`busy`, `unmeetable`), the
//! right client response is to wait and resubmit — but a fleet of
//! clients retrying on the same schedule just reproduces the original
//! stampede. [`RetryPolicy`] spreads them out with exponential backoff
//! plus jitter, and keeps the jitter *deterministic* (a seeded xorshift
//! generator, no clock or OS entropy) so tests and CI replay identical
//! schedules.

use std::time::Duration;

/// A bounded retry schedule: exponential backoff from `base_delay`,
/// capped at `max_delay`, with ±50% deterministic jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (0 means "try once, never
    /// retry" — treated as 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Ceiling applied to the un-jittered backoff.
    pub max_delay: Duration,
    /// Seed of the jitter stream. Two clients with different seeds
    /// retry on different schedules; the same seed replays exactly.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `retry` (0-based: the
    /// delay between the first attempt and the second). Deterministic
    /// in (`seed`, `retry`).
    pub fn delay_for(&self, retry: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << retry.min(20));
        let capped = exp.min(self.max_delay).as_micros() as u64;
        // ±50% jitter: scale by a factor in [0.5, 1.5) drawn from a
        // seeded xorshift stream keyed on the retry number.
        let draw =
            xorshift64(self.seed ^ (u64::from(retry) + 1).wrapping_mul(0xa076_1d64_78bd_642f));
        let jittered = capped / 2 + draw % capped.max(1);
        Duration::from_micros(jittered)
    }

    /// Runs `op` until it succeeds, returns a non-retryable error, or
    /// the attempt budget is spent; sleeps the jittered backoff between
    /// attempts. The final error is returned as-is.
    ///
    /// # Errors
    ///
    /// The last error `op` produced.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut() -> Result<T, E>,
        retryable: impl Fn(&E) -> bool,
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let last_try = attempts - 1;
        for retry in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if retry < last_try && retryable(&e) => {
                    std::thread::sleep(self.delay_for(retry));
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the last attempt");
    }
}

/// One step of the xorshift64 generator — small, fast, and plenty for
/// decorrelating retry schedules.
fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(4),
            max_delay: Duration::from_millis(20),
            seed: 42,
        }
    }

    #[test]
    fn delays_are_deterministic_and_jittered_within_bounds() {
        let p = policy();
        for retry in 0..4 {
            let d = p.delay_for(retry);
            assert_eq!(d, p.delay_for(retry), "same (seed, retry) replays");
            let capped = (p.base_delay * (1 << retry)).min(p.max_delay);
            assert!(d >= capped / 2, "retry {retry}: {d:?} below jitter floor");
            assert!(d < capped * 3 / 2, "retry {retry}: {d:?} above ceiling");
        }
        let other = RetryPolicy {
            seed: 43,
            ..policy()
        };
        assert_ne!(other.delay_for(0), p.delay_for(0), "seeds decorrelate");
    }

    #[test]
    fn run_retries_until_success() {
        let calls = Cell::new(0u32);
        let out: Result<u32, &str> = policy().run(
            || {
                calls.set(calls.get() + 1);
                if calls.get() < 3 {
                    Err("busy")
                } else {
                    Ok(7)
                }
            },
            |_| true,
        );
        assert_eq!(out, Ok(7));
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn run_stops_on_non_retryable_and_exhausts_budget() {
        let calls = Cell::new(0u32);
        let out: Result<(), &str> = policy().run(
            || {
                calls.set(calls.get() + 1);
                Err("fatal")
            },
            |e| *e != "fatal",
        );
        assert_eq!(out, Err("fatal"));
        assert_eq!(calls.get(), 1, "non-retryable errors return immediately");

        calls.set(0);
        let out: Result<(), &str> = policy().run(
            || {
                calls.set(calls.get() + 1);
                Err("busy")
            },
            |_| true,
        );
        assert_eq!(out, Err("busy"));
        assert_eq!(calls.get(), 4, "budget caps the attempts");
    }
}
