//! The content-addressed artifact cache.
//!
//! Keys are [`na_pipeline::fingerprint::request_cache_key`] values —
//! stable content hashes over the *canonical serialization* of a
//! request's target, options and circuits, deliberately excluding
//! transport fields (`request_id`, `threads`). Values are the id-less
//! canonical response documents, so a hit is byte-identical to a cold
//! compile of the same content and each submitter's `request_id` is
//! spliced in per-response ([`na_pipeline::with_request_id`]).
//!
//! Eviction is LRU under a byte budget: every entry carries a
//! last-used stamp from a monotonic tick, and inserts evict
//! least-recently-used entries until the new body fits. The scan is
//! O(entries) per eviction — entry counts are small (response bodies
//! are kilobytes to megabytes against a multi-megabyte budget), so a
//! heap would be bookkeeping without a win.

use std::collections::HashMap;
use std::sync::Arc;

/// Counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactCacheStats {
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Bodies stored (re-insertions of the same key count too).
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bodies refused because they alone exceed the budget.
    pub oversized: u64,
}

struct Entry {
    body: Arc<str>,
    last_used: u64,
}

/// An LRU response cache bounded by total body bytes.
pub struct ArtifactCache {
    entries: HashMap<u64, Entry>,
    budget_bytes: usize,
    resident_bytes: usize,
    tick: u64,
    stats: ArtifactCacheStats,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("entries", &self.entries.len())
            .field("resident_bytes", &self.resident_bytes)
            .field("budget_bytes", &self.budget_bytes)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ArtifactCache {
    /// Creates an empty cache holding at most `budget_bytes` of
    /// response bodies.
    pub fn new(budget_bytes: usize) -> Self {
        ArtifactCache {
            entries: HashMap::new(),
            budget_bytes,
            resident_bytes: 0,
            tick: 0,
            stats: ArtifactCacheStats::default(),
        }
    }

    /// Looks up a response body by content key, refreshing its LRU
    /// stamp on a hit. The `Arc<str>` clone is O(1), so hits never copy
    /// the (potentially large) body.
    pub fn get(&mut self, key: u64) -> Option<Arc<str>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a response body under its content key, evicting
    /// least-recently-used entries until it fits. A body larger than
    /// the whole budget is refused (counted in
    /// [`ArtifactCacheStats::oversized`]) rather than flushing the
    /// entire cache for one giant artifact.
    pub fn insert(&mut self, key: u64, body: Arc<str>) {
        if body.len() > self.budget_bytes {
            self.stats.oversized += 1;
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.resident_bytes -= old.body.len();
        }
        while self.resident_bytes + body.len() > self.budget_bytes {
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, entry)| entry.last_used)
            else {
                break;
            };
            let evicted = self.entries.remove(&victim).expect("victim resident");
            self.resident_bytes -= evicted.body.len();
            self.stats.evictions += 1;
        }
        self.resident_bytes += body.len();
        self.stats.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                body,
                last_used: self.tick,
            },
        );
    }

    /// Counters since construction.
    pub fn stats(&self) -> ArtifactCacheStats {
        self.stats
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of resident response bodies.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn hit_returns_identical_bytes() {
        let mut cache = ArtifactCache::new(1024);
        assert!(cache.get(1).is_none());
        cache.insert(1, body("{\"ok\":true}"));
        let got = cache.get(1).expect("hit");
        assert_eq!(&*got, "{\"ok\":true}");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Budget fits exactly two 4-byte bodies.
        let mut cache = ArtifactCache::new(8);
        cache.insert(1, body("aaaa"));
        cache.insert(2, body("bbbb"));
        // Touch 1 so 2 becomes the LRU victim.
        cache.get(1);
        cache.insert(3, body("cccc"));
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.resident_bytes(), 8);
    }

    #[test]
    fn oversized_bodies_are_refused_not_flushing() {
        let mut cache = ArtifactCache::new(8);
        cache.insert(1, body("aaaa"));
        cache.insert(2, body("way too large for the budget"));
        assert_eq!(cache.stats().oversized, 1);
        assert_eq!(cache.stats().evictions, 0);
        // The resident entry survived.
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn reinsert_same_key_replaces_without_double_counting_bytes() {
        let mut cache = ArtifactCache::new(16);
        cache.insert(1, body("aaaa"));
        cache.insert(1, body("bbbbbbbb"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), 8);
        assert_eq!(&*cache.get(1).unwrap(), "bbbbbbbb");
    }
}
