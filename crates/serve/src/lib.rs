//! Compile-as-a-service: a long-running job server over `na-pipeline`'s
//! versioned JSON job layer.
//!
//! The pipeline answers one document at a time
//! ([`na_pipeline::handle_json_document`]); this crate turns that into
//! a service that survives heavy repeated traffic:
//!
//! ```text
//! transport (HTTP/1.1 · stdio lines)
//!      │
//! admission control ── parse + artifact-cache probe, queue-depth cap
//!      │
//! BoundedQueue (MPMC, backpressure by typed rejection)
//!      │
//! worker pool ── warm CompileScratch per worker,
//!      │         content-hashed Compiler session cache
//!      ▼
//! artifact cache (LRU byte budget) ──▶ response bytes
//! ```
//!
//! Identity guarantees, all tested: a served response is byte-identical
//! to [`na_pipeline::handle_json`] on the same document (runtime stamps
//! aside), a cache hit is byte-identical to the cold compile it
//! shortcuts, and every rejection (malformed document, queue full,
//! deadline unmeetable, shutdown) is a well-formed v1 error document —
//! clients parse one schema for everything.
//!
//! Resilience guarantees, also tested: requests carrying `deadline_ms`
//! are cancelled cooperatively at compile checkpoints (typed
//! `deadline` error, never a partial artifact in the cache), a panic
//! mid-compile is isolated to its job (typed `internal` error, worker
//! survives), dead worker threads are respawned by a supervisor, and a
//! deterministic [`FaultPlan`] scripts all of the above for chaos
//! tests.
//!
//! # Quick start
//!
//! ```
//! use na_serve::{CompileService, ServeConfig};
//!
//! let service = CompileService::start(ServeConfig {
//!     workers: 1,
//!     queue_cap: 8,
//!     cache_budget_bytes: 16 << 20,
//!     ..ServeConfig::default()
//! });
//! let doc = r#"{
//!   "version": 1,
//!   "target": {"preset": "mixed", "lattice_side": 4, "num_atoms": 8},
//!   "mapping": {"mode": "hybrid", "alpha": 1.0},
//!   "circuits": [{"name": "bell",
//!     "qasm": "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"}]
//! }"#;
//! let response = service.submit_wait(doc).expect("accepted");
//! assert!(response.contains("\"ok\":true"));
//! service.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod fault;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod retry;
pub mod service;
pub mod stdio;
pub mod wire;

pub use cache::{ArtifactCache, ArtifactCacheStats};
pub use fault::{FaultAction, FaultPlan};
pub use http::{HttpOptions, HttpServer};
pub use metrics::{LatencyHistogram, ServiceMetrics};
pub use queue::{BoundedQueue, PushError};
pub use retry::RetryPolicy;
pub use service::{CompileService, ServeConfig, Submission, SubmitError};
pub use stdio::serve_lines;
pub use wire::{compact_json, error_kind_of, service_error_doc, service_error_doc_retry};
