//! The `na-serve` binary: the compile service behind a transport flag.
//!
//! ```text
//! na-serve --stdio                 # line-delimited JSON over stdin/stdout
//! na-serve --listen 127.0.0.1:8924 # hand-rolled HTTP/1.1
//!   [--workers N] [--queue-cap N] [--cache-mb N]
//!   [--read-timeout-ms MS] [--write-timeout-ms MS] [--max-body-kb N]
//!   [--fault SPEC]                 # e.g. --fault "panic@2,kill@5,delay=3"
//! ```
//!
//! Stdio mode answers one compact response line per request line and
//! exits (after a graceful drain) on EOF — the framing CI smoke-tests.
//! Listen mode serves until the process is killed. `--fault` arms the
//! deterministic chaos script ([`na_serve::FaultPlan`]) — test/CI use
//! only.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use na_serve::{serve_lines, CompileService, FaultPlan, HttpOptions, HttpServer, ServeConfig};

struct Args {
    stdio: bool,
    listen: Option<String>,
    config: ServeConfig,
    http: HttpOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        stdio: false,
        listen: None,
        config: ServeConfig::default(),
        http: HttpOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--stdio" => args.stdio = true,
            "--listen" => args.listen = Some(value("--listen")?),
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-cap" => {
                args.config.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--cache-mb" => {
                let mb: usize = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?;
                args.config.cache_budget_bytes = mb << 20;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                args.http.read_timeout = Duration::from_millis(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
                args.http.write_timeout = Duration::from_millis(ms);
            }
            "--max-body-kb" => {
                let kb: usize = value("--max-body-kb")?
                    .parse()
                    .map_err(|e| format!("--max-body-kb: {e}"))?;
                args.http.max_body_bytes = kb << 10;
            }
            "--fault" => {
                let plan =
                    FaultPlan::parse(&value("--fault")?).map_err(|e| format!("--fault: {e}"))?;
                args.config.fault = Some(Arc::new(plan));
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: na-serve (--stdio | --listen ADDR) \
                     [--workers N] [--queue-cap N] [--cache-mb N] \
                     [--read-timeout-ms MS] [--write-timeout-ms MS] \
                     [--max-body-kb N] [--fault SPEC]",
                ))
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.stdio == args.listen.is_some() {
        return Err(String::from(
            "pick exactly one transport: --stdio or --listen ADDR",
        ));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let service = CompileService::start(args.config.clone());
    if args.stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let result = serve_lines(&service, stdin.lock(), stdout.lock());
        service.shutdown();
        return match result {
            Ok(answered) => {
                eprintln!("na-serve: answered {answered} request(s), drained, exiting");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("na-serve: stdio transport failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let addr = args.listen.expect("validated: listen xor stdio");
    let server = match HttpServer::bind_with(service.clone(), addr.as_str(), args.http.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("na-serve: cannot bind {addr}: {e}");
            service.shutdown();
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(local) => eprintln!(
            "na-serve: listening on http://{local} ({} workers, queue cap {})",
            args.config.workers, args.config.queue_cap
        ),
        Err(_) => eprintln!("na-serve: listening on {addr}"),
    }
    server.serve();
    service.shutdown();
    ExitCode::SUCCESS
}
