//! Deterministic fault injection for chaos-testing the service.
//!
//! A [`FaultPlan`] is a fixed script keyed on the service-wide compile
//! sequence number (the Nth compile a worker *attempts*, counted
//! atomically across the pool): compile #2 panics, compile #5 kills its
//! worker, every compile is delayed 3 ms. Because the script is data —
//! not random draws at runtime — a chaos run is reproducible: the same
//! plan against the same request stream injects the same faults, so
//! tests can assert byte-identical artifacts across worker deaths.
//!
//! Faults fire *inside* the worker's `catch_unwind` region:
//!
//! - [`FaultAction::Panic`] raises an ordinary string panic. The worker
//!   catches it, replies with a typed `internal` error, rebuilds its
//!   scratch arena, and keeps serving — this exercises panic isolation.
//! - [`FaultAction::KillWorker`] panics with the private `FatalFault`
//!   payload. The worker recognizes the payload, replies, and then
//!   *re-raises* so the thread actually dies — this exercises the
//!   supervisor's respawn path.
//!
//! Plans parse from a compact spec (`--fault "panic@2,kill@5,delay=3"`)
//! so the CLI and CI smoke steps can script chaos without code.

use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The fault scripted for one compile sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the compile; the worker survives via
    /// `catch_unwind`.
    Panic,
    /// Panic with a fatal payload; the worker replies, then dies, and
    /// the supervisor respawns it.
    KillWorker,
}

/// Panic payload marking a scripted worker death. Workers re-raise
/// panics carrying this payload after replying, so the thread dies and
/// the supervisor observes it.
#[derive(Debug)]
pub(crate) struct FatalFault {
    /// The compile sequence number that triggered the death.
    pub seq: u64,
}

/// A deterministic fault script, shared by the worker pool.
///
/// The plan owns the service-wide compile sequence counter; each worker
/// claims the next number with [`FaultPlan::next_seq`] as it dequeues a
/// job and then asks [`FaultPlan::action_for`] whether that compile is
/// scripted to fail. Delays and stalls apply uniformly.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Compile sequence numbers (0-based) that panic but leave the
    /// worker alive.
    pub panic_at: Vec<u64>,
    /// Compile sequence numbers (0-based) that kill the worker thread.
    pub kill_at: Vec<u64>,
    /// Artificial delay inserted before every compile (per-phase delay
    /// proxy), in milliseconds.
    pub delay_ms: u64,
    /// Artificial stall inserted at dequeue, before the deadline check,
    /// in milliseconds — simulates a backed-up queue so deadline-expiry
    /// paths fire deterministically.
    pub stall_ms: u64,
    seq: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses the `--fault` spec: comma-separated terms of the forms
    /// `panic@N`, `kill@N`, `delay=MS`, `stall=MS`. Repeating `panic@`
    /// / `kill@` terms accumulates sequence numbers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed term.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(n) = term.strip_prefix("panic@") {
                plan.panic_at.push(parse_num(term, n)?);
            } else if let Some(n) = term.strip_prefix("kill@") {
                plan.kill_at.push(parse_num(term, n)?);
            } else if let Some(n) = term.strip_prefix("delay=") {
                plan.delay_ms = parse_num(term, n)?;
            } else if let Some(n) = term.strip_prefix("stall=") {
                plan.stall_ms = parse_num(term, n)?;
            } else {
                return Err(format!(
                    "unknown fault term {term:?} (expected panic@N, kill@N, delay=MS or stall=MS)"
                ));
            }
        }
        Ok(plan)
    }

    /// Claims the next compile sequence number (0-based, service-wide).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The fault scripted for `seq`, if any. A number listed in both
    /// lists kills (the stronger fault wins).
    pub fn action_for(&self, seq: u64) -> Option<FaultAction> {
        if self.kill_at.contains(&seq) {
            Some(FaultAction::KillWorker)
        } else if self.panic_at.contains(&seq) {
            Some(FaultAction::Panic)
        } else {
            None
        }
    }

    /// Sleeps for the scripted dequeue stall, if any.
    pub(crate) fn stall(&self) {
        if self.stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.stall_ms));
        }
    }

    /// Runs the scripted fault for `seq` inside the worker's
    /// `catch_unwind` region: sleeps the per-compile delay, then
    /// panics if `seq` is scripted to fail.
    pub(crate) fn inject(&self, seq: u64) {
        if self.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.delay_ms));
        }
        match self.action_for(seq) {
            Some(FaultAction::KillWorker) => panic_any(FatalFault { seq }),
            Some(FaultAction::Panic) => panic!("injected fault: scripted panic at compile #{seq}"),
            None => {}
        }
    }
}

fn parse_num(term: &str, digits: &str) -> Result<u64, String> {
    digits
        .parse::<u64>()
        .map_err(|_| format!("fault term {term:?}: {digits:?} is not a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_spec_grammar() {
        let plan = FaultPlan::parse("panic@2, kill@5,panic@7,delay=3,stall=10").unwrap();
        assert_eq!(plan.panic_at, vec![2, 7]);
        assert_eq!(plan.kill_at, vec![5]);
        assert_eq!(plan.delay_ms, 3);
        assert_eq!(plan.stall_ms, 10);
        assert_eq!(plan.action_for(2), Some(FaultAction::Panic));
        assert_eq!(plan.action_for(5), Some(FaultAction::KillWorker));
        assert_eq!(plan.action_for(3), None);
    }

    #[test]
    fn rejects_malformed_terms() {
        assert!(FaultPlan::parse("explode@3").is_err());
        assert!(FaultPlan::parse("panic@x").is_err());
        assert!(FaultPlan::parse("delay=-1").is_err());
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.panic_at.is_empty() && plan.kill_at.is_empty());
        assert_eq!(plan.delay_ms, 0);
    }

    #[test]
    fn sequence_numbers_are_claimed_in_order() {
        let plan = FaultPlan::new();
        assert_eq!(plan.next_seq(), 0);
        assert_eq!(plan.next_seq(), 1);
        assert_eq!(plan.next_seq(), 2);
    }

    #[test]
    fn kill_wins_when_a_seq_is_listed_twice() {
        let plan = FaultPlan::parse("panic@4,kill@4").unwrap();
        assert_eq!(plan.action_for(4), Some(FaultAction::KillWorker));
    }

    #[test]
    fn injected_panics_carry_the_right_payloads() {
        let plan = FaultPlan::parse("panic@0,kill@1").unwrap();
        let p = std::panic::catch_unwind(|| plan.inject(0)).unwrap_err();
        assert!(p.downcast_ref::<FatalFault>().is_none());
        let k = std::panic::catch_unwind(|| plan.inject(1)).unwrap_err();
        assert_eq!(k.downcast_ref::<FatalFault>().map(|f| f.seq), Some(1));
        // Unscripted sequence numbers are a no-op.
        plan.inject(2);
    }
}
