//! The line-delimited stdio transport: one JSON job document per input
//! line, one compact JSON response document per output line.
//!
//! This is the framing CI and tests drive (`na-serve --stdio`): no
//! sockets, fully deterministic, pipe a document in and read one line
//! back. Responses are compacted with
//! [`compact_json`] so a multi-line
//! canonical document never breaks the one-line-per-response contract.
//! Backpressure rejections become `busy`/`shutdown`/`unmeetable`
//! error documents on the same line protocol — a stdio client sees
//! exactly the error schema an HTTP client does, minus the status
//! code. Transient rejections (`busy`, `unmeetable`) are retried a
//! bounded number of times with deterministic jittered backoff
//! ([`RetryPolicy`]) before the rejection goes on the wire, since a
//! line-delimited pipe has no out-of-band way to ask the client to
//! back off.

use std::io::{BufRead, Write};

use crate::retry::RetryPolicy;
use crate::service::{CompileService, SubmitError};
use crate::wire::compact_json;

/// Serves line-delimited requests from `input` until EOF, writing one
/// compact response line per request line to `output`. Blank lines are
/// skipped. Returns the number of requests answered.
///
/// # Errors
///
/// Propagates I/O failures on either side of the pipe.
pub fn serve_lines(
    service: &CompileService,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<u64> {
    let retry = RetryPolicy::default();
    let mut answered = 0u64;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match retry.run(|| service.submit_wait(&line), SubmitError::is_retryable) {
            Ok(doc) => doc,
            // submit_wait only fails on backpressure; after the retry
            // budget, the rejection is itself a well-formed document
            // on the wire.
            Err(e) => e.to_json(None),
        };
        writeln!(output, "{}", compact_json(&response))?;
        output.flush()?;
        answered += 1;
    }
    Ok(answered)
}
