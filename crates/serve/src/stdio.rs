//! The line-delimited stdio transport: one JSON job document per input
//! line, one compact JSON response document per output line.
//!
//! This is the framing CI and tests drive (`na-serve --stdio`): no
//! sockets, fully deterministic, pipe a document in and read one line
//! back. Responses are compacted with
//! [`compact_json`] so a multi-line
//! canonical document never breaks the one-line-per-response contract.
//! Backpressure rejections become `busy`/`shutdown` error documents on
//! the same line protocol — a stdio client sees exactly the error
//! schema an HTTP client does, minus the status code.

use std::io::{BufRead, Write};

use crate::service::CompileService;
use crate::wire::compact_json;

/// Serves line-delimited requests from `input` until EOF, writing one
/// compact response line per request line to `output`. Blank lines are
/// skipped. Returns the number of requests answered.
///
/// # Errors
///
/// Propagates I/O failures on either side of the pipe.
pub fn serve_lines(
    service: &CompileService,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<u64> {
    let mut answered = 0u64;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match service.submit_wait(&line) {
            Ok(doc) => doc,
            // submit_wait only fails on backpressure; the rejection is
            // itself a well-formed document on the wire.
            Err(e) => e.to_json(None),
        };
        writeln!(output, "{}", compact_json(&response))?;
        output.flush()?;
        answered += 1;
    }
    Ok(answered)
}
