//! The compile service core: admission control, the worker pool, and
//! the cache hierarchy.
//!
//! ```text
//!               submit(document)
//!                     │
//!        parse (shared TargetResolver) ──▶ Invalid(error doc)
//!                     │
//!        artifact cache (content key) ──▶ Cached(response bytes)
//!                     │ miss
//!        deadline-aware shedding ────────▶ Err(DeadlineUnmeetable)
//!                     │ admissible
//!        admission: BoundedQueue ───────▶ Err(Busy / ShuttingDown)
//!                     │ accepted
//!            worker pool (N threads)
//!          warm CompileScratch each,
//!        session cache (Arc<Compiler>),
//!        catch_unwind per job, deadline
//!         CancelToken into the compile,
//!          insert artifact, reply
//!                     │ (worker death)
//!            supervisor respawns slot
//! ```
//!
//! The cache is content-addressed by
//! [`request_cache_key`],
//! which excludes transport fields — so a cache hit returns bytes
//! identical to a cold compile of the same content, with the
//! submitter's `request_id` spliced per-response
//! ([`na_pipeline::with_request_id`]). Workers keep one
//! [`CompileScratch`] each across every job they serve (arena reuse:
//! capacity, never decisions), and compiler sessions are shared across
//! workers by content hash so one hot target/options combination
//! validates once.
//!
//! # Resilience
//!
//! Every job runs inside `catch_unwind`: a panic mid-compile answers
//! the submitter (and any coalesced waiters) with a typed `internal`
//! error, discards the possibly-corrupt scratch arena, and keeps the
//! worker alive. If the worker thread itself dies (scripted by a
//! [`FaultPlan`] kill, or a non-unwinding failure), a `DeathGuard`
//! notifies the supervisor thread, which reaps and respawns the slot —
//! the pool self-heals without dropping queued work. Requests carrying
//! `deadline_ms` get a [`na_mapper::CancelToken`] fixed at
//! admission time (queue wait counts against the budget); expired jobs
//! answer with a typed `deadline` error, and admission sheds requests
//! whose deadline cannot survive the estimated queue wait.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use na_mapper::CancelToken;
use na_pipeline::fingerprint::{request_cache_key, session_fingerprint};
use na_pipeline::{
    error_to_json, with_request_id, CompileError, CompileRequest, CompileScratch, Compiler,
    TargetResolver,
};
use na_schedule::export::{cache_stats_to_json, JsonObject};

use crate::cache::ArtifactCache;
use crate::fault::{FatalFault, FaultPlan};
use crate::metrics::ServiceMetrics;
use crate::queue::{BoundedQueue, PushError};
use crate::wire::{service_error_doc, service_error_doc_retry};

/// Sizing knobs for a [`CompileService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. `0` is allowed (tests use it to exercise
    /// admission control deterministically); nothing compiles until
    /// shutdown then.
    pub workers: usize,
    /// Queue-depth cap — submissions beyond it get a typed
    /// [`SubmitError::Busy`] rejection instead of unbounded growth.
    pub queue_cap: usize,
    /// Artifact-cache byte budget.
    pub cache_budget_bytes: usize,
    /// Deterministic fault script for chaos testing; `None` (the
    /// default) injects nothing and costs one branch per job.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_cap: 64,
            cache_budget_bytes: 64 << 20,
            fault: None,
        }
    }
}

/// How an accepted submission was answered.
#[derive(Debug)]
pub enum Submission {
    /// The document failed parsing/validation; the payload is the
    /// well-formed error document to send back.
    Invalid(String),
    /// Served from the artifact cache; the payload is the full
    /// response document (request id already spliced).
    Cached(String),
    /// Queued for a worker; the receiver yields the response document
    /// exactly once.
    Pending(mpsc::Receiver<String>),
}

/// Why a submission was refused outright (backpressure, not failure —
/// the document itself was never examined past admission).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The work queue sits at its depth cap; retry later.
    Busy {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The service no longer accepts work.
    ShuttingDown,
    /// The request's `deadline_ms` cannot survive the estimated queue
    /// wait — shed at admission instead of compiling work the client
    /// has already given up on (HTTP 429-style, with a retry hint).
    DeadlineUnmeetable {
        /// The deadline the client asked for.
        deadline_ms: u64,
        /// The estimated queue wait it could not survive.
        estimated_wait_ms: u64,
        /// When the queue is expected to have drained enough to admit
        /// this deadline.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { depth, cap } => {
                write!(f, "queue full: {depth}/{cap} jobs queued")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::DeadlineUnmeetable {
                deadline_ms,
                estimated_wait_ms,
                ..
            } => write!(
                f,
                "deadline {deadline_ms} ms cannot survive the estimated \
                 queue wait of {estimated_wait_ms} ms"
            ),
        }
    }
}

impl SubmitError {
    /// The rejection as a wire error document (`kind` `busy`,
    /// `shutdown` or `unmeetable`), echoing `request_id` when the
    /// client sent one. `unmeetable` documents carry a
    /// `retry_after_ms` hint inside the error object.
    pub fn to_json(&self, request_id: Option<&str>) -> String {
        match self {
            SubmitError::Busy { .. } => service_error_doc("busy", &self.to_string(), request_id),
            SubmitError::ShuttingDown => {
                service_error_doc("shutdown", &self.to_string(), request_id)
            }
            SubmitError::DeadlineUnmeetable { retry_after_ms, .. } => service_error_doc_retry(
                "unmeetable",
                &self.to_string(),
                *retry_after_ms,
                request_id,
            ),
        }
    }

    /// Whether a client should retry this rejection after a backoff
    /// (`busy` and `unmeetable` are transient; `shutdown` is not).
    pub fn is_retryable(&self) -> bool {
        !matches!(self, SubmitError::ShuttingDown)
    }
}

struct Job {
    request: CompileRequest,
    key: u64,
    accepted: Instant,
    /// Absolute deadline fixed at admission (`accepted` +
    /// `deadline_ms`), so queue wait counts against the budget.
    deadline: Option<Instant>,
    reply: mpsc::Sender<String>,
}

/// A submitter coalesced onto an in-flight compile of the same
/// content; answered with the leader's bytes (own id spliced).
struct Waiter {
    reply: mpsc::Sender<String>,
    request_id: Option<String>,
}

struct Inner {
    queue: BoundedQueue<Job>,
    cache: Mutex<ArtifactCache>,
    resolver: Mutex<TargetResolver>,
    sessions: Mutex<HashMap<u64, Arc<Compiler>>>,
    /// Single-flight table: content keys currently being compiled,
    /// each with the submitters waiting on that compile. Guarantees
    /// concurrent identical submissions share one compile — and
    /// therefore receive byte-identical responses (wall-clock stamps
    /// included), which a duplicate compile could not promise.
    inflight: Mutex<HashMap<u64, Vec<Waiter>>>,
    metrics: ServiceMetrics,
    accepting: AtomicBool,
    /// Worker slots; `None` marks a slot whose handle was taken for
    /// joining (by the supervisor reaping a dead worker, or by
    /// shutdown).
    workers: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The death-notification sender respawned workers clone their
    /// guard from; dropped (set to `None`) at shutdown so the
    /// supervisor's receiver disconnects once the last worker exits.
    death_tx: Mutex<Option<mpsc::Sender<usize>>>,
    fault: Option<Arc<FaultPlan>>,
    configured_workers: usize,
}

/// A running compile service. Cloning shares the same queue, caches
/// and worker pool — hand clones to transport threads freely.
#[derive(Clone)]
pub struct CompileService {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService")
            .field("workers", &self.inner.configured_workers)
            .field("queue_depth", &self.inner.queue.depth())
            .field("accepting", &self.inner.accepting.load(Ordering::SeqCst))
            .finish()
    }
}

impl CompileService {
    /// Starts the service: spawns the worker pool and its supervisor
    /// and returns the handle transports submit through. Call
    /// [`CompileService::shutdown`] to drain and stop.
    pub fn start(config: ServeConfig) -> Self {
        let (death_tx, death_rx) = mpsc::channel();
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(config.queue_cap),
            cache: Mutex::new(ArtifactCache::new(config.cache_budget_bytes)),
            resolver: Mutex::new(TargetResolver::new()),
            sessions: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            metrics: ServiceMetrics::new(),
            accepting: AtomicBool::new(true),
            workers: Mutex::new(Vec::new()),
            supervisor: Mutex::new(None),
            death_tx: Mutex::new(Some(death_tx.clone())),
            fault: config.fault,
            configured_workers: config.workers,
        });
        let handles = (0..config.workers)
            .map(|i| Some(spawn_worker(&inner, i, death_tx.clone())))
            .collect();
        *inner.workers.lock().expect("workers lock") = handles;
        drop(death_tx);
        let supervisor = {
            let sup_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("na-serve-supervisor".into())
                .spawn(move || supervisor_loop(&sup_inner, &death_rx))
                .expect("spawn supervisor")
        };
        *inner.supervisor.lock().expect("supervisor lock") = Some(supervisor);
        CompileService { inner }
    }

    /// Submits one job document.
    ///
    /// Malformed documents are *answered*, not errored: they return
    /// [`Submission::Invalid`] with a well-formed error document, so
    /// transports map them to a client-error status without formatting
    /// anything themselves.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after
    /// [`CompileService::shutdown`] began, and
    /// [`SubmitError::DeadlineUnmeetable`] when the request's
    /// `deadline_ms` cannot survive the estimated queue wait —
    /// backpressure only, never compile failures.
    pub fn submit(&self, document: &str) -> Result<Submission, SubmitError> {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::SeqCst) {
            inner
                .metrics
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        let parsed = {
            let mut resolver = inner.resolver.lock().expect("resolver lock");
            CompileRequest::from_json_with(document, &mut resolver)
        };
        let request = match parsed {
            Ok(request) => request,
            Err(e) => {
                inner.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                return Ok(Submission::Invalid(error_to_json(&CompileError::Request(
                    e,
                ))));
            }
        };
        let key = request_cache_key(&request);
        let accepted = Instant::now();
        // Single-flight admission, serialized by the in-flight table
        // lock: join an identical compile already in progress, else
        // probe the artifact cache, else queue. A worker publishes to
        // the cache *before* retiring its in-flight entry, so under
        // this lock "not in flight and not cached" really means a cold
        // compile is needed — concurrent identical submissions can
        // never compile twice (which matters for byte-identity: a
        // duplicate compile would carry different wall-clock stamps).
        let (tx, rx) = mpsc::channel();
        let mut inflight = inner.inflight.lock().expect("inflight lock");
        if let Some(waiters) = inflight.get_mut(&key) {
            waiters.push(Waiter {
                reply: tx,
                request_id: request.request_id,
            });
            inner.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
            return Ok(Submission::Pending(rx));
        }
        if let Some(body) = inner.cache.lock().expect("cache lock").get(key) {
            inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            let reply = finalize(&body, request.request_id.as_deref());
            record_latency(&inner.metrics, accepted);
            return Ok(Submission::Cached(reply));
        }
        // Deadline-aware shedding: once the latency histogram has
        // warmed up, estimate the queue wait ahead of this request
        // (depth × p50 ÷ workers) and refuse deadlines that cannot
        // survive it — a typed 429-style rejection now beats a
        // guaranteed `deadline` error after the client stopped caring.
        // An empty queue never sheds: the estimate covers waiting, not
        // the compile itself.
        if let Some(deadline_ms) = request.deadline_ms {
            let p50 = inner.metrics.latency.p50_ms();
            if inner.metrics.latency.count() >= SHED_WARMUP_SAMPLES && p50.is_finite() {
                let depth = inner.queue.depth();
                let lanes = inner.configured_workers.max(1) as f64;
                let estimated_wait_ms = (depth as f64 * p50 / lanes).ceil() as u64;
                if estimated_wait_ms > deadline_ms {
                    inner
                        .metrics
                        .shed_unmeetable
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::DeadlineUnmeetable {
                        deadline_ms,
                        estimated_wait_ms,
                        retry_after_ms: (estimated_wait_ms - deadline_ms).max(1),
                    });
                }
            }
        }
        let deadline = request
            .deadline_ms
            .map(|ms| accepted + Duration::from_millis(ms));
        let job = Job {
            request,
            key,
            accepted,
            deadline,
            reply: tx,
        };
        match inner.queue.try_push(job) {
            Ok(_) => {
                inflight.insert(key, Vec::new());
                inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Submission::Pending(rx))
            }
            Err(PushError::Full(_)) => {
                inner.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Busy {
                    depth: inner.queue.depth(),
                    cap: inner.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => {
                inner
                    .metrics
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// [`CompileService::submit`] plus blocking until the response
    /// document is ready — the one-call path for synchronous
    /// transports.
    ///
    /// # Errors
    ///
    /// The backpressure cases of [`CompileService::submit`].
    pub fn submit_wait(&self, document: &str) -> Result<String, SubmitError> {
        match self.submit(document)? {
            Submission::Invalid(doc) | Submission::Cached(doc) => Ok(doc),
            Submission::Pending(rx) => Ok(rx.recv().unwrap_or_else(|_| {
                service_error_doc("internal", "worker dropped the job without replying", None)
            })),
        }
    }

    /// Stops accepting work, drains every queued job through the
    /// worker pool, joins the workers and the supervisor, and answers
    /// any jobs no worker will ever take (the `workers: 0`
    /// configuration) with a `shutdown` error document. Idempotent.
    pub fn shutdown(&self) {
        let inner = &self.inner;
        inner.accepting.store(false, Ordering::SeqCst);
        inner.queue.close();
        // First sweep: join the current pool (waits for the backlog to
        // drain). The supervisor may be respawning a slot concurrently,
        // so sweep again once it has exited.
        join_workers(inner);
        *inner.death_tx.lock().expect("death-tx lock") = None;
        if let Some(supervisor) = inner.supervisor.lock().expect("supervisor lock").take() {
            let _ = supervisor.join();
        }
        join_workers(inner);
        for job in inner.queue.drain() {
            let doc = SubmitError::ShuttingDown.to_json(job.request.request_id.as_deref());
            let _ = job.reply.send(doc);
            let waiters = inner
                .inflight
                .lock()
                .expect("inflight lock")
                .remove(&job.key)
                .unwrap_or_default();
            for waiter in waiters {
                let doc = SubmitError::ShuttingDown.to_json(waiter.request_id.as_deref());
                let _ = waiter.reply.send(doc);
            }
        }
    }

    /// Whether the service still accepts submissions.
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::SeqCst)
    }

    /// Current queue depth (for tests and transports).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Live (spawned and not reaped) worker threads — drops below the
    /// configured count while the supervisor is respawning a dead
    /// slot, and recovers once it has.
    pub fn live_workers(&self) -> usize {
        self.inner
            .workers
            .lock()
            .expect("workers lock")
            .iter()
            .filter(|slot| slot.is_some())
            .count()
    }

    /// The service counters.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }

    /// A point-in-time metrics document: request counters, queue
    /// state, worker utilization, resilience counters
    /// (`worker_panics`, `worker_restarts`, `deadline_exceeded`,
    /// `shed_unmeetable`), latency quantiles, and every cache layer
    /// (artifact, session, target-resolver, router distance-cache
    /// aggregate via [`cache_stats_to_json`]).
    pub fn metrics_json(&self) -> String {
        let inner = &self.inner;
        let m = &inner.metrics;
        let (artifact, artifact_entries, artifact_bytes, artifact_budget) = {
            let cache = inner.cache.lock().expect("cache lock");
            (
                cache.stats(),
                cache.len() as u64,
                cache.resident_bytes() as u64,
                cache.budget_bytes() as u64,
            )
        };
        let (resolver_hits, resolver_misses, resolver_len) = {
            let r = inner.resolver.lock().expect("resolver lock");
            (r.hits(), r.misses(), r.len() as u64)
        };
        let sessions = inner.sessions.lock().expect("sessions lock").len() as u64;

        let mut artifact_obj = JsonObject::new();
        artifact_obj
            .uint("hits", artifact.hits)
            .uint("misses", artifact.misses)
            .uint("insertions", artifact.insertions)
            .uint("evictions", artifact.evictions)
            .uint("oversized", artifact.oversized)
            .uint("entries", artifact_entries)
            .uint("resident_bytes", artifact_bytes)
            .uint("budget_bytes", artifact_budget);
        let mut latency = JsonObject::new();
        latency
            .uint("count", m.latency.count())
            .num("mean_ms", m.latency.mean_ms())
            .num("p50_ms", m.latency.p50_ms())
            .num("p99_ms", m.latency.p99_ms());
        let mut sessions_obj = JsonObject::new();
        sessions_obj
            .uint("hits", m.session_hits.load(Ordering::Relaxed))
            .uint("misses", m.session_misses.load(Ordering::Relaxed))
            .uint("entries", sessions);
        let mut resolver_obj = JsonObject::new();
        resolver_obj
            .uint("hits", resolver_hits)
            .uint("misses", resolver_misses)
            .uint("entries", resolver_len);
        let mut queue = JsonObject::new();
        queue
            .uint("depth", inner.queue.depth() as u64)
            .uint("capacity", inner.queue.capacity() as u64);
        let mut workers = JsonObject::new();
        workers
            .uint("configured", inner.configured_workers as u64)
            .uint("busy", m.busy_workers.load(Ordering::Relaxed));
        // Cumulative compile-phase attribution across completed jobs —
        // the same `map/schedule/lower/export` split each artifact's
        // own `stats` object reports per compile.
        let mut phases = JsonObject::new();
        phases
            .uint("map_us", m.map_phase_us.load(Ordering::Relaxed))
            .uint("schedule_us", m.schedule_phase_us.load(Ordering::Relaxed))
            .uint("lower_us", m.lower_phase_us.load(Ordering::Relaxed))
            .uint("export_us", m.export_us.load(Ordering::Relaxed));

        let mut doc = JsonObject::new();
        doc.uint("version", crate::wire::WIRE_VERSION)
            .uint("submitted", m.submitted.load(Ordering::Relaxed))
            .uint("completed", m.completed.load(Ordering::Relaxed))
            .uint("invalid", m.invalid.load(Ordering::Relaxed))
            .uint("coalesced", m.coalesced.load(Ordering::Relaxed))
            .uint("rejected_busy", m.rejected_busy.load(Ordering::Relaxed))
            .uint(
                "rejected_shutdown",
                m.rejected_shutdown.load(Ordering::Relaxed),
            )
            .uint("worker_panics", m.worker_panics.load(Ordering::Relaxed))
            .uint("worker_restarts", m.worker_restarts.load(Ordering::Relaxed))
            .uint(
                "deadline_exceeded",
                m.deadline_exceeded.load(Ordering::Relaxed),
            )
            .uint("shed_unmeetable", m.shed_unmeetable.load(Ordering::Relaxed))
            .raw("queue", &queue.finish())
            .raw("workers", &workers.finish())
            .raw("phases", &phases.finish())
            .raw("latency", &latency.finish())
            .raw("artifact_cache", &artifact_obj.finish())
            .raw("session_cache", &sessions_obj.finish())
            .raw("target_resolver", &resolver_obj.finish())
            .raw("route_cache", &cache_stats_to_json(&m.route_cache()));
        doc.finish()
    }
}

/// Latency samples required before deadline-aware shedding arms — a
/// cold service never sheds on one unrepresentative first compile.
const SHED_WARMUP_SAMPLES: u64 = 8;

/// Splices the submitter's `request_id` into the cached/compiled
/// canonical (id-less) body.
fn finalize(body: &str, request_id: Option<&str>) -> String {
    match request_id {
        Some(id) => with_request_id(body, id),
        None => body.to_owned(),
    }
}

fn record_latency(metrics: &ServiceMetrics, accepted: Instant) {
    let us = accepted.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    metrics.latency.record_micros(us);
}

/// Takes and joins every live worker handle (panicked threads join to
/// `Err`, which is expected and ignored).
fn join_workers(inner: &Inner) {
    let handles: Vec<_> = inner
        .workers
        .lock()
        .expect("workers lock")
        .iter_mut()
        .map(Option::take)
        .collect();
    for handle in handles.into_iter().flatten() {
        let _ = handle.join();
    }
}

fn spawn_worker(
    inner: &Arc<Inner>,
    index: usize,
    death_tx: mpsc::Sender<usize>,
) -> std::thread::JoinHandle<()> {
    let worker_inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("na-serve-worker-{index}"))
        .spawn(move || {
            // Dropped on every exit path; only notifies the supervisor
            // when the thread is dying of a panic.
            let _guard = DeathGuard { index, death_tx };
            worker_loop(&worker_inner);
        })
        .expect("spawn worker")
}

/// Notifies the supervisor when a worker thread dies unwinding. Normal
/// exits (queue closed and drained) drop the guard without signalling.
struct DeathGuard {
    index: usize,
    death_tx: mpsc::Sender<usize>,
}

impl Drop for DeathGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.death_tx.send(self.index);
        }
    }
}

/// The supervisor: reaps dead workers and respawns their slots while
/// the service is running. Exits when every death-notification sender
/// is gone — the service's own (dropped at shutdown) and one per live
/// worker guard.
fn supervisor_loop(inner: &Arc<Inner>, death_rx: &mpsc::Receiver<usize>) {
    while let Ok(index) = death_rx.recv() {
        if let Some(handle) = inner.workers.lock().expect("workers lock")[index].take() {
            let _ = handle.join();
        }
        if inner.queue.is_closed() {
            continue;
        }
        let death_tx = inner.death_tx.lock().expect("death-tx lock").clone();
        let Some(death_tx) = death_tx else { continue };
        inner
            .metrics
            .worker_restarts
            .fetch_add(1, Ordering::Relaxed);
        let replacement = spawn_worker(inner, index, death_tx);
        inner.workers.lock().expect("workers lock")[index] = Some(replacement);
    }
}

/// One worker: a warm scratch arena for life, jobs until the queue
/// closes and drains. Each job runs inside `catch_unwind`; a panic
/// answers the submitter with a typed `internal` error and rebuilds
/// the scratch arena (its contents may be mid-mutation). Scripted
/// [`FatalFault`] panics re-raise after replying so the thread dies
/// and the supervisor respawns the slot.
fn worker_loop(inner: &Inner) {
    let mut scratch = CompileScratch::new();
    while let Some(mut job) = inner.queue.pop() {
        inner.metrics.busy_workers.fetch_add(1, Ordering::Relaxed);
        // The canonical artifact is id-less; take the id out before
        // compiling and splice it back into this submitter's reply.
        let request_id = job.request.request_id.take();
        if let Some(plan) = &inner.fault {
            plan.stall();
        }
        // A deadline that already expired in the queue is answered
        // without compiling — the client has given up; don't spend a
        // worker proving it.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            inner
                .metrics
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            let body = error_to_json(&CompileError::DeadlineExceeded);
            retire_and_reply(inner, &job, &body, request_id.as_deref());
            finish_job(inner, &job);
            continue;
        }
        match catch_unwind(AssertUnwindSafe(|| compile_job(inner, &job, &mut scratch))) {
            Ok(body) => {
                retire_and_reply(inner, &job, &body, request_id.as_deref());
                finish_job(inner, &job);
            }
            Err(payload) => {
                inner.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                // The arena may hold a half-built compile; discard it
                // rather than reuse corrupt capacity.
                scratch = CompileScratch::new();
                let body = service_error_doc("internal", &panic_message(payload.as_ref()), None);
                retire_and_reply(inner, &job, &body, request_id.as_deref());
                finish_job(inner, &job);
                if payload.downcast_ref::<FatalFault>().is_some() {
                    // Scripted worker death: the job is answered; now
                    // actually die so the supervisor path is exercised.
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// Books one answered job: completion count, end-to-end latency, and
/// the busy-worker gauge.
fn finish_job(inner: &Inner, job: &Job) {
    inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
    record_latency(&inner.metrics, job.accepted);
    inner.metrics.busy_workers.fetch_sub(1, Ordering::Relaxed);
}

/// Retires the single-flight entry *after* any cache insert but
/// *before* replying: once a submitter holds its response, an
/// immediate identical resubmission must find the artifact in the
/// cache, not coalesce onto a ghost entry. Error bodies (deadline,
/// cancelled, internal, session failures) are never cached, so their
/// resubmissions compile fresh.
fn retire_and_reply(inner: &Inner, job: &Job, body: &str, request_id: Option<&str>) {
    let waiters = inner
        .inflight
        .lock()
        .expect("inflight lock")
        .remove(&job.key)
        .unwrap_or_default();
    let _ = job.reply.send(finalize(body, request_id));
    for waiter in waiters {
        let _ = waiter
            .reply
            .send(finalize(body, waiter.request_id.as_deref()));
    }
}

/// Compiles one job and returns the reply body. Successful responses
/// are published to the artifact cache; error documents (session
/// failures, deadline, cancelled) are not. Runs inside the worker's
/// `catch_unwind` region — scripted faults inject here.
fn compile_job(inner: &Inner, job: &Job, scratch: &mut CompileScratch) -> String {
    if let Some(plan) = &inner.fault {
        plan.inject(plan.next_seq());
    }
    let session_key = session_fingerprint(
        &job.request.target,
        &job.request.mapping,
        &job.request.scheduling,
        job.request.baseline,
    );
    let session = {
        let sessions = inner.sessions.lock().expect("sessions lock");
        sessions.get(&session_key).cloned()
    };
    let session = match session {
        Some(compiler) => {
            inner.metrics.session_hits.fetch_add(1, Ordering::Relaxed);
            Ok(compiler)
        }
        None => match job.request.build_session() {
            Ok(compiler) => {
                inner.metrics.session_misses.fetch_add(1, Ordering::Relaxed);
                let compiler = Arc::new(compiler);
                inner
                    .sessions
                    .lock()
                    .expect("sessions lock")
                    .insert(session_key, Arc::clone(&compiler));
                Ok(compiler)
            }
            Err(e) => Err(e),
        },
    };
    match session {
        Ok(compiler) => {
            let cancel = job.deadline.map(CancelToken::with_deadline_at);
            let before = scratch.map().route().distance_cache().snapshot();
            let outcome = match &cancel {
                Some(token) => job.request.run_with_cancel(&compiler, scratch, token),
                None => Ok(job.request.run_with(&compiler, scratch)),
            };
            let after = scratch.map().route().distance_cache().snapshot();
            inner.metrics.add_route_delta(before, after);
            match outcome {
                Ok(response) => {
                    // Fold each compiled program's phase attribution
                    // into the service-wide counters, then time the
                    // reply serialization itself — the export phase.
                    for compiled in &response.results {
                        if let Ok(program) = &compiled.result {
                            inner.metrics.add_phases(
                                program.stats.map_phase.as_micros() as u64,
                                program.stats.schedule_phase.as_micros() as u64,
                                program.stats.lower_phase.as_micros() as u64,
                            );
                        }
                    }
                    let export_start = Instant::now();
                    let body: Arc<str> = Arc::from(response.to_json());
                    inner
                        .metrics
                        .export_us
                        .fetch_add(export_start.elapsed().as_micros() as u64, Ordering::Relaxed);
                    inner
                        .cache
                        .lock()
                        .expect("cache lock")
                        .insert(job.key, Arc::clone(&body));
                    body.to_string()
                }
                Err(e) => {
                    // Only deadline/cancellation stops escape
                    // `run_with_cancel`; either way the partial
                    // artifact never reaches the cache.
                    if matches!(e, CompileError::DeadlineExceeded) {
                        inner
                            .metrics
                            .deadline_exceeded
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    error_to_json(&e)
                }
            }
        }
        // Session-level failures (invalid target/options reaching
        // past parse validation) are answered but not cached.
        Err(e) => error_to_json(&e),
    }
}

/// A human-readable line for a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let detail = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .or_else(|| {
            payload
                .downcast_ref::<FatalFault>()
                .map(|f| format!("scripted worker death at compile #{}", f.seq))
        })
        .unwrap_or_else(|| "opaque panic payload".to_owned());
    format!("compile panicked ({detail}); worker state was discarded")
}
