//! The compile service core: admission control, the worker pool, and
//! the cache hierarchy.
//!
//! ```text
//!               submit(document)
//!                     │
//!        parse (shared TargetResolver) ──▶ Invalid(error doc)
//!                     │
//!        artifact cache (content key) ──▶ Cached(response bytes)
//!                     │ miss
//!        admission: BoundedQueue ───────▶ Err(Busy / ShuttingDown)
//!                     │ accepted
//!            worker pool (N threads)
//!          warm CompileScratch each,
//!        session cache (Arc<Compiler>),
//!          insert artifact, reply
//! ```
//!
//! The cache is content-addressed by
//! [`request_cache_key`],
//! which excludes transport fields — so a cache hit returns bytes
//! identical to a cold compile of the same content, with the
//! submitter's `request_id` spliced per-response
//! ([`na_pipeline::with_request_id`]). Workers keep one
//! [`CompileScratch`] each across every job they serve (arena reuse:
//! capacity, never decisions), and compiler sessions are shared across
//! workers by content hash so one hot target/options combination
//! validates once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use na_pipeline::fingerprint::{request_cache_key, session_fingerprint};
use na_pipeline::{
    error_to_json, with_request_id, CompileError, CompileRequest, CompileScratch, Compiler,
    TargetResolver,
};
use na_schedule::export::{cache_stats_to_json, JsonObject};

use crate::cache::ArtifactCache;
use crate::metrics::ServiceMetrics;
use crate::queue::{BoundedQueue, PushError};
use crate::wire::service_error_doc;

/// Sizing knobs for a [`CompileService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. `0` is allowed (tests use it to exercise
    /// admission control deterministically); nothing compiles until
    /// shutdown then.
    pub workers: usize,
    /// Queue-depth cap — submissions beyond it get a typed
    /// [`SubmitError::Busy`] rejection instead of unbounded growth.
    pub queue_cap: usize,
    /// Artifact-cache byte budget.
    pub cache_budget_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_cap: 64,
            cache_budget_bytes: 64 << 20,
        }
    }
}

/// How an accepted submission was answered.
#[derive(Debug)]
pub enum Submission {
    /// The document failed parsing/validation; the payload is the
    /// well-formed error document to send back.
    Invalid(String),
    /// Served from the artifact cache; the payload is the full
    /// response document (request id already spliced).
    Cached(String),
    /// Queued for a worker; the receiver yields the response document
    /// exactly once.
    Pending(mpsc::Receiver<String>),
}

/// Why a submission was refused outright (backpressure, not failure —
/// the document itself was never examined past admission).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The work queue sits at its depth cap; retry later.
    Busy {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The service no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { depth, cap } => {
                write!(f, "queue full: {depth}/{cap} jobs queued")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl SubmitError {
    /// The rejection as a wire error document (`kind` `busy` or
    /// `shutdown`), echoing `request_id` when the client sent one.
    pub fn to_json(&self, request_id: Option<&str>) -> String {
        let kind = match self {
            SubmitError::Busy { .. } => "busy",
            SubmitError::ShuttingDown => "shutdown",
        };
        service_error_doc(kind, &self.to_string(), request_id)
    }
}

struct Job {
    request: CompileRequest,
    key: u64,
    accepted: Instant,
    reply: mpsc::Sender<String>,
}

/// A submitter coalesced onto an in-flight compile of the same
/// content; answered with the leader's bytes (own id spliced).
struct Waiter {
    reply: mpsc::Sender<String>,
    request_id: Option<String>,
}

struct Inner {
    queue: BoundedQueue<Job>,
    cache: Mutex<ArtifactCache>,
    resolver: Mutex<TargetResolver>,
    sessions: Mutex<HashMap<u64, Arc<Compiler>>>,
    /// Single-flight table: content keys currently being compiled,
    /// each with the submitters waiting on that compile. Guarantees
    /// concurrent identical submissions share one compile — and
    /// therefore receive byte-identical responses (wall-clock stamps
    /// included), which a duplicate compile could not promise.
    inflight: Mutex<HashMap<u64, Vec<Waiter>>>,
    metrics: ServiceMetrics,
    accepting: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    configured_workers: usize,
}

/// A running compile service. Cloning shares the same queue, caches
/// and worker pool — hand clones to transport threads freely.
#[derive(Clone)]
pub struct CompileService {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService")
            .field("workers", &self.inner.configured_workers)
            .field("queue_depth", &self.inner.queue.depth())
            .field("accepting", &self.inner.accepting.load(Ordering::SeqCst))
            .finish()
    }
}

impl CompileService {
    /// Starts the service: spawns the worker pool and returns the
    /// handle transports submit through. Call
    /// [`CompileService::shutdown`] to drain and stop.
    pub fn start(config: ServeConfig) -> Self {
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(config.queue_cap),
            cache: Mutex::new(ArtifactCache::new(config.cache_budget_bytes)),
            resolver: Mutex::new(TargetResolver::new()),
            sessions: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            metrics: ServiceMetrics::new(),
            accepting: AtomicBool::new(true),
            workers: Mutex::new(Vec::new()),
            configured_workers: config.workers,
        });
        let handles = (0..config.workers)
            .map(|i| {
                let worker_inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("na-serve-worker-{i}"))
                    .spawn(move || worker_loop(&worker_inner))
                    .expect("spawn worker")
            })
            .collect();
        *inner.workers.lock().expect("workers lock") = handles;
        CompileService { inner }
    }

    /// Submits one job document.
    ///
    /// Malformed documents are *answered*, not errored: they return
    /// [`Submission::Invalid`] with a well-formed error document, so
    /// transports map them to a client-error status without formatting
    /// anything themselves.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after
    /// [`CompileService::shutdown`] began — backpressure only, never
    /// compile failures.
    pub fn submit(&self, document: &str) -> Result<Submission, SubmitError> {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::SeqCst) {
            inner
                .metrics
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        let parsed = {
            let mut resolver = inner.resolver.lock().expect("resolver lock");
            CompileRequest::from_json_with(document, &mut resolver)
        };
        let request = match parsed {
            Ok(request) => request,
            Err(e) => {
                inner.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                return Ok(Submission::Invalid(error_to_json(&CompileError::Request(
                    e,
                ))));
            }
        };
        let key = request_cache_key(&request);
        let accepted = Instant::now();
        // Single-flight admission, serialized by the in-flight table
        // lock: join an identical compile already in progress, else
        // probe the artifact cache, else queue. A worker publishes to
        // the cache *before* retiring its in-flight entry, so under
        // this lock "not in flight and not cached" really means a cold
        // compile is needed — concurrent identical submissions can
        // never compile twice (which matters for byte-identity: a
        // duplicate compile would carry different wall-clock stamps).
        let (tx, rx) = mpsc::channel();
        let mut inflight = inner.inflight.lock().expect("inflight lock");
        if let Some(waiters) = inflight.get_mut(&key) {
            waiters.push(Waiter {
                reply: tx,
                request_id: request.request_id,
            });
            inner.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
            return Ok(Submission::Pending(rx));
        }
        if let Some(body) = inner.cache.lock().expect("cache lock").get(key) {
            inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            let reply = finalize(&body, request.request_id.as_deref());
            record_latency(&inner.metrics, accepted);
            return Ok(Submission::Cached(reply));
        }
        let job = Job {
            request,
            key,
            accepted,
            reply: tx,
        };
        match inner.queue.try_push(job) {
            Ok(_) => {
                inflight.insert(key, Vec::new());
                inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Submission::Pending(rx))
            }
            Err(PushError::Full(_)) => {
                inner.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Busy {
                    depth: inner.queue.depth(),
                    cap: inner.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => {
                inner
                    .metrics
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// [`CompileService::submit`] plus blocking until the response
    /// document is ready — the one-call path for synchronous
    /// transports.
    ///
    /// # Errors
    ///
    /// The backpressure cases of [`CompileService::submit`].
    pub fn submit_wait(&self, document: &str) -> Result<String, SubmitError> {
        match self.submit(document)? {
            Submission::Invalid(doc) | Submission::Cached(doc) => Ok(doc),
            Submission::Pending(rx) => Ok(rx.recv().unwrap_or_else(|_| {
                service_error_doc("internal", "worker dropped the job without replying", None)
            })),
        }
    }

    /// Stops accepting work, drains every queued job through the
    /// worker pool, joins the workers, and answers any jobs no worker
    /// will ever take (the `workers: 0` configuration) with a
    /// `shutdown` error document. Idempotent.
    pub fn shutdown(&self) {
        let inner = &self.inner;
        inner.accepting.store(false, Ordering::SeqCst);
        inner.queue.close();
        let handles = std::mem::take(&mut *inner.workers.lock().expect("workers lock"));
        for handle in handles {
            let _ = handle.join();
        }
        for job in inner.queue.drain() {
            let doc = SubmitError::ShuttingDown.to_json(job.request.request_id.as_deref());
            let _ = job.reply.send(doc);
            let waiters = inner
                .inflight
                .lock()
                .expect("inflight lock")
                .remove(&job.key)
                .unwrap_or_default();
            for waiter in waiters {
                let doc = SubmitError::ShuttingDown.to_json(waiter.request_id.as_deref());
                let _ = waiter.reply.send(doc);
            }
        }
    }

    /// Whether the service still accepts submissions.
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::SeqCst)
    }

    /// Current queue depth (for tests and transports).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// The service counters.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }

    /// A point-in-time metrics document: request counters, queue
    /// state, worker utilization, latency quantiles, and every cache
    /// layer (artifact, session, target-resolver, router
    /// distance-cache aggregate via
    /// [`cache_stats_to_json`]).
    pub fn metrics_json(&self) -> String {
        let inner = &self.inner;
        let m = &inner.metrics;
        let (artifact, artifact_entries, artifact_bytes, artifact_budget) = {
            let cache = inner.cache.lock().expect("cache lock");
            (
                cache.stats(),
                cache.len() as u64,
                cache.resident_bytes() as u64,
                cache.budget_bytes() as u64,
            )
        };
        let (resolver_hits, resolver_misses, resolver_len) = {
            let r = inner.resolver.lock().expect("resolver lock");
            (r.hits(), r.misses(), r.len() as u64)
        };
        let sessions = inner.sessions.lock().expect("sessions lock").len() as u64;

        let mut artifact_obj = JsonObject::new();
        artifact_obj
            .uint("hits", artifact.hits)
            .uint("misses", artifact.misses)
            .uint("insertions", artifact.insertions)
            .uint("evictions", artifact.evictions)
            .uint("oversized", artifact.oversized)
            .uint("entries", artifact_entries)
            .uint("resident_bytes", artifact_bytes)
            .uint("budget_bytes", artifact_budget);
        let mut latency = JsonObject::new();
        latency
            .uint("count", m.latency.count())
            .num("mean_ms", m.latency.mean_ms())
            .num("p50_ms", m.latency.p50_ms())
            .num("p99_ms", m.latency.p99_ms());
        let mut sessions_obj = JsonObject::new();
        sessions_obj
            .uint("hits", m.session_hits.load(Ordering::Relaxed))
            .uint("misses", m.session_misses.load(Ordering::Relaxed))
            .uint("entries", sessions);
        let mut resolver_obj = JsonObject::new();
        resolver_obj
            .uint("hits", resolver_hits)
            .uint("misses", resolver_misses)
            .uint("entries", resolver_len);
        let mut queue = JsonObject::new();
        queue
            .uint("depth", inner.queue.depth() as u64)
            .uint("capacity", inner.queue.capacity() as u64);
        let mut workers = JsonObject::new();
        workers
            .uint("configured", inner.configured_workers as u64)
            .uint("busy", m.busy_workers.load(Ordering::Relaxed));
        // Cumulative compile-phase attribution across completed jobs —
        // the same `map/schedule/lower/export` split each artifact's
        // own `stats` object reports per compile.
        let mut phases = JsonObject::new();
        phases
            .uint("map_us", m.map_phase_us.load(Ordering::Relaxed))
            .uint("schedule_us", m.schedule_phase_us.load(Ordering::Relaxed))
            .uint("lower_us", m.lower_phase_us.load(Ordering::Relaxed))
            .uint("export_us", m.export_us.load(Ordering::Relaxed));

        let mut doc = JsonObject::new();
        doc.uint("version", crate::wire::WIRE_VERSION)
            .uint("submitted", m.submitted.load(Ordering::Relaxed))
            .uint("completed", m.completed.load(Ordering::Relaxed))
            .uint("invalid", m.invalid.load(Ordering::Relaxed))
            .uint("coalesced", m.coalesced.load(Ordering::Relaxed))
            .uint("rejected_busy", m.rejected_busy.load(Ordering::Relaxed))
            .uint(
                "rejected_shutdown",
                m.rejected_shutdown.load(Ordering::Relaxed),
            )
            .raw("queue", &queue.finish())
            .raw("workers", &workers.finish())
            .raw("phases", &phases.finish())
            .raw("latency", &latency.finish())
            .raw("artifact_cache", &artifact_obj.finish())
            .raw("session_cache", &sessions_obj.finish())
            .raw("target_resolver", &resolver_obj.finish())
            .raw("route_cache", &cache_stats_to_json(&m.route_cache()));
        doc.finish()
    }
}

/// Splices the submitter's `request_id` into the cached/compiled
/// canonical (id-less) body.
fn finalize(body: &str, request_id: Option<&str>) -> String {
    match request_id {
        Some(id) => with_request_id(body, id),
        None => body.to_owned(),
    }
}

fn record_latency(metrics: &ServiceMetrics, accepted: Instant) {
    let us = accepted.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    metrics.latency.record_micros(us);
}

/// One worker: a warm scratch arena for life, jobs until the queue
/// closes and drains.
fn worker_loop(inner: &Inner) {
    let mut scratch = CompileScratch::new();
    while let Some(mut job) = inner.queue.pop() {
        inner.metrics.busy_workers.fetch_add(1, Ordering::Relaxed);
        // The canonical artifact is id-less; take the id out before
        // compiling and splice it back into this submitter's reply.
        let request_id = job.request.request_id.take();
        let session_key = session_fingerprint(
            &job.request.target,
            &job.request.mapping,
            &job.request.scheduling,
            job.request.baseline,
        );
        let session = {
            let sessions = inner.sessions.lock().expect("sessions lock");
            sessions.get(&session_key).cloned()
        };
        let session = match session {
            Some(compiler) => {
                inner.metrics.session_hits.fetch_add(1, Ordering::Relaxed);
                Ok(compiler)
            }
            None => match job.request.build_session() {
                Ok(compiler) => {
                    inner.metrics.session_misses.fetch_add(1, Ordering::Relaxed);
                    let compiler = Arc::new(compiler);
                    inner
                        .sessions
                        .lock()
                        .expect("sessions lock")
                        .insert(session_key, Arc::clone(&compiler));
                    Ok(compiler)
                }
                Err(e) => Err(e),
            },
        };
        let body: Arc<str> = match session {
            Ok(compiler) => {
                let before = scratch.map().route().distance_cache().snapshot();
                let response = job.request.run_with(&compiler, &mut scratch);
                let after = scratch.map().route().distance_cache().snapshot();
                inner.metrics.add_route_delta(before, after);
                // Fold each compiled program's phase attribution into
                // the service-wide counters, then time the reply
                // serialization itself — the export phase.
                for outcome in &response.results {
                    if let Ok(program) = &outcome.result {
                        inner.metrics.add_phases(
                            program.stats.map_phase.as_micros() as u64,
                            program.stats.schedule_phase.as_micros() as u64,
                            program.stats.lower_phase.as_micros() as u64,
                        );
                    }
                }
                let export_start = Instant::now();
                let body: Arc<str> = Arc::from(response.to_json());
                inner
                    .metrics
                    .export_us
                    .fetch_add(export_start.elapsed().as_micros() as u64, Ordering::Relaxed);
                inner
                    .cache
                    .lock()
                    .expect("cache lock")
                    .insert(job.key, Arc::clone(&body));
                body
            }
            // Session-level failures (invalid target/options reaching
            // past parse validation) are answered but not cached.
            Err(e) => Arc::from(error_to_json(&e)),
        };
        // Retire the single-flight entry *after* the cache insert but
        // *before* replying: once a submitter holds its response, an
        // immediate identical resubmission must find the artifact in
        // the cache, not coalesce onto a ghost entry.
        let waiters = inner
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&job.key)
            .unwrap_or_default();
        let _ = job.reply.send(finalize(&body, request_id.as_deref()));
        for waiter in waiters {
            let _ = waiter
                .reply
                .send(finalize(&body, waiter.request_id.as_deref()));
        }
        inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
        record_latency(&inner.metrics, job.accepted);
        inner.metrics.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}
