//! Wire-format helpers shared by the transports.
//!
//! The job layer's canonical documents are pretty-printed; the stdio
//! transport frames one document per line, so [`compact_json`] strips
//! the insignificant whitespace without touching string contents.
//! [`service_error_doc`] emits transport-level rejections (`busy`,
//! `shutdown`, `internal`) in exactly the shape of
//! [`na_pipeline::error_to_json`], so clients parse one error schema
//! regardless of whether the compiler or the service refused them.

use na_pipeline::with_request_id;
use na_schedule::export::json_escape;

/// The job-document version the service speaks, mirrored from the
/// pipeline's v1 job layer.
pub const WIRE_VERSION: u64 = 1;

/// Removes all whitespace outside JSON string literals, turning a
/// canonical multi-line document into a single line for line-delimited
/// framing. Content inside strings (including escaped quotes) is
/// preserved byte for byte.
pub fn compact_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            c if c.is_ascii_whitespace() => {}
            c => out.push(c),
        }
    }
    out
}

/// Builds a service-level error document in the
/// [`na_pipeline::error_to_json`] shape:
///
/// ```json
/// {"version": 1, "ok": false,
///  "error": {"kind": "busy", "message": "..."}}
/// ```
///
/// `kind` is a transport-level class (`busy`, `shutdown`, `internal`)
/// that extends the compiler's own kinds; when `request_id` is given it
/// is echoed exactly like a compile response would.
pub fn service_error_doc(kind: &str, message: &str, request_id: Option<&str>) -> String {
    let doc = format!(
        "{{\n  \"version\": {WIRE_VERSION},\n  \"ok\": false,\n  \
         \"error\": {{\"kind\":\"{kind}\",\"message\":\"{}\"}}\n}}\n",
        json_escape(message),
    );
    match request_id {
        Some(id) => with_request_id(&doc, id),
        None => doc,
    }
}

/// Like [`service_error_doc`] but carries a `retry_after_ms` hint
/// inside the error object — the shape of the `unmeetable` shedding
/// rejection (HTTP 429-style), telling the client when the queue is
/// expected to have drained enough for the deadline to fit.
pub fn service_error_doc_retry(
    kind: &str,
    message: &str,
    retry_after_ms: u64,
    request_id: Option<&str>,
) -> String {
    let doc = format!(
        "{{\n  \"version\": {WIRE_VERSION},\n  \"ok\": false,\n  \
         \"error\": {{\"kind\":\"{kind}\",\"message\":\"{}\",\
         \"retry_after_ms\":{retry_after_ms}}}\n}}\n",
        json_escape(message),
    );
    match request_id {
        Some(id) => with_request_id(&doc, id),
        None => doc,
    }
}

/// Extracts the `"kind"` of an error document produced by
/// [`service_error_doc`] or the pipeline's `error_to_json`, or `None`
/// for success documents. Transports use this to pick status codes
/// (e.g. `deadline` → 504, `internal` → 500) without a full JSON parse:
/// the service only ever inspects documents it produced itself, where
/// `"error":{"kind":"` appears verbatim.
pub fn error_kind_of(doc: &str) -> Option<&str> {
    let err = doc.find("\"error\":")? + "\"error\":".len();
    let rest = &doc[err..];
    let kind = rest.find("\"kind\":\"")? + "\"kind\":\"".len();
    let rest = &rest[kind..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_preserves_string_contents() {
        let doc = "{\n  \"a\": \"x \\\" y\\n\",\n  \"b\": [1, 2]\n}\n";
        assert_eq!(compact_json(doc), "{\"a\":\"x \\\" y\\n\",\"b\":[1,2]}");
    }

    #[test]
    fn compaction_is_idempotent() {
        let doc = "{\"a\":\"b c\",\"d\":1}";
        assert_eq!(compact_json(doc), doc);
    }

    #[test]
    fn error_doc_matches_pipeline_error_shape() {
        let doc = service_error_doc("busy", "queue full: 4/4", None);
        // Same framing the pipeline emits, so one client-side parser
        // handles both.
        assert!(doc.starts_with("{\n  \"version\": 1,\n  \"ok\": false,"));
        assert!(doc.contains("\"kind\":\"busy\""));
        assert!(doc.contains("queue full: 4/4"));
        let with_id = service_error_doc("busy", "queue full", Some("req-9"));
        assert!(with_id.starts_with("{\n  \"request_id\": \"req-9\",\n  \"version\": 1,"));
    }

    #[test]
    fn retry_doc_carries_the_hint_inside_the_error_object() {
        let doc = service_error_doc_retry("unmeetable", "deadline 5 ms < wait 40 ms", 35, None);
        assert!(doc.contains("\"kind\":\"unmeetable\""));
        assert!(doc.contains("\"retry_after_ms\":35}"));
        assert_eq!(error_kind_of(&doc), Some("unmeetable"));
    }

    #[test]
    fn error_kind_is_extracted_from_canonical_and_compact_docs() {
        let doc = service_error_doc("shutdown", "draining", None);
        assert_eq!(error_kind_of(&doc), Some("shutdown"));
        assert_eq!(error_kind_of(&compact_json(&doc)), Some("shutdown"));
        assert_eq!(error_kind_of("{\"version\":1,\"ok\":true}"), None);
    }
}
