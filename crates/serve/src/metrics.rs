//! Service observability: latency histograms and request counters.
//!
//! Everything here is lock-free (`AtomicU64`) except the route-cache
//! aggregate, which folds per-job [`CacheStats`] deltas under a mutex
//! on the worker's (cold) reply path. The histogram uses fixed
//! logarithmic-ish bucket bounds so recording is a single atomic
//! increment and quantiles are a cheap scan — no allocation, no
//! per-request sample retention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use na_mapper::CacheStats;

/// Upper bucket bounds in microseconds (the last bucket is unbounded).
/// Spanning 0.25 ms – 5 s covers cache hits through mega-lattice
/// compiles.
const BOUNDS_US: [u64; 14] = [
    250, 500, 1_000, 2_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
    2_500_000, 5_000_000,
];

/// A fixed-bucket latency histogram with interpolated quantiles.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation in microseconds.
    pub fn record_micros(&self, us: u64) {
        let idx = BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (`NaN` when empty, which the JSON
    /// writers render as `null`).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64 / 1000.0
    }

    /// The `q`-quantile (0 < q ≤ 1) in milliseconds, linearly
    /// interpolated within the containing bucket; `NaN` when empty.
    /// Observations in the unbounded overflow bucket report the last
    /// finite bound — a floor, not an estimate.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let here = bucket.load(Ordering::Relaxed);
            if here == 0 {
                seen += here;
                continue;
            }
            if seen + here >= rank {
                let upper = BOUNDS_US
                    .get(idx)
                    .copied()
                    .unwrap_or(*BOUNDS_US.last().expect("non-empty"));
                if idx >= BOUNDS_US.len() {
                    return upper as f64 / 1000.0;
                }
                let lower = if idx == 0 { 0 } else { BOUNDS_US[idx - 1] };
                let into = (rank - seen) as f64 / here as f64;
                return (lower as f64 + into * (upper - lower) as f64) / 1000.0;
            }
            seen += here;
        }
        *BOUNDS_US.last().expect("non-empty") as f64 / 1000.0
    }

    /// Median in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_ms(0.50)
    }

    /// 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_ms(0.99)
    }
}

/// Request counters for the whole service, shared by transports,
/// admission control and the worker pool.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Requests admitted to the queue (neither invalid, cached, nor
    /// rejected).
    pub submitted: AtomicU64,
    /// Jobs compiled and replied to by a worker.
    pub completed: AtomicU64,
    /// Requests answered with a parse/validation error document.
    pub invalid: AtomicU64,
    /// Requests coalesced onto an identical in-flight compile
    /// (single-flight) instead of queueing a duplicate.
    pub coalesced: AtomicU64,
    /// Requests rejected because the queue sat at capacity.
    pub rejected_busy: AtomicU64,
    /// Requests rejected because the service was shutting down.
    pub rejected_shutdown: AtomicU64,
    /// Artifact-cache hits observed at admission (mirrors the cache's
    /// own counter; kept here so transports never lock the cache just
    /// to report).
    pub cache_hits: AtomicU64,
    /// Compiler sessions reused from the session cache.
    pub session_hits: AtomicU64,
    /// Compiler sessions built fresh.
    pub session_misses: AtomicU64,
    /// Workers currently executing a job.
    pub busy_workers: AtomicU64,
    /// End-to-end latency (submission → reply) of answered requests.
    pub latency: LatencyHistogram,
    /// Cumulative mapping-phase wall clock (µs) across all compiled
    /// programs (one entry per successful job result).
    pub map_phase_us: AtomicU64,
    /// Cumulative scheduling-phase wall clock (µs).
    pub schedule_phase_us: AtomicU64,
    /// Cumulative AOD lowering + validation wall clock (µs).
    pub lower_phase_us: AtomicU64,
    /// Cumulative response-serialization wall clock (µs), measured
    /// around [`CompileResponse::to_json`](na_pipeline::CompileResponse)
    /// on the worker reply path.
    pub export_us: AtomicU64,
    /// Compiles that panicked inside a worker and were isolated by
    /// `catch_unwind` (the job still receives a typed `internal` reply).
    pub worker_panics: AtomicU64,
    /// Workers respawned by the supervisor after dying mid-compile.
    pub worker_restarts: AtomicU64,
    /// Requests answered with a typed `deadline` error because their
    /// `deadline_ms` budget ran out (in queue or at a compile
    /// checkpoint).
    pub deadline_exceeded: AtomicU64,
    /// Requests shed at admission because their deadline could not
    /// survive the estimated queue wait (typed `unmeetable` rejection).
    pub shed_unmeetable: AtomicU64,
    route_cache: Mutex<CacheStats>,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one job's router distance-cache activity into the
    /// service-wide aggregate. `before`/`after` are scratch snapshots
    /// around the compile; counter fields accumulate as deltas while
    /// `peak_entries` (a high-water mark) folds by max.
    pub fn add_route_delta(&self, before: CacheStats, after: CacheStats) {
        let mut agg = self.route_cache.lock().expect("metrics lock");
        agg.hits += after.hits - before.hits;
        agg.misses += after.misses - before.misses;
        agg.sites_settled += after.sites_settled - before.sites_settled;
        agg.evictions += after.evictions - before.evictions;
        agg.peak_entries = agg.peak_entries.max(after.peak_entries);
        agg.corridor_queries += after.corridor_queries - before.corridor_queries;
        agg.corridor_pruned += after.corridor_pruned - before.corridor_pruned;
        agg.regions_touched += after.regions_touched - before.regions_touched;
    }

    /// The service-wide router distance-cache aggregate.
    pub fn route_cache(&self) -> CacheStats {
        *self.route_cache.lock().expect("metrics lock")
    }

    /// Folds one compiled program's per-phase timings (already in
    /// microseconds via `Duration::as_micros`) into the cumulative
    /// phase counters.
    pub fn add_phases(&self, map_us: u64, schedule_us: u64, lower_us: u64) {
        self.map_phase_us.fetch_add(map_us, Ordering::Relaxed);
        self.schedule_phase_us
            .fetch_add(schedule_us, Ordering::Relaxed);
        self.lower_phase_us.fetch_add(lower_us, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nan() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.p50_ms().is_nan());
        assert!(h.p99_ms().is_nan());
        assert!(h.mean_ms().is_nan());
    }

    #[test]
    fn quantiles_are_ordered_and_bracket_the_samples() {
        let h = LatencyHistogram::new();
        // 100 samples at ~1 ms, 10 at ~40 ms, 1 at ~400 ms.
        for _ in 0..100 {
            h.record_micros(900);
        }
        for _ in 0..10 {
            h.record_micros(40_000);
        }
        h.record_micros(400_000);
        assert_eq!(h.count(), 111);
        let p50 = h.p50_ms();
        let p99 = h.p99_ms();
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        // The median falls in the ≤1 ms bucket, the tail at ≥25 ms.
        assert!((0.0..=1.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= 25.0, "p99 {p99}");
    }

    #[test]
    fn overflow_bucket_reports_last_bound() {
        let h = LatencyHistogram::new();
        h.record_micros(30_000_000);
        assert_eq!(h.p50_ms(), 5_000.0);
    }

    #[test]
    fn route_delta_accumulates_counters_and_maxes_peak() {
        let m = ServiceMetrics::new();
        let before = CacheStats::default();
        let after = CacheStats {
            hits: 5,
            misses: 2,
            peak_entries: 7,
            ..Default::default()
        };
        m.add_route_delta(before, after);
        let mut later = after;
        later.hits = 9;
        later.peak_entries = 4;
        m.add_route_delta(after, later);
        let agg = m.route_cache();
        assert_eq!(agg.hits, 9);
        assert_eq!(agg.misses, 2);
        assert_eq!(agg.peak_entries, 7);
    }
}
