//! A hand-rolled HTTP/1.1 transport over [`std::net::TcpListener`].
//!
//! Just enough of the protocol for a JSON job API — request line,
//! headers, `Content-Length` bodies, `Connection: close` responses —
//! framed by hand the same way `na-pipeline`'s job layer hand-rolls
//! JSON (no registry access, so no hyper/axum). Routes:
//!
//! | method/path        | behaviour                                       |
//! |--------------------|-------------------------------------------------|
//! | `POST /v1/compile` | submit a job document; `X-Cache: hit\|miss`     |
//! | `GET /v1/metrics`  | the service metrics document                    |
//! | `GET /healthz`     | liveness probe                                  |
//!
//! Status mapping: invalid document → `400` (well-formed error doc in
//! the body), queue full → `429`, shutting down → `503`, unknown route
//! → `404`. Each connection is served on its own thread so slow
//! compiles don't block the accept loop; concurrency control lives in
//! the service's queue, not the transport.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::service::{CompileService, Submission, SubmitError};
use crate::wire::service_error_doc;

/// Largest accepted request body; guards the service against a
/// misbehaving client streaming unbounded bytes.
const MAX_BODY_BYTES: usize = 64 << 20;

/// The HTTP front-end: owns the listener, serves connections against a
/// [`CompileService`].
#[derive(Debug)]
pub struct HttpServer {
    listener: TcpListener,
    service: CompileService,
    stop: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an ephemeral test
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(service: CompileService, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(HttpServer {
            listener,
            service,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that makes [`HttpServer::serve`] return; share it with
    /// the thread that decides when to stop.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accepts connections until the stop flag is raised, spawning one
    /// handler thread per connection. Does **not** shut the service
    /// down — callers drain it via [`CompileService::shutdown`] after
    /// this returns.
    pub fn serve(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let service = self.service.clone();
                    let _ = std::thread::Builder::new()
                        .name("na-serve-conn".to_owned())
                        .spawn(move || handle_connection(stream, &service));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
}

fn handle_connection(stream: TcpStream, service: &CompileService) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(stream);
    let Some((method, path, body)) = read_request(&mut reader) else {
        let mut stream = reader.into_inner();
        write_response(
            &mut stream,
            400,
            "Bad Request",
            &service_error_doc("request", "malformed HTTP request", None),
            None,
        );
        return;
    };
    let (status, reason, body, cache_state) = route(service, &method, &path, &body);
    let mut stream = reader.into_inner();
    write_response(&mut stream, status, reason, &body, cache_state);
}

/// Dispatches one parsed request to the service. Returns
/// `(status, reason, body, X-Cache value)`.
fn route(
    service: &CompileService,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, &'static str, String, Option<&'static str>) {
    match (method, path) {
        ("POST", "/v1/compile") => match service.submit(body) {
            Ok(Submission::Invalid(doc)) => (400, "Bad Request", doc, None),
            Ok(Submission::Cached(doc)) => (200, "OK", doc, Some("hit")),
            Ok(Submission::Pending(rx)) => {
                let doc = rx.recv().unwrap_or_else(|_| {
                    service_error_doc("internal", "worker dropped the job without replying", None)
                });
                (200, "OK", doc, Some("miss"))
            }
            Err(e @ SubmitError::Busy { .. }) => (429, "Too Many Requests", e.to_json(None), None),
            Err(e @ SubmitError::ShuttingDown) => {
                (503, "Service Unavailable", e.to_json(None), None)
            }
        },
        ("GET", "/v1/metrics") => (200, "OK", service.metrics_json(), None),
        ("GET", "/healthz") => (200, "OK", "{\"ok\":true}".to_owned(), None),
        _ => (
            404,
            "Not Found",
            service_error_doc("request", &format!("no route for {method} {path}"), None),
            None,
        ),
    }
}

/// Reads one HTTP/1.1 request: request line, headers, and a
/// `Content-Length`-framed body. Returns `None` on framing errors.
fn read_request(reader: &mut BufReader<TcpStream>) -> Option<(String, String, String)> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().ok()?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((method, path, String::from_utf8(body).ok()?))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    cache_state: Option<&str>,
) {
    let cache_header = match cache_state {
        Some(state) => format!("X-Cache: {state}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{cache_header}Connection: close\r\n\r\n",
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}
