//! A hand-rolled HTTP/1.1 transport over [`std::net::TcpListener`].
//!
//! Just enough of the protocol for a JSON job API — request line,
//! headers, `Content-Length` bodies, `Connection: close` responses —
//! framed by hand the same way `na-pipeline`'s job layer hand-rolls
//! JSON (no registry access, so no hyper/axum). Routes:
//!
//! | method/path        | behaviour                                       |
//! |--------------------|-------------------------------------------------|
//! | `POST /v1/compile` | submit a job document; `X-Cache: hit\|miss`     |
//! | `GET /v1/metrics`  | the service metrics document                    |
//! | `GET /healthz`     | liveness probe                                  |
//!
//! Status mapping: invalid document → `400` (well-formed error doc in
//! the body), body over the cap → `413`, queue full or deadline
//! unmeetable → `429`, shutting down → `503`, deadline exceeded →
//! `504`, worker panic → `500`, unknown route → `404`. Each connection
//! is served on its own thread so slow compiles don't block the accept
//! loop; concurrency control lives in the service's queue, not the
//! transport. Socket read/write timeouts and the body cap are
//! configurable per server via [`HttpOptions`].

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::service::{CompileService, Submission, SubmitError};
use crate::wire::{error_kind_of, service_error_doc};

/// Socket-level knobs for an [`HttpServer`].
#[derive(Debug, Clone)]
pub struct HttpOptions {
    /// Per-connection socket read timeout — a client that stops
    /// sending mid-request is dropped instead of pinning a handler
    /// thread.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout — a client that stops
    /// reading its response is likewise dropped.
    pub write_timeout: Duration,
    /// Largest accepted request body; larger `Content-Length`s are
    /// refused with `413` before any body byte is read.
    pub max_body_bytes: usize,
}

impl Default for HttpOptions {
    fn default() -> Self {
        HttpOptions {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_body_bytes: 64 << 20,
        }
    }
}

/// The HTTP front-end: owns the listener, serves connections against a
/// [`CompileService`].
#[derive(Debug)]
pub struct HttpServer {
    listener: TcpListener,
    service: CompileService,
    options: HttpOptions,
    stop: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an ephemeral test
    /// port) with default [`HttpOptions`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(service: CompileService, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with(service, addr, HttpOptions::default())
    }

    /// [`HttpServer::bind`] with explicit socket options.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_with(
        service: CompileService,
        addr: impl ToSocketAddrs,
        options: HttpOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(HttpServer {
            listener,
            service,
            options,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that makes [`HttpServer::serve`] return; share it with
    /// the thread that decides when to stop.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accepts connections until the stop flag is raised, spawning one
    /// handler thread per connection. Does **not** shut the service
    /// down — callers drain it via [`CompileService::shutdown`] after
    /// this returns.
    pub fn serve(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let service = self.service.clone();
                    let options = self.options.clone();
                    let _ = std::thread::Builder::new()
                        .name("na-serve-conn".to_owned())
                        .spawn(move || handle_connection(stream, &service, &options));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
}

/// Why a request could not be read off the socket.
enum ReadError {
    /// Framing failure (bad request line, I/O error, invalid UTF-8).
    Malformed,
    /// `Content-Length` exceeded the configured body cap.
    TooLarge { length: usize },
}

fn handle_connection(stream: TcpStream, service: &CompileService, options: &HttpOptions) {
    let _ = stream.set_read_timeout(Some(options.read_timeout));
    let _ = stream.set_write_timeout(Some(options.write_timeout));
    let mut reader = BufReader::new(stream);
    let (method, path, body) = match read_request(&mut reader, options.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            let (status, reason, doc) = match e {
                ReadError::Malformed => (
                    400,
                    "Bad Request",
                    service_error_doc("request", "malformed HTTP request", None),
                ),
                ReadError::TooLarge { length } => (
                    413,
                    "Payload Too Large",
                    service_error_doc(
                        "request",
                        &format!(
                            "request body of {length} bytes exceeds the {} byte limit",
                            options.max_body_bytes
                        ),
                        None,
                    ),
                ),
            };
            let mut stream = reader.into_inner();
            write_response(&mut stream, status, reason, &doc, None);
            return;
        }
    };
    let (status, reason, body, cache_state) = route(service, &method, &path, &body);
    let mut stream = reader.into_inner();
    write_response(&mut stream, status, reason, &body, cache_state);
}

/// Dispatches one parsed request to the service. Returns
/// `(status, reason, body, X-Cache value)`.
fn route(
    service: &CompileService,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, &'static str, String, Option<&'static str>) {
    match (method, path) {
        ("POST", "/v1/compile") => match service.submit(body) {
            Ok(Submission::Invalid(doc)) => (400, "Bad Request", doc, None),
            Ok(Submission::Cached(doc)) => (200, "OK", doc, Some("hit")),
            Ok(Submission::Pending(rx)) => {
                let doc = rx.recv().unwrap_or_else(|_| {
                    service_error_doc("internal", "worker dropped the job without replying", None)
                });
                // Worker-produced error documents pick their own
                // status: an exhausted deadline is the gateway-timeout
                // case, a panic-isolated compile the internal one.
                // Compile-level errors (bad QASM etc.) live inside an
                // `ok` response document and stay 200.
                let (status, reason) = match error_kind_of(&doc) {
                    Some("deadline") => (504, "Gateway Timeout"),
                    Some("internal") => (500, "Internal Server Error"),
                    _ => (200, "OK"),
                };
                (status, reason, doc, Some("miss"))
            }
            Err(e @ SubmitError::Busy { .. }) => (429, "Too Many Requests", e.to_json(None), None),
            Err(e @ SubmitError::DeadlineUnmeetable { .. }) => {
                (429, "Too Many Requests", e.to_json(None), None)
            }
            Err(e @ SubmitError::ShuttingDown) => {
                (503, "Service Unavailable", e.to_json(None), None)
            }
        },
        ("GET", "/v1/metrics") => (200, "OK", service.metrics_json(), None),
        ("GET", "/healthz") => (200, "OK", "{\"ok\":true}".to_owned(), None),
        _ => (
            404,
            "Not Found",
            service_error_doc("request", &format!("no route for {method} {path}"), None),
            None,
        ),
    }
}

/// Reads one HTTP/1.1 request: request line, headers, and a
/// `Content-Length`-framed body.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
) -> Result<(String, String, String), ReadError> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|_| ReadError::Malformed)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(ReadError::Malformed)?.to_owned();
    let path = parts.next().ok_or(ReadError::Malformed)?.to_owned();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|_| ReadError::Malformed)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| ReadError::Malformed)?;
        }
    }
    if content_length > max_body_bytes {
        return Err(ReadError::TooLarge {
            length: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ReadError::Malformed)?;
    let body = String::from_utf8(body).map_err(|_| ReadError::Malformed)?;
    Ok((method, path, body))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    cache_state: Option<&str>,
) {
    let cache_header = match cache_state {
        Some(state) => format!("X-Cache: {state}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{cache_header}Connection: close\r\n\r\n",
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}
